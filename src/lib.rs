//! # pallas — semantic-aware checking for deep bugs in fast paths
//!
//! Facade crate for the Pallas toolkit (ASPLOS'17 reproduction). It
//! re-exports the public API of every workspace crate so applications
//! can depend on a single crate:
//!
//! * [`lang`] — C-subset front-end (lexer, parser, AST).
//! * `cfg` — control-flow graphs and bounded path enumeration.
//! * [`sym`] — symbolic path extraction (the path database).
//! * [`spec`] — the semantic annotation protocol.
//! * [`checkers`] — the declarative rule registry: seven checker
//!   families / fifteen rules (see `docs/CHECKERS.md`).
//! * [`core`] — the pipeline driver, reports, and scoring.
//! * [`diff`] — fast-path vs slow-path comparison.
//! * [`corpus`] — the miniature evaluation corpus with ground truth.
//! * [`study`] — the fast-path patch characterization study.
//! * [`service`] — the persistent analysis daemon and its client.
//! * [`store`] — the persistent content-addressed analysis store.
//! * [`trace`] — zero-dependency structured span tracing.

pub use pallas_cfg as cfg;
pub use pallas_checkers as checkers;
pub use pallas_core as core;
pub use pallas_corpus as corpus;
pub use pallas_diff as diff;
pub use pallas_lang as lang;
pub use pallas_service as service;
pub use pallas_spec as spec;
pub use pallas_store as store;
pub use pallas_study as study;
pub use pallas_sym as sym;
pub use pallas_trace as trace;
