#!/usr/bin/env bash
# Tier-1 gate plus workspace-wide tests and lints. Run from anywhere;
# operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (tier-1 root package) =="
cargo test -q

echo "== tests (full workspace) =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== daemon smoke test =="
cargo build --release -p pallas-cli
PALLAS_BIN=target/release/pallas
SOCK="$(mktemp -u /tmp/pallas-ci-XXXXXX.sock)"
SMOKE_DIR="$(mktemp -d /tmp/pallas-ci-smoke-XXXXXX)"
trap 'rm -rf "$SMOKE_DIR" "$SOCK"' EXIT
cat > "$SMOKE_DIR/smoke.c" <<'EOF'
typedef unsigned int gfp_t;
int noio(gfp_t m);
int alloc_fast(gfp_t gfp_mask) {
  gfp_mask = noio(gfp_mask);
  return 0;
}
EOF
echo "fastpath alloc_fast; immutable gfp_mask;" > "$SMOKE_DIR/smoke.pallas"
"$PALLAS_BIN" serve "$SOCK" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "ci: daemon never bound $SOCK" >&2; exit 1; }
"$PALLAS_BIN" client "$SOCK" check "$SMOKE_DIR/smoke.c" | grep -q "Rule 1.2"
"$PALLAS_BIN" client "$SOCK" check "$SMOKE_DIR/smoke.c" --json | grep -q '"type":"finding"'
"$PALLAS_BIN" client "$SOCK" stats | grep -q '"cache_hits":1'
"$PALLAS_BIN" client "$SOCK" shutdown | grep -q '"shutdown":true'
wait "$SERVE_PID"
echo "daemon smoke test: ok"

echo "== TCP transport byte-identity =="
# Dual-bind the daemon (Unix socket + ephemeral loopback TCP port),
# then the same unit checked locally, over the socket, and over TCP
# must produce byte-identical NDJSON.
SOCK2="$(mktemp -u /tmp/pallas-ci-tcp-XXXXXX.sock)"
"$PALLAS_BIN" serve "$SOCK2" --tcp 127.0.0.1:0 --workers 2 > "$SMOKE_DIR/serve-tcp.log" &
TCP_PID=$!
TCP_ADDR=""
for _ in $(seq 1 100); do
  TCP_ADDR="$(sed -n 's/.*tcp `\([0-9.:]*\)`.*/\1/p' "$SMOKE_DIR/serve-tcp.log")"
  [ -n "$TCP_ADDR" ] && break
  sleep 0.05
done
[ -n "$TCP_ADDR" ] || { echo "ci: daemon never reported its TCP address" >&2; exit 1; }
"$PALLAS_BIN" check "$SMOKE_DIR/smoke.c" --json > "$SMOKE_DIR/local.ndjson"
"$PALLAS_BIN" client "$SOCK2" check "$SMOKE_DIR/smoke.c" --json > "$SMOKE_DIR/unix.ndjson"
"$PALLAS_BIN" client --tcp "$TCP_ADDR" check "$SMOKE_DIR/smoke.c" --json > "$SMOKE_DIR/tcp.ndjson"
cmp "$SMOKE_DIR/local.ndjson" "$SMOKE_DIR/unix.ndjson" \
  || { echo "ci: unix-socket NDJSON differs from the local run" >&2; exit 1; }
cmp "$SMOKE_DIR/local.ndjson" "$SMOKE_DIR/tcp.ndjson" \
  || { echo "ci: TCP NDJSON differs from the local run" >&2; exit 1; }
"$PALLAS_BIN" client --tcp "$TCP_ADDR" shutdown | grep -q '"shutdown":true'
wait "$TCP_PID"
rm -f "$SOCK2"
echo "TCP transport byte-identity: ok ($TCP_ADDR)"

echo "== trace smoke (chrome export round-trip) =="
"$PALLAS_BIN" check "$SMOKE_DIR/smoke.c" --trace-out "$SMOKE_DIR/trace.json" >/dev/null
python3 - "$SMOKE_DIR/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
cats = {e["cat"] for e in events}
missing = {"unit", "stage", "paths", "checker", "rule"} - cats
assert not missing, f"missing span layers: {sorted(missing)}"
for e in events:
    assert e["ph"] in ("X", "i"), f"unexpected phase: {e}"
    assert ("dur" in e) == (e["ph"] == "X"), f"dur/phase mismatch: {e}"
print(f"trace smoke: ok ({len(events)} event(s), layers {sorted(cats)})")
EOF

echo "== fuzz smoke (fixed seed, differential oracles) =="
# Two runs with the same seed must print the same digest line; any
# panic or oracle divergence makes `pallas fuzz` exit nonzero.
FUZZ_A="$("$PALLAS_BIN" fuzz --seed 42 --iters 200)"
FUZZ_B="$("$PALLAS_BIN" fuzz --seed 42 --iters 200)"
echo "$FUZZ_A"
echo "$FUZZ_A" | grep -q "failures=0" || { echo "ci: fuzz smoke found failures" >&2; exit 1; }
[ "$FUZZ_A" = "$FUZZ_B" ] || { echo "ci: fuzz digest not deterministic: '$FUZZ_A' vs '$FUZZ_B'" >&2; exit 1; }
echo "fuzz smoke: ok"

echo "== feasibility pruning ablation =="
# The inner branch re-tests the outer guard's negation, so its Rule 1.2
# site is a textbook infeasible-path false positive: it must fire with
# --no-prune and be suppressed by the default. The bench test then
# sweeps every corpus set asserting warnings shrink-or-hold, validated
# bugs stay fixed, and the path count strictly drops somewhere. The
# fuzz smoke above already pins the pruned-run digest (pruning is the
# default) and cross-checks the prune-subset oracle each iteration.
cat > "$SMOKE_DIR/dead.c" <<'EOF'
int slow(int order);
int alloc_fast(int gfp_mask, int order) {
  if (gfp_mask == 0) {
    if (gfp_mask != 0) {
      gfp_mask = 1;
    }
    return slow(order);
  }
  return 0;
}
EOF
echo "fastpath alloc_fast; immutable gfp_mask;" > "$SMOKE_DIR/dead.pallas"
"$PALLAS_BIN" check "$SMOKE_DIR/dead.c" --no-prune | grep -q "Rule 1.2" \
  || { echo "ci: unpruned run lost the dead-branch warning" >&2; exit 1; }
if "$PALLAS_BIN" check "$SMOKE_DIR/dead.c" | grep -q "Rule 1.2"; then
  echo "ci: pruning failed to suppress the dead-branch warning" >&2; exit 1
fi
cargo test --release -q -p bench --lib pruning_is_sound_and_cuts_paths
echo "feasibility pruning: ok"

echo "== loop-summary ablation (Ablation 5) =="
# Same contradiction as dead.c, but *inside* a loop body on a
# loop-invariant variable. Blanket loop transparency
# (--no-loop-summaries, the pre-summary behavior) asserts nothing in
# loop bodies, so only the summary-aware oracle can prune the dead arm.
# The bench test then sweeps every corpus set off/on asserting the
# validated-bug findings stay byte-identical, warnings shrink-or-hold,
# and the infeasible set prunes strictly more arms with summaries on.
cat > "$SMOKE_DIR/loopdead.c" <<'EOF'
int rx_queue(int skb);
int rx_drain(int state, int budget, int n) {
  int i = 0;
  while (i < n) {
    if (state == 1) {
      if (state == 2) {
        budget = 0;
      }
    }
    i = i + 1;
  }
  return rx_queue(budget);
}
EOF
echo "fastpath rx_drain; immutable budget;" > "$SMOKE_DIR/loopdead.pallas"
"$PALLAS_BIN" check "$SMOKE_DIR/loopdead.c" --no-loop-summaries | grep -q "Rule 1.2" \
  || { echo "ci: summaries-off run lost the in-loop dead-branch warning" >&2; exit 1; }
if "$PALLAS_BIN" check "$SMOKE_DIR/loopdead.c" | grep -q "Rule 1.2"; then
  echo "ci: loop summaries failed to suppress the in-loop dead branch" >&2; exit 1
fi
"$PALLAS_BIN" check "$SMOKE_DIR/loopdead.c" --stage-stats | grep -q "loops: 1 summarized" \
  || { echo "ci: --stage-stats lost the loop-summary counters" >&2; exit 1; }
cargo test --release -q -p bench --lib loop_summaries_are_sound_and_prune_loop_contradictions
echo "loop-summary ablation: ok"

echo "== rule catalogue (--list-rules) =="
# The registry must publish at least the twelve paper rules plus the
# mined extension families (6.1/6.2/7.1).
RULE_LIST="$("$PALLAS_BIN" check --list-rules)"
RULE_COUNT="$(echo "$RULE_LIST" | grep -c '^')"
[ "$RULE_COUNT" -ge 15 ] || { echo "ci: --list-rules shows $RULE_COUNT rules, want >= 15" >&2; exit 1; }
for rule in 1.2 4.1 6.1 6.2 7.1; do
  echo "$RULE_LIST" | grep -q "^$rule " \
    || { echo "ci: --list-rules is missing rule $rule" >&2; exit 1; }
done
echo "rule catalogue: ok ($RULE_COUNT rules)"

echo "== rule selection A/B (--only-rule / --disable-rule) =="
# A unit that fires two families: 1.2 (immutable overwrite) and 7.1
# (unconditional expensive call). Disabling a rule must remove exactly
# its findings — the survivors stay byte-identical — and --only-rule
# must reproduce exactly the full run's findings for that rule.
cat > "$SMOKE_DIR/rules.c" <<'EOF'
typedef unsigned int gfp_t;
int noio(gfp_t m);
int wb_flush(int v);
int alloc_fast(gfp_t gfp_mask) {
  gfp_mask = noio(gfp_mask);
  wb_flush(0);
  return 0;
}
EOF
echo "fastpath alloc_fast; immutable gfp_mask; expensive wb_flush;" > "$SMOKE_DIR/rules.pallas"
findings() { grep '"type":"finding"' || true; }
FULL="$("$PALLAS_BIN" check "$SMOKE_DIR/rules.c" --json | findings)"
echo "$FULL" | grep -q '"rule":"1.2"' || { echo "ci: rule-selection unit lost its 1.2 finding" >&2; exit 1; }
echo "$FULL" | grep -q '"rule":"7.1"' || { echo "ci: rule-selection unit lost its 7.1 finding" >&2; exit 1; }
WITHOUT="$("$PALLAS_BIN" check "$SMOKE_DIR/rules.c" --json --disable-rule 1.2 | findings)"
[ "$WITHOUT" = "$(echo "$FULL" | grep -v '"rule":"1.2"')" ] \
  || { echo "ci: --disable-rule 1.2 did not subtract exactly the 1.2 findings" >&2; exit 1; }
ONLY="$("$PALLAS_BIN" check "$SMOKE_DIR/rules.c" --json --only-rule 7.1 | findings)"
[ "$ONLY" = "$(echo "$FULL" | grep '"rule":"7.1"')" ] \
  || { echo "ci: --only-rule 7.1 does not match the full run's 7.1 findings" >&2; exit 1; }
echo "rule selection: ok"

echo "== per-rule regression tests (all families, incl. 6.x/7.1) =="
cargo test --release -q -p pallas-checkers --test rule_regressions

echo "== golden corpus snapshots =="
# Byte-for-byte NDJSON snapshots of every corpus set; regenerate
# intentional changes with UPDATE_GOLDEN=1 (see tests/golden_corpus.rs).
cargo test -q --test golden_corpus

echo "== daemon soak (CI-length knob) =="
PALLAS_SOAK_SECS=5 cargo test -q -p pallas-service --test soak

echo "== loadgen smoke (transport matrix, coalescing, throughput floor) =="
# The 2x2 matrix (unix, tcp) x (unique, duplicate): every cell must
# hold the throughput floor with zero dropped responses, and the
# duplicate-heavy cells must actually coalesce. Release builds sustain
# >10k req/s on tiny units; 1000 req/s leaves a 10x margin for noise.
cargo build --release -q -p bench
LOADGEN="$(target/release/repro --loadgen)"
echo "$LOADGEN"
[ "$(echo "$LOADGEN" | grep -c '^cell=')" -eq 4 ] \
  || { echo "ci: loadgen did not report all 4 matrix cells" >&2; exit 1; }
echo "$LOADGEN" | awk -F'reqs_per_sec=' '/^cell=/ {split($2,a," "); if (a[1]+0 < 1000) {print "ci: throughput floor missed: " $0; exit 1}}'
echo "$LOADGEN" | awk -F'dropped=' '/^cell=/ {split($2,a," "); if (a[1]+0 != 0) {print "ci: loadgen dropped responses: " $0; exit 1}}'
echo "$LOADGEN" | awk -F'coalesced=' '/^cell=.*duplicate/ {split($2,a," "); if (a[1]+0 == 0) {print "ci: duplicate workload never coalesced: " $0; exit 1}}'
echo "loadgen smoke: ok"

echo "== persistent store (warm restart byte-identity) =="
# Two `check --store` runs into a fresh store file: the second answers
# from disk (nonzero disk hits in --stage-stats) and its NDJSON must be
# byte-identical to the cold run's. `store verify` then CRC-checks
# every record the runs wrote.
STORE_DIR="$(mktemp -d /tmp/pallas-ci-store-XXXXXX)"
trap 'rm -rf "$SMOKE_DIR" "$SOCK" "$STORE_DIR"' EXIT
STORE="$STORE_DIR/ci.store"
"$PALLAS_BIN" check "$SMOKE_DIR/smoke.c" --json --store "$STORE" > "$STORE_DIR/cold.ndjson"
"$PALLAS_BIN" check "$SMOKE_DIR/smoke.c" --json --store "$STORE" > "$STORE_DIR/warm.ndjson"
cmp "$STORE_DIR/cold.ndjson" "$STORE_DIR/warm.ndjson" \
  || { echo "ci: persistent-warm NDJSON differs from the cold run" >&2; exit 1; }
WARM_STATS="$("$PALLAS_BIN" check "$SMOKE_DIR/smoke.c" --stage-stats --store "$STORE")"
echo "$WARM_STATS" | grep -q "disk" \
  || { echo "ci: --stage-stats lost the disk cache row" >&2; exit 1; }
if echo "$WARM_STATS" | grep "disk" | grep -qE "^\s*disk\s+0\s"; then
  echo "ci: warm run reported zero store hits" >&2; exit 1
fi
"$PALLAS_BIN" store "$STORE" verify | grep -q "all record checksums verified" \
  || { echo "ci: store verify failed" >&2; exit 1; }
echo "persistent store: ok"

echo "== sym-bench regression gate (warm latency + arena footprint) =="
# `repro --sym-bench` checks the Table 1 corpus cold and warm through
# one engine and reports the hash-cons arena population. The gate pins
# three things against scripts/sym_bench_baseline.env:
#   1. warm per-unit latency within a noise multiple of the baseline
#      (a deep copy sneaking back onto the warm path trips this);
#   2. arena node / interned string counts within a tight allowance
#      (deterministic, so a lost dedup shows up exactly);
#   3. warm at least 1.5x faster per unit than cold (the headline
#      claim of the hash-consing change, kept as a standing invariant).
. scripts/sym_bench_baseline.env
SYM="$(target/release/repro --sym-bench)"
echo "$SYM"
SYM_LINE="$(echo "$SYM" | grep '^symbench ')" \
  || { echo "ci: --sym-bench lost its machine-readable line" >&2; exit 1; }
sym_field() { echo "$SYM_LINE" | tr ' ' '\n' | sed -n "s/^$1=//p"; }
SYM_COLD="$(sym_field cold_us_per_unit)"
SYM_WARM="$(sym_field warm_us_per_unit)"
SYM_NODES="$(sym_field nodes)"
SYM_STRINGS="$(sym_field strings)"
[ -n "$SYM_COLD" ] && [ -n "$SYM_WARM" ] && [ -n "$SYM_NODES" ] && [ -n "$SYM_STRINGS" ] \
  || { echo "ci: could not parse '$SYM_LINE'" >&2; exit 1; }
[ "$SYM_WARM" -le "$((BASELINE_WARM_US_PER_UNIT * MAX_WARM_MULT))" ] \
  || { echo "ci: warm per-unit time regressed: ${SYM_WARM}us > ${BASELINE_WARM_US_PER_UNIT}us * ${MAX_WARM_MULT}" >&2; exit 1; }
[ "$SYM_NODES" -le "$((BASELINE_NODES * MAX_COUNT_PCT / 100))" ] \
  || { echo "ci: arena node count regressed: ${SYM_NODES} > ${BASELINE_NODES} * ${MAX_COUNT_PCT}%" >&2; exit 1; }
[ "$SYM_STRINGS" -le "$((BASELINE_STRINGS * MAX_COUNT_PCT / 100))" ] \
  || { echo "ci: interned string count regressed: ${SYM_STRINGS} > ${BASELINE_STRINGS} * ${MAX_COUNT_PCT}%" >&2; exit 1; }
[ "$((SYM_COLD * 10))" -ge "$((SYM_WARM * MIN_SPEEDUP_X10))" ] \
  || { echo "ci: warm/cold speedup below $(($MIN_SPEEDUP_X10))x/10: cold=${SYM_COLD}us warm=${SYM_WARM}us" >&2; exit 1; }
echo "sym-bench gate: ok (cold=${SYM_COLD}us warm=${SYM_WARM}us nodes=${SYM_NODES} strings=${SYM_STRINGS})"

echo "ci: all green"
