#!/usr/bin/env bash
# Tier-1 gate plus workspace-wide tests and lints. Run from anywhere;
# operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (tier-1 root package) =="
cargo test -q

echo "== tests (full workspace) =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== daemon smoke test =="
cargo build --release -p pallas-cli
PALLAS_BIN=target/release/pallas
SOCK="$(mktemp -u /tmp/pallas-ci-XXXXXX.sock)"
SMOKE_DIR="$(mktemp -d /tmp/pallas-ci-smoke-XXXXXX)"
trap 'rm -rf "$SMOKE_DIR" "$SOCK"' EXIT
cat > "$SMOKE_DIR/smoke.c" <<'EOF'
typedef unsigned int gfp_t;
int noio(gfp_t m);
int alloc_fast(gfp_t gfp_mask) {
  gfp_mask = noio(gfp_mask);
  return 0;
}
EOF
echo "fastpath alloc_fast; immutable gfp_mask;" > "$SMOKE_DIR/smoke.pallas"
"$PALLAS_BIN" serve "$SOCK" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "ci: daemon never bound $SOCK" >&2; exit 1; }
"$PALLAS_BIN" client "$SOCK" check "$SMOKE_DIR/smoke.c" | grep -q "Rule 1.2"
"$PALLAS_BIN" client "$SOCK" check "$SMOKE_DIR/smoke.c" --json | grep -q '"type":"finding"'
"$PALLAS_BIN" client "$SOCK" stats | grep -q '"cache_hits":1'
"$PALLAS_BIN" client "$SOCK" shutdown | grep -q '"shutdown":true'
wait "$SERVE_PID"
echo "daemon smoke test: ok"

echo "== fuzz smoke (fixed seed, differential oracles) =="
# Two runs with the same seed must print the same digest line; any
# panic or oracle divergence makes `pallas fuzz` exit nonzero.
FUZZ_A="$("$PALLAS_BIN" fuzz --seed 42 --iters 200)"
FUZZ_B="$("$PALLAS_BIN" fuzz --seed 42 --iters 200)"
echo "$FUZZ_A"
echo "$FUZZ_A" | grep -q "failures=0" || { echo "ci: fuzz smoke found failures" >&2; exit 1; }
[ "$FUZZ_A" = "$FUZZ_B" ] || { echo "ci: fuzz digest not deterministic: '$FUZZ_A' vs '$FUZZ_B'" >&2; exit 1; }
echo "fuzz smoke: ok"

echo "== per-rule regression tests =="
cargo test --release -q -p pallas-checkers --test rule_regressions

echo "ci: all green"
