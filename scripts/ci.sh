#!/usr/bin/env bash
# Tier-1 gate plus workspace-wide tests and lints. Run from anywhere;
# operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (tier-1 root package) =="
cargo test -q

echo "== tests (full workspace) =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "ci: all green"
