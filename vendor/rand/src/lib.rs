//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the *exact* API subset it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen_bool`]. The generator is SplitMix64 —
//! deterministic for a given seed, which is the only property the
//! seeded corpus/workload generators rely on. Numeric streams differ
//! from upstream `rand`'s `StdRng` (ChaCha12), so seeds name *this*
//! implementation's sequences.

use std::ops::{Range, RangeInclusive};

/// Sources of randomness: a 64-bit output function is all we need.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding: only the `u64` convenience constructor is used here.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core
/// generator (mirrors `rand`'s `Rng: RngCore` extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`). The
    /// element type is an independent parameter, as in `rand` 0.8, so
    /// literal ranges infer it from the call site (`0..4` indexing a
    /// slice infers `usize`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range of `T` that can be sampled uniformly. Implemented once,
/// generically, for `Range<T>` / `RangeInclusive<T>` — a single
/// blanket impl (as in `rand` 0.8) is what lets `gen_range(0..4)`
/// infer the element type from the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer element types, widened through `i128` for the span math.
pub trait SampleUniform: Copy {
    #[doc(hidden)]
    fn to_i128(self) -> i128;
    #[doc(hidden)]
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    // Modulo reduction; the bias is irrelevant for test workloads.
    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(lo + sample_span(rng, (hi - lo) as u128) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(lo + sample_span(rng, (hi - lo) as u128 + 1) as i128)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
