//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy generating any value of `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::from_seed(1);
        let draws: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
