//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Generates `Vec`s whose length falls in `size`, drawing each element
/// independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let strat = vec(0u32..10, 2..5);
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = vec(0u8..=255, 3usize);
        let mut rng = TestRng::from_seed(7);
        assert_eq!(strat.generate(&mut rng).len(), 3);
    }
}
