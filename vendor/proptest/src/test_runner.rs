//! Deterministic test RNG and per-test configuration.

/// Per-proptest-block configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator seeded from the test's fully qualified name,
/// so every test sees a stable input sequence across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the UTF-8 bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seeds from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index below `n` (panics if `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `[lo, hi]` over i128 (basis for all integer
    /// range strategies).
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u128 + 1;
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + draw as i128
    }
}
