//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors the API subset its property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! regex-subset string strategies, integer-range and tuple strategies,
//! `proptest::collection::vec`, `any::<T>()`, and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Semantics differ from upstream in one deliberate way: inputs are
//! **generated only** — failing cases are reported by the ordinary test
//! panic without shrinking. Each test draws from a deterministic
//! SplitMix64 stream seeded from its fully qualified name, so runs are
//! reproducible without a persistence file.

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, running each body `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
}

/// Defines a function returning a strategy built by drawing named
/// intermediate values from other strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident : $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                })
        }
    };
}

/// Uniform choice among the given strategies (all must produce the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn offset_pair(base: i64)(
            a in 0i64..10,
            b in 0i64..10,
        ) -> (i64, i64) {
            (base + a, base + b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and config are accepted; arguments bind.
        #[test]
        fn ranges_and_tuples(x in 0u32..100, (a, b) in offset_pair(1000)) {
            prop_assert!(x < 100);
            prop_assert!((1000..1010).contains(&a) && (1000..1010).contains(&b));
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![
            Just("lhs".to_string()),
            "[a-z]{3}".prop_map(|s| format!("p_{s}")),
        ]) {
            prop_assert!(s == "lhs" || (s.starts_with("p_") && s.len() == 5), "{s}");
        }

        #[test]
        fn vec_filter_flat_map(v in crate::collection::vec(0u8..10, 1..4)
            .prop_filter("nonempty", |v| !v.is_empty())
            .prop_flat_map(|v| (Just(v.len()), 0usize..8))) {
            let (len, _draw) = v;
            prop_assert!((1..4).contains(&len));
        }
    }

    proptest! {
        /// Recursion terminates and produces nested output.
        #[test]
        fn recursive_strategy_terminates(e in Just(1u32).prop_map(|v| v.to_string())
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
            })) {
            prop_assert!(e.chars().filter(|&c| c == '(').count() <= 15, "{e}");
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
