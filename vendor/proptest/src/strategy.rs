//! The [`Strategy`] trait and its combinators (generate-only: this
//! stand-in does not shrink failing inputs).

use crate::pattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values. Object-safe core (`generate`) plus
/// `Sized` combinators mirroring proptest's names.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (regenerates up to a
    /// bounded number of attempts).
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), f }
    }

    /// Feeds generated values into a strategy-producing function and
    /// draws from the produced strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the strategy for the next one, up to
    /// `depth` levels above the base (`_desired_size` / `_expected_branch`
    /// are accepted for signature compatibility).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut levels = vec![base];
        for d in 0..depth {
            let next = f(levels[d as usize].clone()).boxed();
            levels.push(next);
        }
        // Mix depths so leaves stay common, like upstream's weighting.
        BoxedStrategy::new(SelectDepth { levels })
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Cloneable type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> BoxedStrategy<T> {
    fn new(s: impl Strategy<Value = T> + 'static) -> Self {
        BoxedStrategy { inner: Rc::new(s) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

struct SelectDepth<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for SelectDepth<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let level = rng.below(self.levels.len());
        self.levels[level].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given (non-empty) alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Closure-backed strategy (the `prop_compose!` backend).
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
    /// Wraps a generator closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// String strategies from regex-subset patterns (`"[a-z]{1,8}"`, …).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
