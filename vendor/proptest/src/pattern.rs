//! Generator for the regex subset used as string strategies: literal
//! characters, escapes, character classes with ranges, and the
//! `{n}` / `{n,m}` / `*` / `+` / `?` quantifiers.

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    /// Inclusive codepoint ranges; a lone member is `(c, c)`.
    Class(Vec<(char, char)>),
}

struct Item {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Draws one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let items = parse(pattern);
    let mut out = String::new();
    for item in &items {
        let n = if item.min == item.max {
            item.min
        } else {
            item.min + rng.below(item.max - item.min + 1)
        };
        for _ in 0..n {
            out.push(match &item.atom {
                Atom::Literal(c) => *c,
                Atom::Class(ranges) => pick(ranges, rng),
            });
        }
    }
    out
}

/// Uniform draw over the union of ranges, weighted by range width.
fn pick(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
    let mut draw = rng.next_u64() % total;
    for (lo, hi) in ranges {
        let span = *hi as u64 - *lo as u64 + 1;
        if draw < span {
            return char::from_u32(*lo as u32 + draw as u32)
                .expect("class ranges contain only valid scalars");
        }
        draw -= span;
    }
    unreachable!("draw bounded by total span")
}

fn parse(pattern: &str) -> Vec<Item> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(ranges)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in pattern {pattern:?}");
                i += 2;
                Atom::Literal(unescape(chars[i - 1]))
            }
            '.' => {
                i += 1;
                Atom::Class(vec![(' ', '~')])
            }
            c @ ('(' | ')' | '|') => {
                panic!("pattern feature {c:?} is not supported by the offline proptest stand-in (pattern {pattern:?})")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let (bounds, next) = parse_repeat(&chars, i + 1, pattern);
                i = next;
                bounds
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "empty repeat {{{min},{max}}} in pattern {pattern:?}");
        items.push(Item { atom, min, max });
    }
    items
}

/// Parses class members starting just past `[`; returns the ranges and
/// the index just past `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = class_member(chars, &mut i, pattern);
        // `a-z` forms a range unless the `-` is the final member.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            i += 1;
            let hi = class_member(chars, &mut i, pattern);
            assert!(lo <= hi, "inverted class range {lo:?}-{hi:?} in pattern {pattern:?}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(chars.get(i) == Some(&']'), "unterminated class in pattern {pattern:?}");
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    (ranges, i + 1)
}

fn class_member(chars: &[char], i: &mut usize, pattern: &str) -> char {
    let c = chars[*i];
    *i += 1;
    if c == '\\' {
        assert!(*i < chars.len(), "dangling escape in pattern {pattern:?}");
        let e = chars[*i];
        *i += 1;
        unescape(e)
    } else {
        c
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses digits starting just past `{`; returns `(min, max)` and the
/// index just past `}`.
fn parse_repeat(chars: &[char], mut i: usize, pattern: &str) -> ((usize, usize), usize) {
    let min = parse_number(chars, &mut i, pattern);
    let bounds = if chars.get(i) == Some(&',') {
        i += 1;
        (min, parse_number(chars, &mut i, pattern))
    } else {
        (min, min)
    };
    assert!(chars.get(i) == Some(&'}'), "unterminated repeat in pattern {pattern:?}");
    (bounds, i + 1)
}

fn parse_number(chars: &[char], i: &mut usize, pattern: &str) -> usize {
    let start = *i;
    while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
        *i += 1;
    }
    assert!(*i > start, "expected a number in repeat of pattern {pattern:?}");
    chars[start..*i].iter().collect::<String>().parse().expect("digits parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::from_seed(42);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn identifier_pattern() {
        for s in sample("[a-z][a-z0-9_]{0,8}", 200) {
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_with_control_chars() {
        // The class holds a space-to-tilde range plus literal \n and \t.
        let mut seen_len_spread = std::collections::HashSet::new();
        for s in sample("[ -~\n\t]{0,200}", 100) {
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'), "{s:?}");
            seen_len_spread.insert(s.len());
        }
        assert!(seen_len_spread.len() > 10, "lengths should vary");
    }

    #[test]
    fn literal_separator() {
        for s in sample("[a-z]{2,6}/[a-z_]{2,10}", 100) {
            let (a, b) = s.split_once('/').expect("separator present");
            assert!((2..=6).contains(&a.len()), "{s:?}");
            assert!((2..=10).contains(&b.len()), "{s:?}");
        }
    }

    #[test]
    fn exact_repeat_and_postfix_quantifiers() {
        for s in sample("x{3}", 10) {
            assert_eq!(s, "xxx");
        }
        for s in sample("a?b+", 50) {
            let plus = s.trim_start_matches('a');
            assert!(s.len() - plus.len() <= 1);
            assert!(!plus.is_empty() && plus.chars().all(|c| c == 'b'), "{s:?}");
        }
    }
}
