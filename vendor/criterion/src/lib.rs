//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of
//! statistical sampling it runs one warm-up iteration plus
//! `sample_size` timed iterations and prints mean and min wall-clock
//! time per benchmark — enough to compare alternatives (cold vs warm
//! cache, chunked vs work-stealing) on the same machine in one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded but not rated in this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// warm-up call whose result is discarded).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let started = Instant::now();
            std::hint::black_box(f());
            self.timings.push(started.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the workload size (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), 10, |b| f(b));
        self
    }
}

fn run_one(group: &str, id: &BenchmarkId, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, timings: Vec::with_capacity(samples) };
    f(&mut b);
    let label = if group.is_empty() { id.id.clone() } else { format!("{group}/{}", id.id) };
    if b.timings.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    let min = b.timings.iter().min().copied().unwrap_or_default();
    println!("{label:<48} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)", b.timings.len());
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_with_input(
            BenchmarkId::new("sum", 3),
            &vec![1, 2, 3],
            |b, v| b.iter(|| v.iter().sum::<i32>()),
        );
    }
}
