//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two API surfaces this workspace consumes:
//!
//! * [`deque`] — the `Injector` / `Worker` / `Stealer` work-stealing
//!   triple behind the staged engine's scheduler. Upstream crossbeam
//!   implements these lock-free (Chase–Lev); this stand-in uses short
//!   critical sections over `Mutex<VecDeque>`, which preserves the
//!   scheduling semantics (FIFO injector, LIFO-ish steals, batch
//!   refill) at task granularities of microseconds and up — our unit
//!   analyses take milliseconds, so lock overhead is noise.
//! * [`thread`] — `scope`/`spawn` on top of `std::thread::scope`.

pub mod deque {
    //! Work-stealing deques: a global [`Injector`] plus per-worker
    //! [`Worker`] queues whose [`Stealer`] handles let idle threads
    //! take work from busy ones.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Chains a second steal attempt: a success short-circuits, an
        /// `Empty` after a `Retry` stays `Retry` (upstream semantics,
        /// so retry loops don't terminate while a racing steal is
        /// still possible).
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Success(t) => Steal::Success(t),
                Steal::Empty => f(),
                Steal::Retry => match f() {
                    Steal::Success(t) => Steal::Success(t),
                    _ => Steal::Retry,
                },
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        /// First success wins; otherwise `Retry` if any attempt must be
        /// retried; otherwise `Empty` (mirrors upstream semantics).
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(t) => return Steal::Success(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    /// A global FIFO task queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Pops one task from the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Moves a batch of tasks (up to half the queue) into `dest`'s
        /// local queue and pops one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().expect("injector lock");
            let n = q.len();
            if n == 0 {
                return Steal::Empty;
            }
            let take = (n / 2).max(1);
            let mut local = dest.queue.lock().expect("worker lock");
            for _ in 0..take - 1 {
                if let Some(t) = q.pop_front() {
                    local.push_back(t);
                }
            }
            match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }
    }

    /// A worker-local queue; the owning thread pushes and pops cheaply,
    /// other threads steal through [`Stealer`] handles.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pops the next local task.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker lock").pop_front()
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// A stealing handle to another worker's queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam::thread::scope` call shape
    //! (`scope(|s| { s.spawn(|_| ...); })`), on `std::thread::scope`.

    /// A scope handle; `spawn` closures receive it as their argument
    /// for upstream signature compatibility.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || f(&Scope { inner: inner_scope }));
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Runs `f` with a scope in which threads borrowing local data can
    /// be spawned; all are joined before `scope` returns. Unlike
    /// upstream, a panicking child propagates on join inside the scope,
    /// so the `Ok` path is the only one observed by callers.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn injector_round_trip() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal().success(), Some(1));
        assert!(!inj.is_empty());
        assert_eq!(inj.steal().success(), Some(2));
        assert!(matches!(inj.steal(), Steal::Empty));
    }

    #[test]
    fn batch_refills_local_queue() {
        let inj = Injector::new();
        for i in 0..8 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(3));
        // Half of 8 = 4 tasks taken: 0,1,2 into the local queue, 3 popped.
        assert_eq!(w.pop(), Some(0));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_back() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn scoped_threads_join() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(sum, 6);
    }
}
