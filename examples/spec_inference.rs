//! Spec inference: bootstrap a semantic spec from the fast/slow diff,
//! then check with it — the workflow the paper leaves as future work.
//!
//! Run with: `cargo run --example spec_inference`
//!
//! Pallas' only input burden is the handful of semantic facts (§4).
//! `infer_spec` proposes them automatically by contrasting the fast
//! path against its slow path: shared read-only inputs become
//! `immutable` candidates, fast-only conditions become the trigger,
//! error-shaped states only the slow path handles become `fault`
//! candidates. The example infers a spec for a UBIFS-like write path,
//! prints the evidence, and shows that checking with the *inferred*
//! spec already finds a real injected bug.

use pallas::checkers::{run_all, CheckContext, Rule};
use pallas::core::Pallas;
use pallas::diff::infer_spec;

const SOURCE: &str = r#"
int budget_space(int inode);
int write_page(int page);

int ubifs_write_slow(int inode, int page, int io_err) {
    int err = budget_space(inode);
    if (err)
        return -1;
    if (io_err)
        return -5;
    write_page(page);
    return 0;
}

/* BUG: skips the io_err fault handling the slow path performs. */
int ubifs_write_fast(int inode, int page, int io_err, int free_space) {
    if (free_space > 0) {
        write_page(page);
        return 0;
    }
    return -1;
}

int do_write(int inode, int page, int io_err, int free_space) {
    int r = ubifs_write_fast(inode, page, io_err, free_space);
    if (r < 0)
        return r;
    return 0;
}
"#;

fn main() {
    // Step 1: build the path database with an empty spec.
    let analyzed = Pallas::new()
        .check_source("fs/ubifs_like", SOURCE, "")
        .expect("source is well-formed");

    // Step 2: infer a spec from the fast/slow contrast.
    let inferred = infer_spec(&analyzed.db, &analyzed.ast, "ubifs_write_fast", "ubifs_write_slow")
        .expect("both functions exist");
    println!("{inferred}");

    // Step 3: check with the inferred spec.
    let warnings = run_all(&CheckContext {
        db: &analyzed.db,
        spec: &inferred.spec,
        ast: &analyzed.ast,
    });
    println!("checking with the inferred spec:");
    for w in &warnings {
        println!("  {w}");
    }
    assert!(
        warnings
            .iter()
            .any(|w| w.rule == Rule::FaultMissing && w.message.contains("io_err")),
        "the inferred fault fact finds the skipped io_err handling"
    );
    println!("\nthe inferred `fault io_err` fact found the injected bug.");
}
