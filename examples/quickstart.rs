//! Quickstart: check a fast path with three lines of semantic spec.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The snippet below is the paper's §2.1 motivating bug in miniature:
//! the page allocator's fast path overwrites the immutable `gfp_mask`,
//! corrupting the input state of every later allocation. Telling
//! Pallas which variable is immutable — one spec line — is enough for
//! the path-state checker to pinpoint the bug.

use pallas::core::{render_unit_report, Pallas};

const SOURCE: &str = r#"
typedef unsigned int gfp_t;

int memalloc_noio_flags(gfp_t mask);
int get_page_from_freelist(gfp_t mask, int order);

int alloc_pages_fast(gfp_t gfp_mask, int order) {
    if (order == 0) {
        /* BUG: gfp_mask is an input state shared with the slow path
           and must never be modified here. */
        gfp_mask = memalloc_noio_flags(gfp_mask);
        return get_page_from_freelist(gfp_mask, order);
    }
    return 0;
}
"#;

const SPEC: &str = "\
unit mm/quickstart;
fastpath alloc_pages_fast;
immutable gfp_mask;
cond order0: order;
";

fn main() {
    let driver = Pallas::new();
    let report = driver
        .check_source("mm/quickstart", SOURCE, SPEC)
        .expect("the quickstart source is well-formed");

    print!("{}", render_unit_report(&report));

    assert_eq!(report.warnings.len(), 1, "exactly the injected bug");
    println!(
        "\nPallas found the bug: {} (rule {})",
        report.warnings[0].message,
        report.warnings[0].rule.number()
    );
}
