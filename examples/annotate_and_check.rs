//! Annotate-and-check: the inline-pragma workflow plus the effect of
//! callee summary-inlining on false positives.
//!
//! Run with: `cargo run --example annotate_and_check`
//!
//! Part 1 shows the developer workflow the paper argues is cheap
//! (§4, §6): semantic facts live as `/* @pallas ... */` comments next
//! to the code they describe, so no separate spec file is needed.
//!
//! Part 2 reproduces a §5.3 false-positive source: a fault handled by
//! a low-level helper. With summary-inlining at depth 1 Pallas sees a
//! direct helper's check; when the handling sits two levels down, the
//! check is invisible and a false positive appears — exactly the
//! paper's behaviour.

use pallas::core::Pallas;
use pallas::sym::ExtractConfig;

const ANNOTATED: &str = r#"
/* @pallas unit fs/annotated_write; */
/* @pallas fastpath write_begin_fast; */
struct page { int uptodate; int dirty; };
int budget_space(int bytes);

/* @pallas immutable bytes; */
/* @pallas fault no_space; */
int write_begin_fast(struct page *pg, int bytes, int no_space) {
    if (no_space)
        return -28;              /* fault handled: checked in flow control */
    bytes = bytes - 8;           /* BUG: immutable input state modified */
    pg->dirty = 1;
    return 0;
}
"#;

const DEEP_FAULT: &str = r#"
int handle_level2(int io_failed) {
    if (io_failed)
        return 1;
    return 0;
}
int handle_level1(int io_failed) {
    return handle_level2(io_failed);
}
int submit_fast(int io_failed) {
    handle_level1(io_failed);
    return 0;
}
"#;

fn main() {
    println!("== part 1: inline @pallas pragmas ==\n");
    let report = Pallas::new()
        .check_source("fs/annotated_write", ANNOTATED, "")
        .expect("annotated source parses");
    println!(
        "spec assembled from pragmas: {} fact(s), fast path `{}`",
        report.spec.fact_count(),
        report.spec.fastpath.join(", ")
    );
    for w in &report.warnings {
        println!("  {w}");
    }
    assert_eq!(report.warnings.len(), 1, "only the immutable-overwrite bug");

    println!("\n== part 2: inlining depth vs the fault-handling false positive ==\n");
    let spec = "fastpath submit_fast; fault io_failed;";
    for depth in [0u8, 1, 2] {
        let driver = Pallas::new()
            .with_config(ExtractConfig { inline_depth: depth, ..ExtractConfig::default() });
        let report = driver
            .check_source("dev/deep_fault", DEEP_FAULT, spec)
            .expect("source parses");
        println!(
            "inline depth {depth}: {} warning(s){}",
            report.warnings.len(),
            if report.warnings.is_empty() {
                " — handling visible through summaries"
            } else {
                " — handler two levels down is invisible (the paper's FH false positive)"
            }
        );
    }
}
