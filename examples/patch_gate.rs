//! Patch gate: use Pallas as a CI-style gate that rejects a fast path
//! until its patch lands.
//!
//! Run with: `cargo run --example patch_gate`
//!
//! Two real patches from the paper are replayed: the RPS trigger-
//! condition fix (Figure 5) and the SCSI fault-handler fix (Figure 8).
//! The gate checks the *buggy* function first (warnings → reject),
//! then re-points the same spec at the *fixed* function (clean →
//! accept), demonstrating that the rules accept correct code rather
//! than merely flagging everything.

use pallas::core::{Pallas, SourceUnit};
use pallas::corpus;

/// Checks one function of a unit under the given spec; returns the
/// number of warnings.
fn gate(unit: &SourceUnit, spec: &str, label: &str) -> usize {
    let mut gated = unit.clone();
    gated.spec_text = spec.to_string();
    let analyzed = Pallas::new().check_unit(&gated).expect("unit parses");
    if analyzed.warnings.is_empty() {
        println!("  ACCEPT {label}: no warnings");
    } else {
        println!("  REJECT {label}:");
        for w in &analyzed.warnings {
            println!("    {w}");
        }
    }
    analyzed.warnings.len()
}

fn main() {
    println!("== gating the RPS fast path (Figure 5 patch) ==");
    let rps = corpus::examples::rps_map();
    let buggy = gate(
        &rps.unit,
        "fastpath get_rps_cpu_fast; cond rps_ready: len, rps_flow_table;",
        "get_rps_cpu_fast (pre-patch)",
    );
    let fixed = gate(
        &rps.unit,
        "fastpath get_rps_cpu_fixed; cond rps_ready: len, rps_flow_table;",
        "get_rps_cpu_fixed (post-patch)",
    );
    assert!(buggy > 0 && fixed == 0, "gate must flip on the patch");

    println!("\n== gating the SCSI teardown fast path (Figure 8 patch) ==");
    let scsi = corpus::examples::scsi_free_cmd();
    let buggy = gate(
        &scsi.unit,
        "fastpath transport_generic_free_cmd; fault state_active;",
        "transport_generic_free_cmd (pre-patch)",
    );
    let fixed = gate(
        &scsi.unit,
        "fastpath transport_generic_free_cmd_fixed; fault state_active;",
        "transport_generic_free_cmd_fixed (post-patch)",
    );
    assert!(buggy > 0 && fixed == 0, "gate must flip on the patch");

    println!("\nboth patches flip the gate from REJECT to ACCEPT.");
}
