//! Kernel audit: run Pallas over the paper's fast-path miniatures —
//! page allocation, UBIFS writes, TCP receive, RPS, SCSI teardown,
//! the NFS inode cache — and inspect what each checker family finds.
//!
//! Run with: `cargo run --example kernel_audit`
//!
//! This is the workflow of the paper's §5 evaluation: for each
//! committed fast path, write a few spec lines, run the five checkers,
//! and triage the warnings. The example also prints the Table 5-style
//! symbolic listing for the page allocator and the fast-vs-slow diff
//! the methodology (§3.1) uses to seed specs.

use pallas::core::{render_unit_report, score, Pallas};
use pallas::corpus;
use pallas::diff::diff_paths;
use pallas::sym::render_table5;

fn main() {
    let driver = Pallas::new();

    println!("== auditing the figure miniatures ==\n");
    for cu in corpus::examples() {
        let analyzed = driver.check_unit(&cu.unit).expect("corpus unit checks");
        let s = score(&analyzed.warnings, &cu.bugs);
        println!("{:<30} {}", cu.name(), s);
        for w in &analyzed.warnings {
            println!("    {w}");
        }
    }

    println!("\n== symbolic extraction of the page-allocation fast path (Table 5) ==\n");
    let cu = corpus::examples::page_alloc();
    let analyzed = driver.check_unit(&cu.unit).expect("corpus unit checks");
    let f = analyzed
        .db
        .function("__alloc_pages_nodemask")
        .expect("fast path extracted");
    // Show the path that reaches the slow branch, where the overwrite
    // happens.
    let rec = f
        .records
        .iter()
        .find(|r| {
            r.states().any(
                |e| matches!(e, pallas::sym::Event::State { lvalue, .. } if lvalue == "gfp_mask"),
            )
        })
        .expect("overwriting path exists");
    print!("{}", render_table5(f, rec, &analyzed.spec));

    println!("\n== fast vs slow diff for the TCP receive path (methodology §3.1) ==\n");
    let cu = corpus::examples::tcp_rcv();
    let analyzed = driver.check_unit(&cu.unit).expect("corpus unit checks");
    let report = diff_paths(&analyzed.db, "tcp_rcv_established", "tcp_rcv_slow")
        .expect("both paths extracted");
    print!("{report}");
    println!(
        "specialization degree: {} (checks/calls the fast path drops)",
        report.specialization_degree()
    );

    println!("\n== full unit report for the RPS incomplete-condition bug ==\n");
    let cu = corpus::examples::rps_map();
    let analyzed = driver.check_unit(&cu.unit).expect("corpus unit checks");
    print!("{}", render_unit_report(&analyzed));
}
