//! Explore the path database: the intermediate representations behind
//! the checkers — CFGs, loops, the call graph, symbolic path records,
//! and database statistics.
//!
//! Run with: `cargo run --example explore_paths`
//!
//! Useful when writing a new checker or debugging why a rule did or
//! did not fire: everything the rules see is inspectable here.

use pallas::cfg::{build_cfg, loop_stats, render_ascii};
use pallas::core::Pallas;
use pallas::sym::{render_table5, CallGraph, DbStats};

const SOURCE: &str = r#"
struct zone { int free_pages; int lock; };
int take_lock(struct zone *z);
int refill_pcp(struct zone *z);

int pcp_alloc(struct zone *zone, int count) {
    int taken = 0;
    while (taken < count) {
        if (zone->free_pages == 0) {
            refill_pcp(zone);
        }
        zone->free_pages--;
        taken++;
    }
    return taken;
}

int rmqueue(struct zone *zone, int order, int count) {
    if (order == 0)
        return pcp_alloc(zone, count);
    take_lock(zone);
    return count;
}
"#;

fn main() {
    let analyzed = Pallas::new()
        .check_source("mm/explore", SOURCE, "fastpath rmqueue; cond order0: order;")
        .expect("source is well-formed");

    println!("== CFG of the fast path entry ==\n");
    let f = analyzed.ast.function("rmqueue").expect("defined above");
    let cfg = build_cfg(&analyzed.ast, f);
    print!("{}", render_ascii(&analyzed.ast, &cfg));

    println!("\n== loop structure of the callee ==\n");
    let pcp = analyzed.ast.function("pcp_alloc").expect("defined above");
    let pcp_cfg = build_cfg(&analyzed.ast, pcp);
    let (loops, nesting) = loop_stats(&pcp_cfg);
    println!("pcp_alloc: {loops} loop(s), max nesting {nesting} (bounded unrolling applies)");

    println!("\n== call graph ==\n");
    let cg = CallGraph::build(&analyzed.db);
    for func in ["rmqueue", "pcp_alloc"] {
        println!("{func} calls: {:?}", cg.callees(func));
    }
    println!(
        "depth rmqueue -> refill_pcp: {:?}",
        cg.call_depth("rmqueue", "refill_pcp")
    );

    println!("\n== symbolic record of the fast path's first path ==\n");
    let fp = analyzed.db.function("rmqueue").expect("extracted");
    print!("{}", render_table5(fp, &fp.records[0], &analyzed.spec));

    println!("\n== database statistics ==\n");
    println!("{}", DbStats::compute(&analyzed.db));

    assert!(analyzed.warnings.is_empty(), "this unit is clean");
    println!("\nno warnings — the trigger condition is checked.");
}
