//! Per-rule code templates for synthesizing corpus units.
//!
//! Every template produces one *segment*: top-level helper items, extra
//! parameters for the unit's fast-path function, body statements, spec
//! fragments, and the expected ground-truth outcome. A buggy segment
//! raises exactly one warning that matches its ground truth; a
//! false-positive segment raises exactly one warning that manual
//! validation (the ground-truth label) rejects — reproducing the §5.3
//! false-positive sources structurally where the paper names a
//! mechanism.

use crate::types::Component;
use pallas_checkers::Rule;

/// Naming flavor per component, to keep synthesized units idiomatic
/// for their subsystem.
pub fn flavor_nouns(component: Component) -> &'static [&'static str] {
    match component {
        Component::Mm => &["page", "zone", "pcp", "vma", "folio", "node", "lru", "pte"],
        Component::Fs => &["inode", "dentry", "extent", "journal", "bio", "leaf", "xattr", "blk"],
        Component::Net => &["skb", "sock", "seg", "route", "frag", "pkt", "queue", "flow"],
        Component::Dev => &["cmd", "ring", "irq", "dma", "lun", "port", "desc", "chan"],
        Component::Wb => &["frame", "task", "tile", "loader", "handle", "nexe", "layer", "url"],
        Component::Sdn => &["dp", "tun", "meter", "band", "ofp", "match", "mask", "ct"],
        Component::Mob => &["binder", "ion", "fence", "wake", "pol", "heap", "ref", "proc"],
    }
}

/// One synthesized code fragment to compose into a unit.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The rule exercised.
    pub rule: Rule,
    /// True for a deliberately benign (false-positive) pattern.
    pub is_fp: bool,
    /// Top-level items to place before the fast-path function.
    pub items_pre: String,
    /// Top-level items to place after the fast-path function
    /// (callers for Rule 3.3).
    pub items_post: String,
    /// Parameters `(type, name)` to append to the fast-path signature.
    pub params: Vec<(String, String)>,
    /// Statements to insert into the fast-path body.
    pub body: String,
    /// Spec fragment lines.
    pub spec: String,
    /// Function the resulting warning is expected in (`None` = the
    /// fast-path function itself).
    pub expected_function: Option<String>,
    /// One-line description of the injected pattern (Table 7 "Error").
    pub description: String,
}

/// Builds the segment for `rule` (buggy or false-positive flavor).
///
/// `fast_fn` is the unit's fast-path function name; `sidx` is a
/// per-unit unique suffix; `noun` flavors identifiers.
pub fn segment(rule: Rule, is_fp: bool, fast_fn: &str, sidx: usize, noun: &str) -> Segment {
    let n = format!("{noun}{sidx}");
    let mut seg = Segment {
        rule,
        is_fp,
        items_pre: String::new(),
        items_post: String::new(),
        params: Vec::new(),
        body: String::new(),
        spec: String::new(),
        expected_function: None,
        description: String::new(),
    };
    match (rule, is_fp) {
        (Rule::ImmutableOverwrite, false) => {
            seg.items_pre = format!("int adjust_{n}(int m);\n");
            seg.params.push(("int".into(), format!("{n}_mask")));
            seg.body = format!("  {n}_mask = adjust_{n}({n}_mask);\n");
            seg.spec = format!("immutable {n}_mask;");
            seg.description = "immutable state".into();
        }
        (Rule::ImmutableOverwrite, true) => {
            // §5.3: snapshot to a global, tweak locally, restore later.
            seg.items_pre =
                format!("int saved_{n};\nint restore_{n}(int m);\n");
            seg.params.push(("int".into(), format!("{n}_mask")));
            seg.body = format!(
                "  saved_{n} = {n}_mask;\n  {n}_mask = {n}_mask | 4;\n  restore_{n}({n}_mask);\n"
            );
            seg.spec = format!("immutable {n}_mask;");
            seg.description = "snapshot/restore of immutable (benign)".into();
        }
        (Rule::ImmutableInit, false) => {
            seg.items_pre = format!("int consume_{n}(int f);\n");
            seg.body = format!("  int {n}_flags;\n  consume_{n}({n}_flags);\n");
            seg.spec = format!("immutable {n}_flags;");
            seg.description = "uninitialized state".into();
        }
        (Rule::ImmutableInit, true) => {
            // Initialized through an out-parameter the extractor cannot
            // see as a write.
            seg.items_pre =
                format!("int fill_{n}(int *p);\nint consume_{n}(int f);\n");
            seg.body = format!(
                "  int {n}_flags;\n  fill_{n}(&{n}_flags);\n  consume_{n}({n}_flags);\n"
            );
            seg.spec = format!("immutable {n}_flags;");
            seg.description = "out-parameter initialization (benign)".into();
        }
        (Rule::Correlated, false) => {
            seg.items_pre = format!("int select_{n}(int z);\n");
            seg.params.push(("int".into(), format!("{n}_pref")));
            seg.params.push(("int".into(), format!("{n}_allowed")));
            seg.body = format!("  if ({n}_pref > 0)\n    select_{n}({n}_pref);\n");
            seg.spec = format!("correlated {n}_pref -> {n}_allowed;");
            seg.description = "wrong state".into();
        }
        (Rule::Correlated, true) => {
            // The correlated state is consulted through a cached getter
            // whose name hides it from the strict-atom matcher.
            seg.items_pre = format!("int get_{n}_allowed_cached(void);\n");
            seg.params.push(("int".into(), format!("{n}_pref")));
            seg.params.push(("int".into(), format!("{n}_allowed")));
            seg.body =
                format!("  if ({n}_pref > 0)\n    get_{n}_allowed_cached();\n");
            seg.spec = format!("correlated {n}_pref -> {n}_allowed;");
            seg.description = "correlation via cached getter (benign)".into();
        }
        (Rule::CondMissing, false) => {
            seg.params.push(("int".into(), format!("{n}_data")));
            seg.params.push(("int".into(), format!("{n}_resized")));
            seg.body = format!("  int {n}_tmp = {n}_data + 1;\n  {n}_tmp = {n}_tmp * 2;\n");
            seg.spec = format!("cond {n}_switch: {n}_resized;");
            seg.description = "missing condition".into();
        }
        (Rule::CondMissing, true) => {
            // §5.3: the trigger is implicit in a flag bit of another
            // structure (a dirty bit), so the named variable never
            // appears.
            seg.items_pre = format!(
                "struct {n}_hdr {{ int flags; int {n}_dirty; }};\nint emit_{n}(int f);\n"
            );
            seg.params.push((format!("struct {n}_hdr *"), format!("{n}_h")));
            seg.body = format!(
                "  if ({n}_h->flags & 16)\n    emit_{n}({n}_h->flags);\n"
            );
            seg.spec = format!("cond {n}_switch: {n}_dirty;");
            seg.description = "implicit dirty-bit trigger (benign)".into();
        }
        (Rule::CondIncomplete, false) => {
            seg.items_pre = format!(
                "struct {n}_map {{ int len; int {n}_tbl; }};\nint steer_{n}(int l);\n"
            );
            seg.params.push((format!("struct {n}_map *"), format!("{n}_m")));
            seg.body = format!(
                "  if ({n}_m->len == 1)\n    steer_{n}({n}_m->len);\n"
            );
            seg.spec = format!("cond {n}_ready: len, {n}_tbl;");
            seg.description = "incomplete condition".into();
        }
        (Rule::CondIncomplete, true) => {
            // Second conjunct checked two call levels down, beyond the
            // summary-inlining depth.
            seg.items_pre = format!(
                "struct {n}_map {{ int len; int {n}_tbl; }};\n\
                 int deep2_{n}(int t) {{\n  if (t)\n    return 1;\n  return 0;\n}}\n\
                 int deep1_{n}(int t) {{\n  return deep2_{n}(t);\n}}\n"
            );
            seg.params.push((format!("struct {n}_map *"), format!("{n}_m")));
            seg.body = format!(
                "  if ({n}_m->len == 1)\n    deep1_{n}({n}_m->{n}_tbl);\n"
            );
            seg.spec = format!("cond {n}_ready: len, {n}_tbl;");
            seg.description = "deep second conjunct (benign)".into();
        }
        (Rule::CondOrder, false) | (Rule::CondOrder, true) => {
            // Buggy and benign share the shape: the benign instance is
            // one validation rejected after reproduction (§5.1's manual
            // step), e.g. because the reversed order is safe here.
            seg.items_pre = format!("int reclaim_{n}(void);\nint remote_{n}(void);\n");
            seg.params.push(("int".into(), format!("{n}_oom")));
            seg.params.push(("int".into(), format!("{n}_rem")));
            seg.body = format!(
                "  if ({n}_oom)\n    reclaim_{n}();\n  if ({n}_rem)\n    remote_{n}();\n"
            );
            seg.spec = format!(
                "cond {n}_remote: {n}_rem; cond {n}_oomc: {n}_oom; order {n}_remote before {n}_oomc;"
            );
            seg.description = if is_fp {
                "reversed order, safe in context (benign)".into()
            } else {
                "incorrect order".into()
            };
        }
        (Rule::OutputDefined, false) => {
            seg.params.push(("int".into(), format!("{n}_st")));
            seg.body = format!("  if ({n}_st)\n    return 2;\n");
            seg.spec = "returns 0, 1;".into();
            seg.description = "unexpected output".into();
        }
        (Rule::OutputDefined, true) => {
            // The returned variable is constrained upstream; the
            // checker cannot see the named value belongs to the set.
            seg.params.push(("int".into(), format!("{n}_cached_ret")));
            seg.body = format!("  if ({n}_cached_ret > 2)\n    return {n}_cached_ret;\n");
            seg.spec = "returns 0, 1;".into();
            seg.description = "validated-upstream return (benign)".into();
        }
        (Rule::OutputMatchSlow, _) => {
            seg.items_pre = format!(
                "int {fast_fn}_slow{sidx}(int v) {{\n  if (v)\n    return 2;\n  return 0;\n}}\n"
            );
            seg.params.push(("int".into(), format!("{n}_v")));
            seg.body = format!("  if ({n}_v)\n    return 1;\n");
            seg.spec = format!("slowpath {fast_fn}_slow{sidx}; match_slow_return;");
            seg.description = if is_fp {
                "mapped-equivalent return (benign)".into()
            } else {
                "wrong return".into()
            };
        }
        (Rule::OutputChecked, false) => {
            let caller = format!("invoke_{n}");
            seg.items_post = format!(
                "int {caller}(int v) {{\n  {fast_fn}(v{pad});\n  return 0;\n}}\n",
                pad = ", 0".repeat(0)
            );
            seg.spec = "check_return;".into();
            seg.expected_function = Some(caller);
            seg.description = "missing output checking".into();
        }
        (Rule::OutputChecked, true) => {
            // §5.3: the output is validated inside the fast path and
            // deliberately skipped by the caller.
            let caller = format!("invoke_{n}");
            seg.items_pre = format!("int log_{n}(int e);\n");
            seg.params.push(("int".into(), format!("{n}_r")));
            seg.body = format!("  if ({n}_r < 0)\n    log_{n}({n}_r);\n");
            seg.items_post =
                format!("int {caller}(int v) {{\n  {fast_fn}(v);\n  return 0;\n}}\n");
            seg.spec = "check_return;".into();
            seg.expected_function = Some(caller);
            seg.description = "internally-checked output (benign)".into();
        }
        (Rule::FaultMissing, false) => {
            seg.params.push(("int".into(), format!("{n}_err")));
            seg.body = format!("  int {n}_ok = {n}_err + 0;\n  {n}_ok = {n}_ok;\n");
            seg.spec = format!("fault {n}_failed;");
            seg.description = "missing handler".into();
        }
        (Rule::FaultMissing, true) => {
            // §5.3: the fault is handled by a low-level helper two
            // levels below the fast path.
            seg.items_pre = format!(
                "int handle2_{n}(int {n}_failed) {{\n  if ({n}_failed)\n    return 1;\n  return 0;\n}}\n\
                 int handle1_{n}(int {n}_failed) {{\n  return handle2_{n}({n}_failed);\n}}\n"
            );
            seg.params.push(("int".into(), format!("{n}_failed")));
            seg.body = format!("  handle1_{n}({n}_failed);\n");
            seg.spec = format!("fault {n}_failed;");
            seg.description = "fault handled in low-level helper (benign)".into();
        }
        (Rule::AssistLayout, false) => {
            seg.items_pre = format!(
                "struct {n}_aux {{ int {n}_hot; int {n}_cold; }};\nint read_{n}(int v);\n"
            );
            seg.params.push((format!("struct {n}_aux *"), format!("{n}_a")));
            seg.body = format!("  read_{n}({n}_a->{n}_hot);\n");
            seg.spec = format!("assist struct {n}_aux;");
            seg.description = "suboptimal layout".into();
        }
        (Rule::AssistLayout, true) => {
            // The cold field is used by the slow path sharing the
            // structure, so splitting it would be wrong.
            seg.items_pre = format!(
                "struct {n}_aux {{ int {n}_hot; int {n}_cold; }};\nint read_{n}(int v);\n\
                 int {fast_fn}_aux{sidx}(struct {n}_aux *a) {{\n  return a->{n}_cold;\n}}\n"
            );
            seg.params.push((format!("struct {n}_aux *"), format!("{n}_a")));
            seg.body = format!("  read_{n}({n}_a->{n}_hot);\n");
            seg.spec = format!("assist struct {n}_aux;");
            seg.description = "field shared with slow path (benign)".into();
        }
        (Rule::AssistStale, false) => {
            seg.params.push(("int".into(), format!("{n}_state")));
            seg.body = format!("  {n}_state = 0;\n");
            seg.spec = format!("cache {n}_cache for {n}_state;");
            seg.description = "stale value".into();
        }
        (Rule::AssistStale, true) => {
            // §5.3: the cache is refreshed lazily by a deferred worker.
            seg.items_pre = format!("int defer_{n}_writeback(void);\n");
            seg.params.push(("int".into(), format!("{n}_state")));
            seg.body = format!("  {n}_state = 0;\n  defer_{n}_writeback();\n");
            seg.spec = format!("cache {n}_cache for {n}_state;");
            seg.description = "lazily-synced cache (benign)".into();
        }
        (Rule::AcquireNoRelease, false) => {
            // The release is guarded, so the other arm leaks. (No
            // early return: composed units share one return set, and
            // a stray value would trip the path-output rules.)
            seg.items_pre = format!("int grab_{n}(void);\nint drop_{n}(int b);\n");
            seg.params.push(("int".into(), format!("{n}_len")));
            seg.body = format!(
                "  int {n}_buf = grab_{n}();\n  if ({n}_len)\n    drop_{n}({n}_buf);\n"
            );
            seg.spec = format!("pair grab_{n} -> drop_{n};");
            seg.description = "leaked resource".into();
        }
        (Rule::AcquireNoRelease, true) => {
            // Ownership transferred to a registry that releases later;
            // the path-local analysis cannot see the handoff.
            seg.items_pre = format!(
                "int grab_{n}(void);\nint drop_{n}(int b);\nint stash_{n}(int b);\n"
            );
            seg.body = format!("  int {n}_buf = grab_{n}();\n  stash_{n}({n}_buf);\n");
            seg.spec = format!("pair grab_{n} -> drop_{n};");
            seg.description = "ownership transferred to registry (benign)".into();
        }
        (Rule::ReleaseNoAcquire, _) => {
            // Buggy and benign share the shape: the benign instance
            // releases a caller-owned resource on the caller's behalf,
            // which manual validation accepts.
            seg.items_pre = format!("int grab_{n}(void);\nint drop_{n}(int b);\n");
            seg.params.push(("int".into(), format!("{n}_buf")));
            seg.body = format!("  drop_{n}({n}_buf);\n");
            seg.spec = format!("pair grab_{n} -> drop_{n};");
            seg.description = if is_fp {
                "releases caller-owned resource (benign)".into()
            } else {
                "unbalanced release".into()
            };
        }
        (Rule::FastPathExpensive, _) => {
            // Shared shape (doubled call, so the rule fires no matter
            // where the segment lands in a composed body): the benign
            // instance's helper is idempotent, so the second call
            // no-ops and manual validation rejects the warning.
            seg.items_pre = format!("int flush_{n}(void);\n");
            seg.body = format!("  flush_{n}();\n  flush_{n}();\n");
            seg.spec = format!("expensive flush_{n};");
            seg.description = if is_fp {
                "idempotent helper, second call no-ops (benign)".into()
            } else {
                "amplified slow work".into()
            };
        }
    }
    // Rule 3.3's bug flavor needs at least one parameter on the fast
    // path so the caller's single-argument call stays well-formed.
    if matches!(rule, Rule::OutputChecked) && seg.params.is_empty() {
        seg.params.push(("int".into(), format!("{n}_r")));
    }
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::compose_unit;
    use pallas_checkers::Rule;
    use pallas_core::Pallas;

    /// Every buggy template must raise exactly its one warning; every
    /// FP template exactly one unmatched warning.
    #[test]
    fn each_template_is_warning_exact() {
        for rule in Rule::ALL {
            for is_fp in [false, true] {
                let cu = compose_unit(
                    Component::Mm,
                    "tmpl/probe",
                    "probe_fast",
                    &[(rule, is_fp)],
                );
                let analyzed = Pallas::new().check_unit(&cu.unit).unwrap_or_else(|e| {
                    panic!("template {rule:?} fp={is_fp} failed to parse: {e}\n{}", cu.unit.files[0].1)
                });
                assert_eq!(
                    analyzed.warnings.len(),
                    1,
                    "template {rule:?} fp={is_fp} warnings: {:#?}\nsource:\n{}",
                    analyzed.warnings,
                    cu.unit.files[0].1
                );
                assert_eq!(analyzed.warnings[0].rule, rule, "fp={is_fp}");
                let s = pallas_core::score(&analyzed.warnings, &cu.bugs);
                if is_fp {
                    assert_eq!(s.bug_count(), 0, "{rule:?} fp must not match truth");
                    assert_eq!(s.false_positives.len(), 1);
                } else {
                    assert_eq!(s.bug_count(), 1, "{rule:?} bug must match truth");
                    assert!(s.missed.is_empty());
                }
            }
        }
    }

    /// Composing several rules into one unit keeps warnings exact.
    #[test]
    fn composed_segments_do_not_interfere() {
        let plan: Vec<(Rule, bool)> = vec![
            (Rule::ImmutableOverwrite, false),
            (Rule::CondMissing, false),
            (Rule::OutputDefined, false),
            (Rule::OutputMatchSlow, false),
            (Rule::FaultMissing, true),
            (Rule::AssistStale, false),
        ];
        let cu = compose_unit(Component::Net, "tmpl/multi", "multi_fast", &plan);
        let analyzed = Pallas::new().check_unit(&cu.unit).unwrap();
        assert_eq!(
            analyzed.warnings.len(),
            plan.len(),
            "{:#?}\nsource:\n{}",
            analyzed.warnings,
            cu.unit.files[0].1
        );
        let s = pallas_core::score(&analyzed.warnings, &cu.bugs);
        assert_eq!(s.bug_count(), 5);
        assert_eq!(s.false_positives.len(), 1);
        assert!(s.missed.is_empty());
    }
}
