//! The Table 8 completeness corpus: 62 known fast-path bugs from the
//! study synthesized back into checkable units, of which Pallas
//! re-detects 61 — the single miss is the paper's semantic exception
//! (a page state whose correct value exists only at runtime).

use crate::builder::compose_unit;
use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

/// Table 8 rows: `(rule, total bugs, detectable bugs)`.
pub fn table8_counts() -> [(Rule, usize, usize); 12] {
    [
        (Rule::ImmutableOverwrite, 4, 4),
        (Rule::Correlated, 6, 6),
        (Rule::ImmutableInit, 2, 2),
        (Rule::CondMissing, 8, 8),
        (Rule::CondIncomplete, 8, 8),
        (Rule::CondOrder, 2, 2),
        (Rule::OutputDefined, 6, 5), // the semantic-exception miss
        (Rule::OutputMatchSlow, 8, 8),
        (Rule::OutputChecked, 2, 2),
        (Rule::FaultMissing, 8, 8),
        (Rule::AssistLayout, 6, 6),
        (Rule::AssistStale, 2, 2),
    ]
}

/// The undetectable Table 8 bug: the fast path should return a *dirty*
/// page state but returns the state fetched at runtime; no static
/// value exists for the checker to compare against the defined set.
fn semantic_exception_unit() -> CorpusUnit {
    let src = "\
int get_page_state(int page);
int writeback_fast(int page) {
  if (page)
    return get_page_state(page);
  return 0;
}
";
    let spec = "unit mm/writeback_known; fastpath writeback_fast; returns 0, 1;";
    CorpusUnit {
        component: Component::Mm,
        unit: SourceUnit::new("mm/writeback_known")
            .with_file("writeback.c", src)
            .with_spec(spec),
        bugs: vec![KnownBug::new(
            "mm/writeback_known#3.1",
            Rule::OutputDefined,
            "writeback_fast",
            "page state returned as clean instead of dirty (runtime value)",
            "Data loss",
        )
        .undetectable()],
        expected_false_positives: 0,
        description: "Table 8 semantic exception: runtime-only page state".to_string(),
    }
}

/// Builds the 62-bug completeness corpus (one bug per unit).
pub fn known_bugs() -> Vec<CorpusUnit> {
    let mut corpus = Vec::new();
    let components = Component::ALL;
    let mut comp_cursor = 0usize;
    for (rule, total, detectable) in table8_counts() {
        for i in 0..total {
            if rule == Rule::OutputDefined && i >= detectable {
                corpus.push(semantic_exception_unit());
                continue;
            }
            let component = components[comp_cursor % components.len()];
            comp_cursor += 1;
            let unit_name = format!(
                "{}/known_{}_{}",
                component.prefix(),
                rule.number().replace('.', "_"),
                i
            );
            let fast_fn = format!("known_{}_{}_fast", rule.number().replace('.', "_"), i);
            corpus.push(compose_unit(component, &unit_name, &fast_fn, &[(rule, false)]));
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_two_bugs_one_undetectable() {
        let corpus = known_bugs();
        assert_eq!(corpus.len(), 62);
        let total_bugs: usize = corpus.iter().map(|u| u.bugs.len()).sum();
        assert_eq!(total_bugs, 62);
        let undetectable: usize = corpus
            .iter()
            .flat_map(|u| &u.bugs)
            .filter(|b| !b.detectable)
            .count();
        assert_eq!(undetectable, 1);
    }

    #[test]
    fn row_totals_match_paper() {
        let counts = table8_counts();
        let total: usize = counts.iter().map(|&(_, t, _)| t).sum();
        let detectable: usize = counts.iter().map(|&(_, _, d)| d).sum();
        assert_eq!(total, 62);
        assert_eq!(detectable, 61);
    }

    #[test]
    fn semantic_exception_is_output_rule() {
        let corpus = known_bugs();
        let exceptional: Vec<_> = corpus
            .iter()
            .filter(|u| u.bugs.iter().any(|b| !b.detectable))
            .collect();
        assert_eq!(exceptional.len(), 1);
        assert_eq!(exceptional[0].bugs[0].rule, Rule::OutputDefined);
    }
}
