//! Corpus-wide integrity checks, exposed as a function so both the
//! test suite and downstream tooling can validate a corpus before
//! using it as ground truth.

use crate::types::CorpusUnit;
use std::collections::BTreeSet;

/// Validates structural invariants over a corpus: unique unit names,
/// unique bug ids, component/prefix agreement, and non-empty sources.
/// Returns a list of violations (empty = valid).
pub fn validate(corpus: &[CorpusUnit]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut names = BTreeSet::new();
    let mut bug_ids = BTreeSet::new();
    for cu in corpus {
        if !names.insert(cu.name().to_string()) {
            problems.push(format!("duplicate unit name `{}`", cu.name()));
        }
        if !cu.name().starts_with(cu.component.prefix()) {
            problems.push(format!(
                "unit `{}` name does not start with component prefix `{}`",
                cu.name(),
                cu.component.prefix()
            ));
        }
        if cu.unit.files.is_empty() || cu.unit.files.iter().all(|(_, c)| c.trim().is_empty()) {
            problems.push(format!("unit `{}` has no source", cu.name()));
        }
        if cu.unit.spec_text.trim().is_empty() {
            problems.push(format!("unit `{}` has no spec", cu.name()));
        }
        for bug in &cu.bugs {
            if !bug_ids.insert(bug.id.clone()) {
                problems.push(format!("duplicate bug id `{}`", bug.id));
            }
            if bug.description.is_empty() {
                problems.push(format!("bug `{}` has no description", bug.id));
            }
            if bug.consequence.is_empty() {
                problems.push(format!("bug `{}` has no consequence", bug.id));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{examples, infeasible, known_bugs, new_bug_examples, new_paths, studied};

    #[test]
    fn every_corpus_set_is_internally_valid() {
        for (name, corpus) in [
            ("examples", examples()),
            ("studied", studied()),
            ("new_bug_examples", new_bug_examples()),
            ("new_paths", new_paths()),
            ("known_bugs", known_bugs()),
            ("infeasible", infeasible()),
        ] {
            let problems = validate(&corpus);
            assert!(problems.is_empty(), "{name}: {problems:#?}");
        }
    }

    #[test]
    fn sets_do_not_collide_by_name() {
        let mut all = BTreeSet::new();
        for corpus in
            [examples(), studied(), new_bug_examples(), new_paths(), known_bugs(), infeasible()]
        {
            for cu in corpus {
                assert!(all.insert(cu.name().to_string()), "duplicate across sets: {}", cu.name());
            }
        }
        assert!(all.len() >= 90 + 62 + 9 + 6 + 4 + 4);
    }

    #[test]
    fn validator_reports_problems() {
        let mut cu = examples()[0].clone();
        cu.unit.spec_text.clear();
        cu.bugs[0].description.clear();
        let mut broken = vec![cu.clone(), cu];
        broken[1].bugs.clear(); // keep one duplicate-name instance simple
        let problems = validate(&broken);
        assert!(problems.iter().any(|p| p.contains("duplicate unit name")));
        assert!(problems.iter().any(|p| p.contains("no spec")));
        assert!(problems.iter().any(|p| p.contains("no description")));
    }
}
