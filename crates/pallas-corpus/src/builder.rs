//! Composing template segments into checkable corpus units.

use crate::templates::{flavor_nouns, segment};
use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

/// Typical consequence per rule, used for ground-truth records
/// (matches the consequence vocabulary of the paper's Table 7).
pub fn typical_consequence(rule: Rule) -> &'static str {
    match rule {
        Rule::ImmutableOverwrite => "Wrong result",
        Rule::ImmutableInit => "Memory leak",
        Rule::Correlated => "Wrong result",
        Rule::CondMissing => "System crash",
        Rule::CondIncomplete => "Regression",
        Rule::CondOrder => "Regression",
        Rule::OutputDefined => "Inconsistency",
        Rule::OutputMatchSlow => "Wrong result",
        Rule::OutputChecked => "Data loss",
        Rule::FaultMissing => "System crash",
        Rule::AssistLayout => "Regression",
        Rule::AssistStale => "Inconsistency",
        Rule::AcquireNoRelease => "Memory leak",
        Rule::ReleaseNoAcquire => "System crash",
        Rule::FastPathExpensive => "Regression",
    }
}

/// Composes a corpus unit containing one fast-path function with one
/// segment per `(rule, is_fp)` plan entry.
///
/// Constraints on `plan` (enforced by debug assertion): at most one
/// entry per rule, so each warning can be attributed unambiguously.
pub fn compose_unit(
    component: Component,
    unit_name: &str,
    fast_fn: &str,
    plan: &[(Rule, bool)],
) -> CorpusUnit {
    debug_assert!(
        {
            let mut rules: Vec<Rule> = plan.iter().map(|&(r, _)| r).collect();
            rules.sort();
            rules.windows(2).all(|w| w[0] != w[1])
        },
        "at most one segment per rule per unit"
    );
    let nouns = flavor_nouns(component);
    let mut items_pre = String::new();
    let mut items_post = String::new();
    let mut params: Vec<(String, String)> = Vec::new();
    let mut body = String::new();
    let mut spec = format!("unit {unit_name};\nfastpath {fast_fn};\n");
    let mut bugs = Vec::new();
    let mut fps = 0usize;

    for (sidx, &(rule, is_fp)) in plan.iter().enumerate() {
        let noun = nouns[sidx % nouns.len()];
        let seg = segment(rule, is_fp, fast_fn, sidx, noun);
        items_pre.push_str(&seg.items_pre);
        items_post.push_str(&seg.items_post);
        params.extend(seg.params.clone());
        body.push_str(&seg.body);
        spec.push_str(&seg.spec);
        spec.push('\n');
        if is_fp {
            fps += 1;
        } else {
            let function = seg.expected_function.clone().unwrap_or_else(|| fast_fn.to_string());
            let rule_idx = Rule::ALL.iter().position(|&r| r == rule).unwrap_or(0);
            let years = 0.5 + ((sidx * 7 + rule_idx * 3) % 80) as f32 / 10.0;
            bugs.push(
                KnownBug::new(
                    format!("{unit_name}#{}", rule.number()),
                    rule,
                    function,
                    seg.description.clone(),
                    typical_consequence(rule),
                )
                .with_latent_years(years),
            );
        }
    }

    let params_text = if params.is_empty() {
        "void".to_string()
    } else {
        params
            .iter()
            .map(|(ty, name)| {
                if ty.ends_with('*') {
                    format!("{ty}{name}")
                } else {
                    format!("{ty} {name}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    };

    let source = format!(
        "{items_pre}int {fast_fn}({params_text}) {{\n{body}  return 0;\n}}\n{items_post}"
    );

    CorpusUnit {
        component,
        unit: SourceUnit::new(unit_name)
            .with_file(format!("{}.c", unit_name.replace('/', "_")), source)
            .with_spec(spec),
        bugs,
        expected_false_positives: fps,
        description: format!(
            "synthesized {} fast path exercising {} rule pattern(s)",
            component,
            plan.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_core::Pallas;

    #[test]
    fn empty_plan_yields_clean_unit() {
        let cu = compose_unit(Component::Fs, "fs/clean", "clean_fast", &[]);
        let analyzed = Pallas::new().check_unit(&cu.unit).unwrap();
        assert!(analyzed.warnings.is_empty());
        assert!(cu.bugs.is_empty());
        assert_eq!(cu.expected_false_positives, 0);
    }

    #[test]
    fn unit_name_and_function_wired() {
        let cu = compose_unit(
            Component::Wb,
            "wb/task_queue",
            "task_queue_fast",
            &[(Rule::FaultMissing, false)],
        );
        assert_eq!(cu.name(), "wb/task_queue");
        assert_eq!(cu.bugs.len(), 1);
        assert_eq!(cu.bugs[0].function, "task_queue_fast");
        assert!(cu.bugs[0].latent_years.is_some());
    }

    #[test]
    fn consequences_cover_all_rules() {
        for rule in Rule::ALL {
            assert!(!typical_consequence(rule).is_empty());
        }
    }
}
