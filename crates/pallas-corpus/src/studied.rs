//! Additional miniatures of the in-study bug examples from §3 — the
//! real-world cases the paper quotes inside the findings but does not
//! give a dedicated figure: the SLUB frozen-state check, the BtrFS
//! unchecked `btrfs_wait_ordered_range`, the TCP congestion-control
//! stale key, the IPv4 `inet_cork` dead field, the memcg uninitialized
//! page flag, and the `preferred_zone`/`nodemask` correlation.

use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

fn unit(
    component: Component,
    name: &str,
    source: &str,
    spec: &str,
    bugs: Vec<KnownBug>,
    description: &str,
) -> CorpusUnit {
    CorpusUnit {
        component,
        unit: SourceUnit::new(name)
            .with_file(format!("{}.c", name.replace('/', "_")), source)
            .with_spec(spec),
        bugs,
        expected_false_positives: 0,
        description: description.to_string(),
    }
}

/// §3.4 "Unexpected output": a page allocated in the SLUB fast path
/// must be in frozen state to enable per-CPU allocation; the miniature
/// returns a non-frozen state on one path (\[42\]).
pub fn slub_frozen() -> CorpusUnit {
    let src = "\
enum slab_state { UNFROZEN = 0, FROZEN = 1 };
int take_from_partial(int node);
int get_freelist_fast(int cpu_slab, int node) {
  if (cpu_slab)
    return FROZEN;
  take_from_partial(node);
  return 2;
}
";
    let spec = "\
unit mm/slub_frozen_study;
fastpath get_freelist_fast;
returns FROZEN;
";
    unit(
        Component::Mm,
        "mm/slub_frozen_study",
        src,
        spec,
        vec![KnownBug::new(
            "mm/slub_frozen_study#3.1",
            Rule::OutputDefined,
            "get_freelist_fast",
            "page returned without frozen state breaks per-CPU allocation",
            "Wrong result",
        )
        .with_latent_years(2.6)],
        "§3.4: SLUB get_freelist must return frozen pages",
    )
}

/// §3.4 "Missing output checking": `prepare_page` assumes the
/// optimized IO always succeeds and never checks the return of
/// `btrfs_wait_ordered_range`, losing partially-written data.
pub fn btrfs_wait_ordered() -> CorpusUnit {
    let src = "\
int flush_range(int start, int len);
int btrfs_wait_ordered_range(int start, int len) {
  int err = flush_range(start, len);
  if (err)
    return err;
  return 0;
}
int prepare_page(int start, int len) {
  btrfs_wait_ordered_range(start, len);
  return 0;
}
";
    let spec = "\
unit fs/btrfs_wait_study;
fastpath btrfs_wait_ordered_range;
check_return;
";
    unit(
        Component::Fs,
        "fs/btrfs_wait_study",
        src,
        spec,
        vec![KnownBug::new(
            "fs/btrfs_wait_study#3.3",
            Rule::OutputChecked,
            "prepare_page",
            "caller assumes the optimized IO always succeeds",
            "Data loss",
        )
        .with_latent_years(1.7)],
        "§3.4: unchecked btrfs_wait_ordered_range return",
    )
}

/// §3.6 "Stale value": after loading/unloading congestion-control
/// modules, the key table still maps a stale key to the old module
/// (\[35\]).
pub fn tcp_cc_stale_key() -> CorpusUnit {
    let src = "\
struct sock { int ca_ops; };
int module_get(int key);
int assign_cc_fast(struct sock *sk, int key) {
  sk->ca_ops = module_get(key);
  return 0;
}
";
    let spec = "\
unit net/tcp_cc_study;
fastpath assign_cc_fast;
cache ca_key_table for ca_ops;
";
    unit(
        Component::Net,
        "net/tcp_cc_study",
        src,
        spec,
        vec![KnownBug::new(
            "net/tcp_cc_study#5.2",
            Rule::AssistStale,
            "assign_cc_fast",
            "congestion-control key table not updated with the new ops",
            "Regression",
        )
        .with_latent_years(1.4)],
        "§3.6: stale congestion-control key after module reload",
    )
}

/// §3.6 "Suboptimal organization": `struct flowi` rides inside
/// `inet_cork` although the IPv4 fast path never touches it, wasting a
/// cache line per cork.
pub fn inet_cork_layout() -> CorpusUnit {
    let src = "\
struct inet_cork { int length; int flowi; };
int append_data(int len);
int ip_append_fast(struct inet_cork *cork, int len) {
  cork->length = cork->length + len;
  return append_data(len);
}
";
    let spec = "\
unit net/inet_cork_study;
fastpath ip_append_fast;
assist struct inet_cork;
";
    unit(
        Component::Net,
        "net/inet_cork_study",
        src,
        spec,
        vec![KnownBug::new(
            "net/inet_cork_study#5.1",
            Rule::AssistLayout,
            "ip_append_fast",
            "struct flowi never used by the IPv4 fast path",
            "Regression",
        )
        .with_latent_years(2.8)],
        "§3.6: dead flowi field bloats inet_cork",
    )
}

/// §3.2 "Uninitialized immutable variables": an uninitialized page
/// flag in the memcg charge-moving fast path (\[32\]).
pub fn memcg_uninit_flag() -> CorpusUnit {
    let src = "\
int charge_page(int page, int flags);
int mem_cgroup_move_parent_fast(int page) {
  int page_flags;
  return charge_page(page, page_flags);
}
";
    let spec = "\
unit mm/memcg_uninit_study;
fastpath mem_cgroup_move_parent_fast;
immutable page_flags;
";
    unit(
        Component::Mm,
        "mm/memcg_uninit_study",
        src,
        spec,
        vec![KnownBug::new(
            "mm/memcg_uninit_study#1.1",
            Rule::ImmutableInit,
            "mem_cgroup_move_parent_fast",
            "page flag used before initialization in charge moving",
            "System crash",
        )
        .with_latent_years(1.3)],
        "§3.2: uninitialized page flag in memcg",
    )
}

/// §3.2 "Correlated variables": `preferred_zone` must be a node
/// allowed by `nodemask`; the fast path picks a zone without ever
/// consulting the mask (\[31\]).
pub fn preferred_zone_correlation() -> CorpusUnit {
    let src = "\
int first_zone(int zonelist);
int pick_zone_fast(int zonelist, int nodemask) {
  int preferred_zone = first_zone(zonelist);
  if (preferred_zone)
    return preferred_zone;
  return 0;
}
";
    let spec = "\
unit mm/preferred_zone_study;
fastpath pick_zone_fast;
correlated preferred_zone -> nodemask;
";
    unit(
        Component::Mm,
        "mm/preferred_zone_study",
        src,
        spec,
        vec![KnownBug::new(
            "mm/preferred_zone_study#1.3",
            Rule::Correlated,
            "pick_zone_fast",
            "preferred zone chosen without consulting nodemask",
            "Wrong result",
        )
        .with_latent_years(2.2)],
        "§3.2: preferred_zone/nodemask correlation not implemented",
    )
}

/// All §3 in-study miniatures.
pub fn studied() -> Vec<CorpusUnit> {
    vec![
        slub_frozen(),
        btrfs_wait_ordered(),
        tcp_cc_stale_key(),
        inet_cork_layout(),
        memcg_uninit_flag(),
        preferred_zone_correlation(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_core::{score, Pallas};

    #[test]
    fn studied_units_check_exactly_to_ground_truth() {
        for cu in studied() {
            let analyzed = Pallas::new()
                .check_unit(&cu.unit)
                .unwrap_or_else(|e| panic!("{}: {e}", cu.name()));
            let s = score(&analyzed.warnings, &cu.bugs);
            assert_eq!(
                s.bug_count(),
                cu.bugs.len(),
                "{}: missed {:?}, warnings {:#?}",
                cu.name(),
                s.missed,
                analyzed.warnings
            );
            assert!(
                s.false_positives.is_empty(),
                "{}: unexpected {:#?}",
                cu.name(),
                s.false_positives
            );
        }
    }

    #[test]
    fn studied_covers_six_distinct_rules() {
        let mut rules: Vec<_> = studied()
            .iter()
            .flat_map(|u| u.bugs.iter().map(|b| b.rule))
            .collect();
        rules.sort();
        rules.dedup();
        assert_eq!(rules.len(), 6);
    }

    #[test]
    fn enum_named_return_set_resolves() {
        // slub: `returns FROZEN;` resolves through the enum to 1, so
        // the in-set literal return is clean and only `return 2` warns.
        let cu = slub_frozen();
        let analyzed = Pallas::new().check_unit(&cu.unit).unwrap();
        assert_eq!(analyzed.warnings.len(), 1);
        assert!(analyzed.warnings[0].message.contains('2'));
    }
}
