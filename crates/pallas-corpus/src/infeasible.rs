//! Contradictory-path miniatures for the feasibility-pruning ablation.
//!
//! Each unit plants a rule violation on a path whose condition set is
//! provably unsatisfiable (an `x == k` guard re-tested as `x != k`,
//! disjoint interval bounds, two distinct equalities on one variable).
//! With pruning disabled the extractor enumerates the dead path and the
//! checkers raise a false positive; with pruning enabled (the default)
//! the arm is vetoed before extraction and the warning disappears. The
//! set therefore gives the pruning ablation a corpus where the path and
//! warning counts *must* drop while the validated-bug count holds.

use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

fn unit(
    component: Component,
    name: &str,
    source: &str,
    spec: &str,
    bugs: Vec<KnownBug>,
    description: &str,
) -> CorpusUnit {
    CorpusUnit {
        component,
        unit: SourceUnit::new(name)
            .with_file(format!("{}.c", name.replace('/', "_")), source)
            .with_spec(spec),
        bugs,
        expected_false_positives: 0,
        description: description.to_string(),
    }
}

/// An `x == 0` guard re-tested as `x != 0` inside the guarded block:
/// the inner then-arm carries an immutable overwrite that can never
/// execute.
pub fn recheck_contradiction() -> CorpusUnit {
    let src = "\
int audit_reserves(int order);
int alloc_fast(int gfp_mask, int order) {
  if (gfp_mask == 0) {
    if (gfp_mask != 0) {
      gfp_mask = 1;
    }
    return audit_reserves(order);
  }
  return 0;
}
";
    let spec = "\
unit mm/infeasible_recheck;
fastpath alloc_fast;
immutable gfp_mask;
";
    unit(
        Component::Mm,
        "mm/infeasible_recheck",
        src,
        spec,
        vec![],
        "dead gfp_mask rewrite behind an `== 0` guard re-tested as `!= 0`",
    )
}

/// Disjoint interval bounds: `budget < 0` and `budget > 8` cannot both
/// hold, so the overwrite between them is unreachable.
pub fn interval_contradiction() -> CorpusUnit {
    let src = "\
int journal_room(int budget);
int reserve_fast(int budget, int mode) {
  if (budget < 0) {
    if (budget > 8) {
      mode = 3;
    }
    return journal_room(budget);
  }
  return 0;
}
";
    let spec = "\
unit fs/infeasible_interval;
fastpath reserve_fast;
immutable mode;
";
    unit(
        Component::Fs,
        "fs/infeasible_interval",
        src,
        spec,
        vec![],
        "dead mode rewrite behind disjoint `< 0` / `> 8` bounds",
    )
}

/// Two distinct equalities on one variable: a path assuming both
/// `state == 1` and `state == 2` is unsatisfiable.
pub fn equality_contradiction() -> CorpusUnit {
    let src = "\
int deliver(int skb);
int rx_fast(int state, int skb) {
  if (state == 1) {
    if (state == 2) {
      state = 0;
    }
    return deliver(skb);
  }
  return 0;
}
";
    let spec = "\
unit net/infeasible_equality;
fastpath rx_fast;
immutable state;
";
    unit(
        Component::Net,
        "net/infeasible_equality",
        src,
        spec,
        vec![],
        "dead state rewrite behind `== 1` re-tested as `== 2`",
    )
}

/// A contradiction *inside a loop body* on a loop-invariant variable:
/// `state` is never written in the loop, so `state == 1` re-tested as
/// `state == 2` is just as dead on iteration k as it is outside the
/// loop. Only the loop-summary-aware oracle can prune it — blanket
/// loop transparency (PR 5, and `--no-loop-summaries`) asserts nothing
/// inside loop bodies and enumerates the dead arm, so this unit is
/// what separates Ablation 5 from Ablation 4.
pub fn loop_invariant_contradiction() -> CorpusUnit {
    let src = "\
int rx_queue(int skb);
int rx_drain(int state, int budget, int n) {
  int i = 0;
  while (i < n) {
    if (state == 1) {
      if (state == 2) {
        budget = 0;
      }
    }
    i = i + 1;
  }
  return rx_queue(budget);
}
";
    let spec = "\
unit net/infeasible_loop;
fastpath rx_drain;
immutable budget;
";
    unit(
        Component::Net,
        "net/infeasible_loop",
        src,
        spec,
        vec![],
        "dead budget rewrite behind `state == 1` re-tested as `== 2` inside a loop body",
    )
}

/// A genuine returns-set violation on a feasible path next to an
/// immutable-overwrite false positive on a contradictory one: pruning
/// must drop the false positive yet keep validating the bug.
pub fn guarded_real_bug() -> CorpusUnit {
    let src = "\
enum poll_state { READY = 1 };
int poll_hw(int dev_state);
int poll_fast(int dev_state, int budget) {
  if (dev_state == 0) {
    if (dev_state != 0) {
      budget = 0;
    }
    return 2;
  }
  return READY;
}
";
    let spec = "\
unit dev/infeasible_guarded;
fastpath poll_fast;
immutable budget;
returns READY;
";
    unit(
        Component::Dev,
        "dev/infeasible_guarded",
        src,
        spec,
        vec![KnownBug::new(
            "dev/infeasible_guarded#3.1",
            Rule::OutputDefined,
            "poll_fast",
            "fast path returns 2, outside the declared READY return set",
            "Wrong result",
        )],
        "real returns-set bug on the live arm, dead budget rewrite on the contradictory one",
    )
}

/// The contradictory-path corpus set.
pub fn infeasible() -> Vec<CorpusUnit> {
    vec![
        recheck_contradiction(),
        interval_contradiction(),
        equality_contradiction(),
        loop_invariant_contradiction(),
        guarded_real_bug(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use pallas_core::Pallas;
    use pallas_sym::ExtractConfig;

    fn check(cu: &CorpusUnit, prune: bool) -> (usize, usize) {
        let engine = Pallas::new().with_config(ExtractConfig {
            prune_infeasible: prune,
            ..ExtractConfig::default()
        });
        let report =
            engine.check_unit(&cu.unit).unwrap_or_else(|e| panic!("{}: {e}", cu.name()));
        (report.warnings.len(), report.db.path_count())
    }

    #[test]
    fn set_is_internally_valid() {
        assert!(validate(&infeasible()).is_empty());
    }

    #[test]
    fn every_unit_loses_a_warning_and_a_path_under_pruning() {
        for cu in infeasible() {
            let (warns_off, paths_off) = check(&cu, false);
            let (warns_on, paths_on) = check(&cu, true);
            assert!(
                warns_on < warns_off,
                "{}: warnings {} -> {}",
                cu.name(),
                warns_off,
                warns_on
            );
            assert!(
                paths_on < paths_off,
                "{}: paths {} -> {}",
                cu.name(),
                paths_off,
                paths_on
            );
        }
    }

    #[test]
    fn loop_unit_needs_summaries_not_just_pruning() {
        // With pruning on but loop summaries off (the PR 5 behavior),
        // the in-loop contradiction is invisible: the false positive
        // and the dead arm both survive. Summaries restore them.
        let cu = loop_invariant_contradiction();
        let summaries_off = Pallas::new().with_config(ExtractConfig {
            loop_summaries: false,
            ..ExtractConfig::default()
        });
        let off = summaries_off.check_unit(&cu.unit).expect("checks");
        let on = Pallas::new().check_unit(&cu.unit).expect("checks");
        assert!(
            on.warnings.len() < off.warnings.len(),
            "warnings {} -> {}",
            off.warnings.len(),
            on.warnings.len()
        );
        assert!(
            on.db.path_count() < off.db.path_count(),
            "paths {} -> {}",
            off.db.path_count(),
            on.db.path_count()
        );
    }

    #[test]
    fn real_bug_survives_pruning() {
        let cu = guarded_real_bug();
        let engine = Pallas::new();
        let report = engine.check_unit(&cu.unit).expect("checks");
        let score = pallas_core::score(&report.warnings, &cu.bugs);
        assert_eq!(score.bug_count(), 1, "{:#?}", report.warnings);
        assert!(score.false_positives.is_empty(), "{:#?}", score.false_positives);
        assert!(score.missed.is_empty());
    }
}
