//! Hand-written miniatures of the §5.1 narrative bugs in the
//! *non-kernel* systems — the cases the paper describes in prose when
//! presenting Table 7: the Chromium PNaCl downloader whose fast path
//! can never run because a handler forgets to return a value, the
//! Open vSwitch TCP-fragmentation path missing its CHECKSUM_PARTIAL
//! conjunct, the Android `cpufreq-set` wrong output, and the Android
//! macvtap page-pinning path without a fault handler.

use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

fn unit(
    component: Component,
    name: &str,
    source: &str,
    spec: &str,
    bugs: Vec<KnownBug>,
    description: &str,
) -> CorpusUnit {
    CorpusUnit {
        component,
        unit: SourceUnit::new(name)
            .with_file(format!("{}.c", name.replace('/', "_")), source)
            .with_spec(spec),
        bugs,
        expected_false_positives: 0,
        description: description.to_string(),
    }
}

/// Chromium `ppb_nacl_private_impl.cc`: "developers expected a flag
/// from a handler with the OpenNaClExecutable function to ensure a
/// file handle is available for downloading in a fast path. However,
/// the function never returned a value, causing that the fast path is
/// never executed" (§5.1).
pub fn chromium_pnacl() -> CorpusUnit {
    let src = "\
int open_nacl_executable_handler(int url) {
  int handle = url + 1;
  handle = handle * 2;
}
int download_fast(int url, int have_handle) {
  if (have_handle)
    return open_nacl_executable_handler(url);
  return -1;
}
";
    let spec = "\
unit wb/ppb_nacl_example;
fastpath open_nacl_executable_handler;
returns 0, 1;
";
    unit(
        Component::Wb,
        "wb/ppb_nacl_example",
        src,
        spec,
        vec![KnownBug::new(
            "wb/ppb_nacl_example#3.1",
            Rule::OutputDefined,
            "open_nacl_executable_handler",
            "handler never returns the file-handle flag; fast path never taken",
            "System crash",
        )],
        "§5.1: Chromium PNaCl handler that never returns a value",
    )
}

/// Open vSwitch: "a fast path was implemented for fragmenting TCP
/// packages ... its trigger conditions should include the checking of
/// the CHECKSUM_PARTIAL flag. However, the buggy code missed that
/// checking before entering the fast path" (§5.1).
pub fn ovs_fragment() -> CorpusUnit {
    let src = "\
#define CHECKSUM_PARTIAL 3
struct sk_buff { int cloned; int ip_summed; };
int fragment_direct(struct sk_buff *skb);
int fragment_slow(struct sk_buff *skb);
int ip6_fragment_fast(struct sk_buff *skb) {
  if (!skb->cloned)
    return fragment_direct(skb);
  return fragment_slow(skb);
}
";
    let spec = "\
unit sdn/ip6_fragment_example;
fastpath ip6_fragment_fast;
cond frag_ok: cloned, ip_summed;
";
    unit(
        Component::Sdn,
        "sdn/ip6_fragment_example",
        src,
        spec,
        vec![KnownBug::new(
            "sdn/ip6_fragment_example#2.2",
            Rule::CondIncomplete,
            "ip6_fragment_fast",
            "CHECKSUM_PARTIAL (ip_summed) not checked before the fast path",
            "Regression",
        )
        .with_latent_years(0.5)],
        "§5.1: OVS TCP fragmentation missing the checksum conjunct",
    )
}

/// Android `cpufreq-set.c` (Table 7): modifying only one value of a
/// policy returns a value outside what the tooling expects.
pub fn android_cpufreq() -> CorpusUnit {
    let src = "\
struct policy { int min; int max; };
int write_sysfs(int v);
int cpufreq_set_fast(struct policy *pol, int new_min) {
  pol->min = new_min;
  write_sysfs(new_min);
  return new_min;
}
";
    let spec = "\
unit mob/cpufreq_set_example;
fastpath cpufreq_set_fast;
returns 0, -1;
";
    unit(
        Component::Mob,
        "mob/cpufreq_set_example",
        src,
        spec,
        vec![KnownBug::new(
            "mob/cpufreq_set_example#3.1",
            Rule::OutputDefined,
            "cpufreq_set_fast",
            "returns the raw frequency instead of a status code",
            "Wrong result",
        )
        .with_latent_years(4.6)],
        "Table 7: Android cpufreq-set wrong output",
    )
}

/// Android `macvtap.c` (Table 7): pinning user pages without handling
/// the partial-pin fault leaks the pinned pages.
pub fn android_macvtap() -> CorpusUnit {
    let src = "\
int get_user_pages(int addr, int n);
int use_pages(int n);
int macvtap_pin_fast(int addr, int n) {
  int pinned = get_user_pages(addr, n);
  use_pages(pinned);
  return 0;
}
int macvtap_pin_fixed(int addr, int n) {
  int pinned = get_user_pages(addr, n);
  if (pinned < n) {
    return -1;
  }
  use_pages(pinned);
  return 0;
}
";
    let spec = "\
unit mob/macvtap_example;
fastpath macvtap_pin_fast;
fault pinned;
";
    unit(
        Component::Mob,
        "mob/macvtap_example",
        src,
        spec,
        vec![KnownBug::new(
            "mob/macvtap_example#4.1",
            Rule::FaultMissing,
            "macvtap_pin_fast",
            "partial page pinning never handled; pinned pages leak",
            "System crash",
        )
        .with_latent_years(4.7)],
        "Table 7: Android macvtap missing partial-pin handler (fixed variant included)",
    )
}

/// All non-kernel §5.1 narrative miniatures.
pub fn new_bug_examples() -> Vec<CorpusUnit> {
    vec![chromium_pnacl(), ovs_fragment(), android_cpufreq(), android_macvtap()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_core::{score, Pallas};

    #[test]
    fn new_bug_examples_check_exactly() {
        for cu in new_bug_examples() {
            let analyzed = Pallas::new()
                .check_unit(&cu.unit)
                .unwrap_or_else(|e| panic!("{}: {e}", cu.name()));
            let s = score(&analyzed.warnings, &cu.bugs);
            assert_eq!(
                s.bug_count(),
                cu.bugs.len(),
                "{}: missed {:?}, warnings {:#?}",
                cu.name(),
                s.missed,
                analyzed.warnings
            );
            assert!(s.false_positives.is_empty(), "{}: {:#?}", cu.name(), s.false_positives);
        }
    }

    #[test]
    fn covers_all_three_non_kernel_systems() {
        let comps: Vec<_> = new_bug_examples().iter().map(|u| u.component).collect();
        assert!(comps.contains(&Component::Wb));
        assert!(comps.contains(&Component::Sdn));
        assert!(comps.contains(&Component::Mob));
    }

    #[test]
    fn macvtap_fixed_variant_is_clean() {
        let cu = android_macvtap();
        let mut fixed = cu.unit.clone();
        fixed.spec_text = "fastpath macvtap_pin_fixed; fault pinned;".into();
        let analyzed = Pallas::new().check_unit(&fixed).unwrap();
        assert!(analyzed.warnings.is_empty(), "{:#?}", analyzed.warnings);
    }

    #[test]
    fn pnacl_missing_return_is_the_defect() {
        let cu = chromium_pnacl();
        let analyzed = Pallas::new().check_unit(&cu.unit).unwrap();
        assert_eq!(analyzed.warnings.len(), 1);
        assert!(analyzed.warnings[0].message.contains("no value"));
    }
}
