//! # pallas-corpus
//!
//! The evaluation corpus: faithful miniatures of the fast paths the
//! paper studies (page allocation, UBIFS writes, TCP receive, RPS,
//! SCSI command teardown, the NFS inode cache, ...) plus a calibrated
//! synthetic corpus reproducing the paper's Table 1 (155 validated
//! bugs / 224 warnings over 90 fast paths), Table 7 (34 named new
//! bugs), and Table 8 (61/62 known bugs re-detected), all with
//! machine-checkable ground truth. A seeded workload generator
//! provides arbitrarily large units for the benchmarks.

pub mod builder;
pub mod examples;
pub mod infeasible;
pub mod integrity;
pub mod mined;
pub mod new_bugs;
pub mod studied;
pub mod synthetic;
pub mod table1;
pub mod table7;
pub mod table8;
pub mod templates;
pub mod types;

pub use builder::compose_unit;
pub use examples::examples;
pub use infeasible::infeasible;
pub use integrity::validate;
pub use mined::mined_rules;
pub use new_bugs::new_bug_examples;
pub use studied::studied;
pub use synthetic::{skewed_units, synthetic_corpus, synthetic_unit};
pub use table1::{new_paths, table1_bug_matrix, table1_fp_matrix, units_per_component};
pub use table7::{table7, Table7Row};
pub use table8::{known_bugs, table8_counts};
pub use types::{systems, Component, CorpusUnit, EvaluatedSystem};
