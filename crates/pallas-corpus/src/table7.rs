//! Table 7: the 34 new bugs the paper reports, as metadata rows joined
//! onto the Table 1 corpus ground truth.

use crate::table1::new_paths;
use crate::types::Component;
use pallas_checkers::Rule;
use std::collections::HashMap;

/// One row of the paper's Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Software component (Table 7's first column).
    pub component: Component,
    /// Source file the bug was found in.
    pub file: &'static str,
    /// Fast-path operation description.
    pub operation: &'static str,
    /// Error-type label as printed in the paper (`[F] missing handler`).
    pub error: &'static str,
    /// The rule whose checker discovers the bug.
    pub rule: Rule,
    /// Potential consequence.
    pub consequence: &'static str,
    /// Latent period in years (`None` where the tracker lacks dates).
    pub years: Option<f32>,
}

/// The 34 new bugs of the paper's Table 7.
pub fn table7() -> Vec<Table7Row> {
    use Component::*;
    use Rule::*;
    let r = |component, file, operation, error, rule, consequence, years| Table7Row {
        component,
        file,
        operation,
        error,
        rule,
        consequence,
        years,
    };
    vec![
        r(Mm, "slab.c", "Allocate w/ local pages", "[F] missing handler", FaultMissing, "System crash", Some(6.5)),
        r(Fs, "uptodate.c", "Insert metadata buffer to cache w/o resizing", "[O] missing log output", OutputChecked, "Inconsistency", Some(2.2)),
        r(Fs, "uptodate.c", "Insert new buffer to cache w/o resizing", "[F] missing handler", FaultMissing, "System crash", Some(6.1)),
        r(Fs, "xfs_ialloc.c", "Allocate an inode using the free inode btree", "[O] wrong output", OutputDefined, "Inconsistency", Some(2.2)),
        r(Net, "af_unix.c", "Send page data w/ socket", "[C] incorrect order", CondOrder, "Regression", Some(1.1)),
        r(Net, "tcp_ipv4.c", "Get first established socket w/o a lock", "[O] wrong lock state", OutputDefined, "Deadlock", Some(8.4)),
        r(Net, "udp.c", "Send msgs w/o a lock for non-corking case", "[O] wrong output", OutputMatchSlow, "Wrong result", Some(5.4)),
        r(Dev, "cl_page.c", "Find Lustre page in cache", "[O] unexpected output", OutputDefined, "System crash", Some(3.2)),
        r(Dev, "hvc_console.c", "Open w/ an existing port", "[F] skipping handler", FaultMissing, "System crash", Some(5.5)),
        r(Dev, "lov_io.c", "I/O initialization when file is striped", "[C] missing condition", CondMissing, "Regression", Some(3.2)),
        r(Dev, "mpt3sas_base.c", "Send fast-path requests to firmware", "[D] suboptimal layout", AssistLayout, "Regression", Some(3.7)),
        r(Dev, "mpt3sas_scsih.c", "Turn on fast path for IR physdisk", "[F] skipping handler", FaultMissing, "System crash", Some(2.9)),
        r(Wb, "ppb_nacl_private_impl.cc", "Download a file w/ PNaCl support", "[F] missing handler", FaultMissing, "System crash", None),
        r(Wb, "ppb_nacl_private_impl.cc", "Download a Nexe file w/ PNaCl support", "[F] unexpected output", FaultMissing, "System crash", None),
        r(Wb, "task_queue_impl.cc", "Post delayed tasks w/o a lock", "[O] wrong return", OutputMatchSlow, "Wrong result", None),
        r(Wb, "task_queue_impl.cc", "Post delayed tasks w/o a lock", "[S] suboptimal layout", ImmutableOverwrite, "Regression", None),
        r(Wb, "web_url_loader_impl.cc", "Load URL w/ local data", "[F] missing handler", FaultMissing, "System crash", None),
        r(Wb, "wts_terminal_monitor.cc", "Get session id w/ physical console", "[O] wrong return", OutputMatchSlow, "Wrong result", None),
        r(Wb, "ScriptValueSerializer.cpp", "Write ASCII strings", "[F] missing handler", FaultMissing, "Inconsistency", None),
        r(Wb, "GraphicsContext.cpp", "Draw w/ Shader", "[F] missing handler", FaultMissing, "System crash", None),
        r(Wb, "PartitionAlloc.cpp", "Allocate pages in the active-page list", "[F] wrong handler", FaultMissing, "Wrong result", None),
        r(Mob, "cpufreq-set.c", "Modify only one value of a policy", "[O] wrong output", OutputDefined, "Wrong result", Some(4.6)),
        r(Mob, "macvtap.c", "Pin user pages in memory", "[F] missing handler", FaultMissing, "System crash", Some(4.7)),
        r(Mob, "mempolicy.c", "Allocate a page w/ a default policy", "[S] wrong state", Correlated, "Memory leak", Some(2.1)),
        r(Mob, "mempolicy.c", "Allocate a page w/ a default policy", "[C] incorrect order", CondOrder, "Regression", Some(2.1)),
        r(Mob, "namei.c", "Lookup inode w/o a lock", "[O] unexpected state", OutputDefined, "Inconsistency", Some(0.8)),
        r(Mob, "namespace.c", "Unmount file systems w/o a lock", "[C] skipping slow path", CondMissing, "System crash", Some(2.7)),
        r(Mob, "page_alloc.c", "Get a page from freelist", "[S] immutable state", ImmutableOverwrite, "Wrong result", Some(0.8)),
        r(Mob, "skbuff.c", "Reallocate when a skb has a single reference", "[C] wrong condition", CondIncomplete, "Memory leak", Some(1.9)),
        r(Mob, "xfs_mount.c", "Modify a counter if it is in use", "[F] missing handler", FaultMissing, "Inconsistency", Some(2.3)),
        r(Sdn, "dpif-netdev.c", "Process in defined fast path", "[C] incorrect order", CondOrder, "Regression", Some(2.8)),
        r(Sdn, "ip6_output.c", "Create fragments for not cloned skb", "[C] incomplete", CondIncomplete, "Regression", Some(0.5)),
        r(Sdn, "netdevice.c", "Calculate header offset in fast path", "[F] missing handler", FaultMissing, "System crash", Some(0.5)),
        r(Sdn, "vxlan.c", "Calculate header offset in fast path", "[F] missing handler", FaultMissing, "System crash", Some(0.5)),
    ]
}

/// Joins Table 7 rows onto corpus ground truth: returns, for each row,
/// the id of a distinct corpus bug with the same component and rule.
///
/// # Panics
///
/// Panics if the corpus does not contain enough bugs of the required
/// kind — the Table 1 matrix guarantees it does.
pub fn table7_bug_ids() -> Vec<String> {
    let corpus = new_paths();
    let mut pools: HashMap<(Component, Rule), Vec<String>> = HashMap::new();
    for unit in &corpus {
        for bug in &unit.bugs {
            pools
                .entry((unit.component, bug.rule))
                .or_default()
                .push(bug.id.clone());
        }
    }
    table7()
        .iter()
        .map(|row| {
            pools
                .get_mut(&(row.component, row.rule))
                .and_then(|pool| pool.pop())
                .unwrap_or_else(|| {
                    panic!("no corpus bug left for {} {:?}", row.component, row.rule)
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_four_rows() {
        assert_eq!(table7().len(), 34);
    }

    #[test]
    fn component_row_counts_match_paper() {
        let rows = table7();
        let count = |c: Component| rows.iter().filter(|r| r.component == c).count();
        assert_eq!(count(Component::Mm), 1);
        assert_eq!(count(Component::Fs), 3);
        assert_eq!(count(Component::Net), 3);
        assert_eq!(count(Component::Dev), 5);
        assert_eq!(count(Component::Wb), 9);
        assert_eq!(count(Component::Mob), 9);
        assert_eq!(count(Component::Sdn), 4);
    }

    #[test]
    fn chromium_rows_lack_latent_years() {
        for row in table7() {
            if row.component == Component::Wb {
                assert!(row.years.is_none(), "{}", row.file);
            } else {
                assert!(row.years.is_some(), "{}", row.file);
            }
        }
    }

    #[test]
    fn every_row_joins_to_a_distinct_corpus_bug() {
        let ids = table7_bug_ids();
        assert_eq!(ids.len(), 34);
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 34, "bug ids must be distinct");
    }

    #[test]
    fn average_latent_period_close_to_paper() {
        // §5.1: "The average latent period of these bugs is 3.1 years."
        let rows = table7();
        let years: Vec<f32> = rows.iter().filter_map(|r| r.years).collect();
        let mean = years.iter().sum::<f32>() / years.len() as f32;
        assert!((mean - 3.1).abs() < 0.1, "mean latent period {mean}");
    }
}
