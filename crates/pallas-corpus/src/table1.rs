//! The Table 1 corpus: 90 fast paths whose injected bugs and benign
//! patterns reproduce the paper's headline evaluation — 155 validated
//! bugs and 224 warnings across twelve findings and seven components.

use crate::builder::compose_unit;
use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;

/// Validated-bug counts per rule row × component column, exactly the
/// body of the paper's Table 1 (row order = [`Rule::ALL`], column
/// order = [`Component::ALL`]).
pub fn table1_bug_matrix() -> [(Rule, [usize; 7]); 12] {
    [
        (Rule::ImmutableOverwrite, [1, 1, 1, 1, 3, 1, 2]),
        (Rule::ImmutableInit, [1, 1, 2, 1, 2, 1, 2]),
        (Rule::Correlated, [1, 1, 1, 1, 1, 1, 3]),
        (Rule::CondMissing, [5, 1, 3, 2, 3, 2, 3]),
        (Rule::CondIncomplete, [1, 1, 1, 3, 2, 1, 5]),
        (Rule::CondOrder, [1, 1, 1, 1, 1, 2, 1]),
        (Rule::OutputMatchSlow, [1, 1, 2, 1, 2, 1, 4]),
        (Rule::OutputDefined, [1, 1, 2, 1, 3, 2, 2]),
        (Rule::OutputChecked, [1, 2, 1, 1, 2, 1, 3]),
        (Rule::FaultMissing, [2, 4, 2, 4, 7, 3, 5]),
        (Rule::AssistLayout, [2, 2, 1, 2, 4, 2, 2]),
        (Rule::AssistStale, [1, 1, 1, 1, 1, 1, 2]),
    ]
}

/// False-positive counts per rule row (the paper's `W − B` margin),
/// distributed across components round-robin. Row totals: 16−10, 16−10,
/// 15−9, 21−19, 18−14, 15−8, 19−12, 14−12, 18−11, 37−27, 21−15, 14−8.
pub fn table1_fp_matrix() -> [(Rule, [usize; 7]); 12] {
    let totals: [(Rule, usize); 12] = [
        (Rule::ImmutableOverwrite, 6),
        (Rule::ImmutableInit, 6),
        (Rule::Correlated, 6),
        (Rule::CondMissing, 2),
        (Rule::CondIncomplete, 4),
        (Rule::CondOrder, 7),
        (Rule::OutputMatchSlow, 7),
        (Rule::OutputDefined, 2),
        (Rule::OutputChecked, 7),
        (Rule::FaultMissing, 10),
        (Rule::AssistLayout, 6),
        (Rule::AssistStale, 6),
    ];
    let mut out = [(Rule::ImmutableOverwrite, [0usize; 7]); 12];
    for (row, (rule, total)) in totals.into_iter().enumerate() {
        let mut counts = [0usize; 7];
        for j in 0..total {
            counts[(row + j) % 7] += 1;
        }
        out[row] = (rule, counts);
    }
    out
}

/// Number of fast paths per component; sums to the paper's 90
/// evaluated fast paths.
pub fn units_per_component() -> [(Component, usize); 7] {
    [
        (Component::Mm, 12),
        (Component::Fs, 12),
        (Component::Net, 12),
        (Component::Dev, 12),
        (Component::Wb, 16),
        (Component::Sdn, 10),
        (Component::Mob, 16),
    ]
}

/// Realistic unit base names per component.
fn unit_names(component: Component) -> &'static [&'static str] {
    match component {
        Component::Mm => &[
            "page_alloc", "slab", "slub", "mempolicy", "memcontrol", "vmscan", "huge_memory",
            "mmap", "mprotect", "swap_state", "compaction", "filemap",
        ],
        Component::Fs => &[
            "ext4_write", "btrfs_io", "xfs_ialloc", "ocfs2_uptodate", "ubifs_write",
            "nfs_lookup", "dcache", "namei", "namespace", "inode", "aio", "direct_io",
        ],
        Component::Net => &[
            "tcp_input", "tcp_output", "udp", "af_unix", "rps_core", "ip6_output", "skbuff",
            "netdevice", "sock", "neighbour", "icmp", "route",
        ],
        Component::Dev => &[
            "scsi_transport", "hvc_console", "cl_page", "lov_io", "mpt3sas_base",
            "mpt3sas_scsih", "nvme_core", "virtio_blk", "e1000_main", "ahci", "usb_core",
            "md_raid",
        ],
        Component::Wb => &[
            "ppb_nacl_private", "ppb_nacl_loader", "task_queue_impl", "task_queue_post",
            "web_url_loader", "wts_terminal_monitor", "script_value_serializer",
            "graphics_context", "partition_alloc", "render_frame", "ipc_channel",
            "cc_scheduler", "cache_storage", "dom_timer", "paint_worklet", "media_stream",
        ],
        Component::Sdn => &[
            "dpif_netdev", "vxlan", "netdev_offload", "ofproto_dpif", "flow_table", "bond",
            "tunnel_push", "meter_band", "conntrack", "upcall",
        ],
        Component::Mob => &[
            "binder", "ashmem", "lowmemorykiller", "cpufreq_set", "macvtap", "mempolicy_droid",
            "namei_droid", "namespace_droid", "page_alloc_droid", "skbuff_droid", "xfs_mount",
            "ion_heap", "wakelock", "sync_fence", "sensors_hal", "netfilter_droid",
        ],
    }
}

/// Builds the complete Table 1 corpus: 90 units whose checker run
/// yields exactly the paper's per-cell validated-bug counts plus the
/// distributed false positives (224 warnings total).
pub fn new_paths() -> Vec<CorpusUnit> {
    let bug_matrix = table1_bug_matrix();
    let fp_matrix = table1_fp_matrix();
    let mut corpus = Vec::new();
    for (ci, (component, n_units)) in units_per_component().into_iter().enumerate() {
        // Per-unit segment plans.
        let mut plans: Vec<Vec<(Rule, bool)>> = vec![Vec::new(); n_units];
        for (row, (rule, bug_counts)) in bug_matrix.iter().enumerate() {
            let bugs = bug_counts[ci];
            let fps = fp_matrix[row].1[ci];
            debug_assert!(bugs + fps <= n_units, "rule {rule:?} overflows {component}");
            // Spread instances of this rule across distinct units,
            // offset by the row so different rules co-locate.
            for j in 0..(bugs + fps) {
                let unit_idx = (row * 3 + j) % n_units;
                // Find the next unit without this rule (guaranteed to
                // exist because instances ≤ units).
                let mut k = unit_idx;
                while plans[k].iter().any(|&(r, _)| r == *rule) {
                    k = (k + 1) % n_units;
                }
                plans[k].push((*rule, j >= bugs));
            }
        }
        let names = unit_names(component);
        for (u, plan) in plans.into_iter().enumerate() {
            let base = names[u % names.len()];
            let unit_name = format!("{}/{}", component.prefix(), base);
            let fast_fn = format!("{base}_fast");
            corpus.push(compose_unit(component, &unit_name, &fast_fn, &plan));
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_totals_match_paper() {
        let bugs: usize = table1_bug_matrix().iter().flat_map(|(_, r)| r.iter()).sum();
        assert_eq!(bugs, 155);
        let fps: usize = table1_fp_matrix().iter().flat_map(|(_, r)| r.iter()).sum();
        assert_eq!(fps, 69);
        let units: usize = units_per_component().iter().map(|&(_, n)| n).sum();
        assert_eq!(units, 90);
    }

    #[test]
    fn component_bug_totals_match_table1_columns() {
        let matrix = table1_bug_matrix();
        let col = |ci: usize| -> usize { matrix.iter().map(|(_, r)| r[ci]).sum() };
        assert_eq!(col(0), 18); // MM
        assert_eq!(col(1), 17); // FS
        assert_eq!(col(2), 18); // NET
        assert_eq!(col(3), 19); // DEV
        assert_eq!(col(4), 31); // WB
        assert_eq!(col(5), 18); // SDN
        assert_eq!(col(6), 34); // MOB
    }

    #[test]
    fn corpus_has_90_units_with_expected_ground_truth() {
        let corpus = new_paths();
        assert_eq!(corpus.len(), 90);
        let bugs: usize = corpus.iter().map(|u| u.bugs.len()).sum();
        assert_eq!(bugs, 155);
        let fps: usize = corpus.iter().map(|u| u.expected_false_positives).sum();
        assert_eq!(fps, 69);
    }

    #[test]
    fn unit_names_unique() {
        let corpus = new_paths();
        let mut names: Vec<&str> = corpus.iter().map(|u| u.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 90);
    }

    #[test]
    fn no_unit_has_duplicate_rules() {
        for unit in new_paths() {
            let mut rules: Vec<_> = unit.bugs.iter().map(|b| b.rule).collect();
            rules.sort();
            let before = rules.len();
            rules.dedup();
            assert_eq!(rules.len(), before, "{}", unit.name());
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = new_paths();
        let b = new_paths();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.unit, y.unit);
        }
    }
}
