//! Hand-written faithful miniatures of the fast paths the paper
//! studies. Each unit reproduces the code *shape* that triggers the
//! paper's example bug (Figures 1 and 3–9, plus the Table 5 symbolic
//! extraction), at miniature scale.

use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

fn unit(
    component: Component,
    name: &str,
    source: &str,
    spec: &str,
    bugs: Vec<KnownBug>,
    description: &str,
) -> CorpusUnit {
    CorpusUnit {
        component,
        unit: SourceUnit::new(name)
            .with_file(format!("{}.c", name.replace('/', "_")), source)
            .with_spec(spec),
        bugs,
        expected_false_positives: 0,
        description: description.to_string(),
    }
}

/// Figure 1(a) + §2.1 + Table 5: page allocation in the virtual memory
/// manager. The buddy allocator serves order-0 requests from per-cpu
/// lists without a lock; the immutable `gfp_mask` is overwritten on
/// the way (the §2.1 bug, shown symbolically in Table 5).
pub fn page_alloc() -> CorpusUnit {
    let src = "\
typedef unsigned int gfp_t;
#define GFP_KSWAPD_RECLAIM 0x20
struct page { int private; int frozen; };
struct zone { int free; int node; };
int zone_local(struct zone *local_zone, struct zone *zone);
int memalloc_noio_flags(gfp_t mask);
int get_page_from_per_cpu(int migratetype);
int lock_zone(struct zone *z);
int get_page_from_fallback(struct zone *z, int order);
int __alloc_pages_slowpath(gfp_t mask, int order) {
  if (mask & 0x10)
    return get_page_from_fallback(0, order);
  return 0;
}
int __alloc_pages_nodemask(gfp_t gfp_mask, int order, struct zone *zone) {
  int migratetype = 0;
  int alloc_flags = 0;
  alloc_flags = alloc_flags | 1;
  if (order == 0) {
    int page = get_page_from_per_cpu(migratetype);
    return page;
  }
  if (gfp_mask & GFP_KSWAPD_RECLAIM) {
    gfp_mask = memalloc_noio_flags(gfp_mask);
    int page = __alloc_pages_slowpath(gfp_mask, order);
    return page;
  }
  lock_zone(zone);
  return get_page_from_fallback(zone, order);
}
";
    let spec = "\
unit mm/page_alloc_example;
fastpath __alloc_pages_nodemask;
slowpath __alloc_pages_slowpath;
immutable gfp_mask;
cond order0: order;
";
    unit(
        Component::Mm,
        "mm/page_alloc_example",
        src,
        spec,
        vec![KnownBug::new(
            "mm/page_alloc_example#1.2",
            Rule::ImmutableOverwrite,
            "__alloc_pages_nodemask",
            "immutable gfp_mask overwritten before entering the slow path",
            "Wrong result",
        )
        .with_latent_years(0.8)],
        "Figure 1(a)/Table 5: order-0 page allocation fast path",
    )
}

/// Figure 1(b): UBIFS file write. The fast path skips budgeting when
/// flash has space; on the exception path the page state it returns is
/// outside the defined set, losing the write (§2.2's data-loss bug).
pub fn ubifs_write() -> CorpusUnit {
    let src = "\
enum page_state { PG_CLEAN = 0, PG_DIRTY = 1 };
int allocate_space(int bytes);
int write_dirty_page_back(int page);
int acquire_space(int bytes);
int release_unused_space(int bytes);
int ubifs_write_slow(int page, int bytes) {
  int err = allocate_space(bytes);
  if (err)
    write_dirty_page_back(page);
  acquire_space(bytes);
  release_unused_space(bytes);
  return PG_DIRTY;
}
int ubifs_write_fast(int page, int bytes, int free_space) {
  if (free_space > bytes) {
    acquire_space(bytes);
    return PG_DIRTY;
  }
  return 2;
}
";
    let spec = "\
unit fs/ubifs_write_example;
fastpath ubifs_write_fast;
slowpath ubifs_write_slow;
cond space: free_space;
returns PG_CLEAN, PG_DIRTY;
";
    unit(
        Component::Fs,
        "fs/ubifs_write_example",
        src,
        spec,
        vec![KnownBug::new(
            "fs/ubifs_write_example#3.1",
            Rule::OutputDefined,
            "ubifs_write_fast",
            "exception path returns a page state outside the defined set",
            "Data loss",
        )
        .with_latent_years(2.4)],
        "Figure 1(b): UBIFS write fast path skipping the budgeting step",
    )
}

/// Figure 1(c) + Figure 7: TCP receive. The header-prediction fast
/// path returns 1 where the slow path returns 0, double-freeing the
/// socket buffer in the caller (§2.3, \[43\]).
pub fn tcp_rcv() -> CorpusUnit {
    let src = "\
struct sock { int pred_flags; int seq; };
int validate_segment(struct sock *sk, int seg);
int handle_incoming(struct sock *sk, int seg);
int send_ack(struct sock *sk);
int process_out_of_order(struct sock *sk, int seg);
int tcp_rcv_slow(struct sock *sk, int seg) {
  if (validate_segment(sk, seg)) {
    process_out_of_order(sk, seg);
    return 0;
  }
  handle_incoming(sk, seg);
  send_ack(sk);
  return 0;
}
int tcp_rcv_established(struct sock *sk, int seg, int pred) {
  if (sk->pred_flags == pred) {
    handle_incoming(sk, seg);
    send_ack(sk);
    return 1;
  }
  return tcp_rcv_slow(sk, seg);
}
int tcp_v4_do_rcv(struct sock *sk, int seg, int pred) {
  int ret = tcp_rcv_established(sk, seg, pred);
  if (ret)
    return -1;
  return 0;
}
";
    let spec = "\
unit net/tcp_rcv_example;
fastpath tcp_rcv_established;
slowpath tcp_rcv_slow;
cond pred: pred_flags;
match_slow_return;
";
    unit(
        Component::Net,
        "net/tcp_rcv_example",
        src,
        spec,
        vec![KnownBug::new(
            "net/tcp_rcv_example#3.2",
            Rule::OutputMatchSlow,
            "tcp_rcv_established",
            "fast path returns 1 where the slow path returns 0; caller double-frees skb",
            "System crash",
        )
        .with_latent_years(1.5)],
        "Figure 1(c)/Figure 7: TCP header-prediction fast path with mismatched output",
    )
}

/// Figure 3: freeing mlocked pages overwrites `page->private`, which
/// the fast path had linked to the immutable `migratetype`.
pub fn free_pages_mlocked() -> CorpusUnit {
    let src = "\
struct page { int private; int mlocked; };
int free_to_buddy(struct page *page);
int set_pageblock_migratetype(struct page *page, int migratetype);
int free_pages_fast(struct page *page) {
  if (page->mlocked) {
    page->private = 0;
    free_to_buddy(page);
    return 0;
  }
  free_to_buddy(page);
  return 0;
}
";
    let spec = "\
unit mm/free_pages_example;
fastpath free_pages_fast;
immutable page->private;
";
    unit(
        Component::Mm,
        "mm/free_pages_example",
        src,
        spec,
        vec![KnownBug::new(
            "mm/free_pages_example#1.2",
            Rule::ImmutableOverwrite,
            "free_pages_fast",
            "migratetype stored in page->private is overwritten when freeing",
            "Wrong result",
        )
        .with_latent_years(1.2)],
        "Figure 3: overwritten migratetype in the mlocked-free fast path",
    )
}

/// Figure 4: the OCFS2 direct-IO fast path never checks whether the
/// file size changed, skipping the metadata-updating slow path.
pub fn ocfs2_dio() -> CorpusUnit {
    let src = "\
struct inode { int size; };
int write_blocks(struct inode *in, int blocks);
int update_inode_size(struct inode *in, int size);
int ocfs2_dio_write_slow(struct inode *in, int blocks, int new_size) {
  write_blocks(in, blocks);
  update_inode_size(in, new_size);
  return 0;
}
int ocfs2_get_block_fast(struct inode *in, int blocks, int size_changed) {
  write_blocks(in, blocks);
  return 0;
}
";
    let spec = "\
unit fs/ocfs2_dio_example;
fastpath ocfs2_get_block_fast;
slowpath ocfs2_dio_write_slow;
cond resized: size_changed;
";
    unit(
        Component::Fs,
        "fs/ocfs2_dio_example",
        src,
        spec,
        vec![KnownBug::new(
            "fs/ocfs2_dio_example#2.1",
            Rule::CondMissing,
            "ocfs2_get_block_fast",
            "missing size-changed check skips the metadata slow path",
            "Data loss",
        )
        .with_latent_years(0.6)],
        "Figure 4: OCFS2 missing trigger condition for path switch",
    )
}

/// Figure 5: Receive Packet Steering. The buggy fast path checks only
/// `map->len == 1`, omitting the `rps_flow_table` conjunct the patch
/// adds; the fixed function is included for the diff demo.
pub fn rps_map() -> CorpusUnit {
    let src = "\
struct rps_map { int len; int cpus[8]; };
struct rps_dev_flow_table { int mask; };
struct netdev_rx_queue {
  struct rps_map *rps_map;
  struct rps_dev_flow_table *rps_flow_table;
};
int cpu_online(int cpu);
int get_rps_cpu_fast(struct netdev_rx_queue *rxqueue) {
  struct rps_map *map = rxqueue->rps_map;
  int cpu = -1;
  if (map->len == 1) {
    int tcpu = map->cpus[0];
    if (cpu_online(tcpu))
      cpu = tcpu;
  }
  return cpu;
}
int get_rps_cpu_fixed(struct netdev_rx_queue *rxqueue) {
  struct rps_map *map = rxqueue->rps_map;
  int cpu = -1;
  if (map->len == 1 && !rxqueue->rps_flow_table) {
    int tcpu = map->cpus[0];
    if (cpu_online(tcpu))
      cpu = tcpu;
  }
  return cpu;
}
";
    let spec = "\
unit net/rps_map_example;
fastpath get_rps_cpu_fast;
cond rps_ready: len, rps_flow_table;
";
    unit(
        Component::Net,
        "net/rps_map_example",
        src,
        spec,
        vec![KnownBug::new(
            "net/rps_map_example#2.2",
            Rule::CondIncomplete,
            "get_rps_cpu_fast",
            "rps_flow_table readiness is not part of the trigger condition",
            "Regression",
        )
        .with_latent_years(1.0)],
        "Figure 5: incomplete RPS trigger condition (patched variant included)",
    )
}

/// Figure 6: the allocator tries the OOM killer before spilling to
/// remote zones, reversing the specified order of condition checks.
pub fn alloc_order() -> CorpusUnit {
    let src = "\
int alloc_from_local(void);
int alloc_from_remote(void);
int alloc_using_oom(void);
int alloc_pages_order_fast(int local_ok, int oom_needed, int remote_ok) {
  if (local_ok)
    return alloc_from_local();
  if (oom_needed)
    return alloc_using_oom();
  if (remote_ok)
    return alloc_from_remote();
  return 0;
}
";
    let spec = "\
unit mm/alloc_order_example;
fastpath alloc_pages_order_fast;
cond remote: remote_ok;
cond oom: oom_needed;
order remote before oom;
";
    unit(
        Component::Mm,
        "mm/alloc_order_example",
        src,
        spec,
        vec![KnownBug::new(
            "mm/alloc_order_example#2.3",
            Rule::CondOrder,
            "alloc_pages_order_fast",
            "OOM reclaim is tried before spilling to remote zones",
            "Regression",
        )
        .with_latent_years(0.9)],
        "Figure 6: reversed order of trigger-condition checks",
    )
}

/// Figure 8: the SCSI target teardown fast path never consults the
/// command's `state_active` fault flag, leaking the failed command;
/// the patched variant is included for the diff demo.
pub fn scsi_free_cmd() -> CorpusUnit {
    let src = "\
struct se_cmd { int state_active; };
int transport_wait_for_tasks(struct se_cmd *cmd);
int target_remove_from_state_list(struct se_cmd *cmd);
int spin_lock_irqsave(void);
int spin_unlock_irqrestore(void);
int transport_generic_free_cmd(struct se_cmd *cmd, int wait_for_tasks) {
  if (wait_for_tasks)
    transport_wait_for_tasks(cmd);
  return 0;
}
int transport_generic_free_cmd_fixed(struct se_cmd *cmd, int wait_for_tasks) {
  if (wait_for_tasks)
    transport_wait_for_tasks(cmd);
  if (cmd->state_active) {
    spin_lock_irqsave();
    target_remove_from_state_list(cmd);
    spin_unlock_irqrestore();
  }
  return 0;
}
";
    let spec = "\
unit dev/scsi_free_cmd_example;
fastpath transport_generic_free_cmd;
fault state_active;
";
    unit(
        Component::Dev,
        "dev/scsi_free_cmd_example",
        src,
        spec,
        vec![KnownBug::new(
            "dev/scsi_free_cmd_example#4.1",
            Rule::FaultMissing,
            "transport_generic_free_cmd",
            "failed command state never handled; cmd object leaks",
            "Memory leak",
        )
        .with_latent_years(2.0)],
        "Figure 8: missing fault handler in SCSI command teardown (patched variant included)",
    )
}

/// Figure 9: the NFS lookup fast path deletes an inode without
/// removing its entry from the inode cache, leaving a bogus file
/// handle visible to NFS daemons.
pub fn nfs_icache() -> CorpusUnit {
    let src = "\
struct inode { int ino; int valid; };
int icache_lookup(int ino);
int read_inode_from_disk(int ino);
int nfs_unlink_fast(struct inode *inode) {
  inode->valid = 0;
  return 0;
}
int nfs_lookup_fast(int ino) {
  int cached = icache_lookup(ino);
  if (cached)
    return cached;
  return read_inode_from_disk(ino);
}
";
    let spec = "\
unit fs/nfs_icache_example;
fastpath nfs_unlink_fast;
cache icache for inode->valid;
";
    unit(
        Component::Fs,
        "fs/nfs_icache_example",
        src,
        spec,
        vec![KnownBug::new(
            "fs/nfs_icache_example#5.2",
            Rule::AssistStale,
            "nfs_unlink_fast",
            "obsolete inode left in icache after deletion",
            "Inconsistency",
        )
        .with_latent_years(3.0)],
        "Figure 9: stale inode-cache entry after unlink",
    )
}

/// All hand-written example units, in figure order.
pub fn examples() -> Vec<CorpusUnit> {
    vec![
        page_alloc(),
        ubifs_write(),
        tcp_rcv(),
        free_pages_mlocked(),
        ocfs2_dio(),
        rps_map(),
        alloc_order(),
        scsi_free_cmd(),
        nfs_icache(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_core::{score, Pallas};

    /// Every example unit parses, checks, and its warnings exactly
    /// validate its ground truth — the figures' bugs are all found and
    /// nothing else is reported.
    #[test]
    fn examples_check_exactly_to_ground_truth() {
        for cu in examples() {
            let analyzed = Pallas::new()
                .check_unit(&cu.unit)
                .unwrap_or_else(|e| panic!("{}: {e}", cu.name()));
            let s = score(&analyzed.warnings, &cu.bugs);
            assert_eq!(
                s.bug_count(),
                cu.bugs.len(),
                "{}: missed {:?}, warnings {:#?}",
                cu.name(),
                s.missed,
                analyzed.warnings
            );
            assert_eq!(
                s.false_positives.len(),
                cu.expected_false_positives,
                "{}: unexpected {:#?}",
                cu.name(),
                s.false_positives
            );
        }
    }

    #[test]
    fn nine_examples_cover_the_figures() {
        let ex = examples();
        assert_eq!(ex.len(), 9);
        let names: Vec<&str> = ex.iter().map(|u| u.name()).collect();
        assert!(names.contains(&"mm/page_alloc_example"));
        assert!(names.contains(&"net/rps_map_example"));
        assert!(names.contains(&"dev/scsi_free_cmd_example"));
    }

    /// The patched variants (Figures 5 and 8) are clean: re-pointing
    /// the spec at the fixed function produces no warnings.
    #[test]
    fn patched_variants_are_clean() {
        for (cu, fixed_fn, spec) in [
            (
                rps_map(),
                "get_rps_cpu_fixed",
                "fastpath get_rps_cpu_fixed; cond rps_ready: len, rps_flow_table;",
            ),
            (
                scsi_free_cmd(),
                "transport_generic_free_cmd_fixed",
                "fastpath transport_generic_free_cmd_fixed; fault state_active;",
            ),
        ] {
            let mut unit = cu.unit.clone();
            unit.spec_text = spec.to_string();
            let analyzed = Pallas::new().check_unit(&unit).unwrap();
            assert!(
                analyzed.warnings.is_empty(),
                "{fixed_fn}: {:#?}",
                analyzed.warnings
            );
        }
    }

    /// The Table 5 unit extracts the gfp_mask overwrite symbolically.
    #[test]
    fn table5_symbolic_listing_from_page_alloc() {
        let cu = page_alloc();
        let analyzed = Pallas::new().check_unit(&cu.unit).unwrap();
        let f = analyzed.db.function("__alloc_pages_nodemask").unwrap();
        // Find a path through the slow branch (gfp_mask reassigned).
        let rec = f
            .records
            .iter()
            .find(|r| {
                r.states().any(|e| matches!(e, pallas_sym::Event::State { lvalue, .. } if lvalue == "gfp_mask"))
            })
            .expect("slow-branch path exists");
        let listing = pallas_sym::render_table5(f, rec, &analyzed.spec);
        assert!(listing.contains("@immutable = gfp_mask"), "{listing}");
        assert!(listing.contains("gfp_mask = "), "{listing}");
        assert!(listing.contains("Signature"), "{listing}");
    }
}
