//! Seeded synthetic workload generator for benchmarks and stress
//! tests: units of configurable size (functions, branches, statements)
//! with optional injected bugs.

use crate::builder::compose_unit;
use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::SourceUnit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Generates one synthetic unit with `functions` functions, each with
/// roughly `branches` two-way branches (so up to `2^branches` paths
/// before capping). Deterministic for a given seed.
pub fn synthetic_unit(functions: usize, branches: usize, seed: u64) -> SourceUnit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    let _ = writeln!(src, "int sink(int v);");
    for f in 0..functions {
        let _ = writeln!(src, "int synth_fn_{f}(int a, int b, int c) {{");
        let _ = writeln!(src, "  int acc = a;");
        for i in 0..branches {
            let var = ["a", "b", "c", "acc"][rng.gen_range(0..4)];
            let lit = rng.gen_range(0..100);
            let op = ["==", "!=", "<", ">"][rng.gen_range(0..4)];
            let _ = writeln!(src, "  if ({var} {op} {lit}) {{");
            match rng.gen_range(0..3) {
                0 => {
                    let _ = writeln!(src, "    acc = acc + {i};");
                }
                1 => {
                    let _ = writeln!(src, "    sink(acc);");
                }
                _ => {
                    let _ = writeln!(src, "    acc = acc | {};", 1 << (i % 16));
                }
            }
            let _ = writeln!(src, "  }}");
        }
        let _ = writeln!(src, "  return acc;");
        let _ = writeln!(src, "}}");
    }
    let spec = "unit synth/generated;\nfastpath synth_fn_0;\nimmutable a;\ncond trig: b;\n";
    SourceUnit::new(format!("synth/f{functions}_b{branches}_s{seed}"))
        .with_file("synth.c", src)
        .with_spec(spec)
}

/// Generates a corpus of `n_units` synthetic units, each with a random
/// (seeded) plan of injected bug patterns — used by throughput benches
/// that need many distinct findable bugs.
pub fn synthetic_corpus(n_units: usize, seed: u64) -> Vec<CorpusUnit> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_units)
        .map(|i| {
            let component = Component::ALL[rng.gen_range(0..Component::ALL.len())];
            let mut rules: Vec<Rule> = Rule::ALL.to_vec();
            let plan_len = rng.gen_range(1..=4);
            let mut plan = Vec::with_capacity(plan_len);
            for _ in 0..plan_len {
                let idx = rng.gen_range(0..rules.len());
                let rule = rules.remove(idx);
                plan.push((rule, rng.gen_bool(0.3)));
            }
            let name = format!("{}/synth_{i}", component.prefix());
            let fast_fn = format!("synth_{i}_fast");
            compose_unit(component, &name, &fast_fn, &plan)
        })
        .collect()
}

/// Generates a batch whose cost is deliberately skewed: the first
/// sixth of the units are heavy (10 branches ≈ 1024 paths before
/// capping), the rest light (2 branches). With contiguous chunking the
/// heavy cluster lands on one worker and serializes the batch; work
/// stealing spreads it — this is the workload the `engine` benchmark
/// compares the two schedulers on.
pub fn skewed_units(n_units: usize, seed: u64) -> Vec<SourceUnit> {
    let heavy = (n_units / 6).max(1).min(n_units);
    (0..n_units)
        .map(|i| {
            let branches = if i < heavy { 10 } else { 2 };
            synthetic_unit(2, branches, seed.wrapping_add(i as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_core::Pallas;

    #[test]
    fn synthetic_unit_is_deterministic_and_parses() {
        let a = synthetic_unit(3, 6, 42);
        let b = synthetic_unit(3, 6, 42);
        assert_eq!(a, b);
        let analyzed = Pallas::new().check_unit(&a).unwrap();
        assert_eq!(analyzed.db.functions.len(), 3);
        assert!(analyzed.db.path_count() > 0);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(synthetic_unit(2, 4, 1), synthetic_unit(2, 4, 2));
    }

    #[test]
    fn branch_count_scales_paths() {
        let small = Pallas::new().check_unit(&synthetic_unit(1, 2, 7)).unwrap();
        let large = Pallas::new().check_unit(&synthetic_unit(1, 8, 7)).unwrap();
        assert!(large.db.path_count() > small.db.path_count());
    }

    #[test]
    fn skewed_units_front_load_the_cost() {
        let units = skewed_units(12, 5);
        assert_eq!(units.len(), 12);
        let paths = |u: &SourceUnit| Pallas::new().check_unit(u).unwrap().db.path_count();
        assert!(paths(&units[0]) > 10 * paths(&units[11]), "front units must dominate");
        // Deterministic for a given seed.
        assert_eq!(units, skewed_units(12, 5));
    }

    #[test]
    fn synthetic_corpus_checks_to_expected_counts() {
        let corpus = synthetic_corpus(10, 99);
        assert_eq!(corpus.len(), 10);
        for cu in &corpus {
            let analyzed = Pallas::new()
                .check_unit(&cu.unit)
                .unwrap_or_else(|e| panic!("{}: {e}", cu.name()));
            let s = pallas_core::score(&analyzed.warnings, &cu.bugs);
            assert_eq!(s.bug_count(), cu.bugs.len(), "{}", cu.name());
            assert_eq!(s.false_positives.len(), cu.expected_false_positives, "{}", cu.name());
        }
    }
}
