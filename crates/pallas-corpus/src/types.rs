//! Corpus types: evaluated software components and corpus units.

use pallas_core::{KnownBug, SourceUnit};
use std::fmt;

/// The seven software components of the paper's evaluation (Table 1
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Linux virtual memory manager.
    Mm,
    /// Linux file systems.
    Fs,
    /// Linux network stack.
    Net,
    /// Linux device drivers.
    Dev,
    /// Chromium web browser.
    Wb,
    /// Open vSwitch (software-defined networking).
    Sdn,
    /// Android mobile OS kernel.
    Mob,
}

impl Component {
    /// All components in Table 1 column order.
    pub const ALL: [Component; 7] = [
        Component::Mm,
        Component::Fs,
        Component::Net,
        Component::Dev,
        Component::Wb,
        Component::Sdn,
        Component::Mob,
    ];

    /// Column label used in the paper's tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Mm => "MM",
            Component::Fs => "FS",
            Component::Net => "NET",
            Component::Dev => "DEV",
            Component::Wb => "WB",
            Component::Sdn => "SDN",
            Component::Mob => "MOB",
        }
    }

    /// Directory-style prefix used in unit names (`mm/...`).
    pub fn prefix(self) -> &'static str {
        match self {
            Component::Mm => "mm",
            Component::Fs => "fs",
            Component::Net => "net",
            Component::Dev => "dev",
            Component::Wb => "wb",
            Component::Sdn => "sdn",
            Component::Mob => "mob",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

/// One corpus unit: a checkable source unit plus its ground truth.
#[derive(Debug, Clone)]
pub struct CorpusUnit {
    /// Owning component.
    pub component: Component,
    /// The mergeable source unit (name, files, spec).
    pub unit: SourceUnit,
    /// Ground-truth bugs known to be present.
    pub bugs: Vec<KnownBug>,
    /// Number of deliberately benign patterns expected to raise
    /// warnings (the §5.3 false-positive sources).
    pub expected_false_positives: usize,
    /// Short human description.
    pub description: String,
}

impl CorpusUnit {
    /// The unit's report name.
    pub fn name(&self) -> &str {
        &self.unit.name
    }
}

/// A software system evaluated in the paper (Table 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluatedSystem {
    /// System name.
    pub software: &'static str,
    /// Version evaluated.
    pub version: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Components of this corpus drawn from the system.
    pub components: Vec<Component>,
}

/// The Table 6 inventory.
pub fn systems() -> Vec<EvaluatedSystem> {
    vec![
        EvaluatedSystem {
            software: "Linux kernel",
            version: "4.6",
            description: "General-purpose OS",
            components: vec![Component::Mm, Component::Fs, Component::Net, Component::Dev],
        },
        EvaluatedSystem {
            software: "Chromium",
            version: "54.0",
            description: "Web browser",
            components: vec![Component::Wb],
        },
        EvaluatedSystem {
            software: "Android kernel",
            version: "6.0",
            description: "OS for mobile devices",
            components: vec![Component::Mob],
        },
        EvaluatedSystem {
            software: "Open vSwitch",
            version: "2.5.0",
            description: "SDN software",
            components: vec![Component::Sdn],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_components() {
        assert_eq!(Component::ALL.len(), 7);
        assert_eq!(Component::Mm.to_string(), "MM");
        assert_eq!(Component::Sdn.prefix(), "sdn");
    }

    #[test]
    fn table6_inventory() {
        let sys = systems();
        assert_eq!(sys.len(), 4);
        assert_eq!(sys[0].version, "4.6");
        let covered: usize = sys.iter().map(|s| s.components.len()).sum();
        assert_eq!(covered, 7, "every component belongs to a system");
    }
}
