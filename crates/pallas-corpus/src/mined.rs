//! Labelled miniatures for the study-mined extension rules.
//!
//! The bug study tags two consequence classes that none of the twelve
//! Table 1 rules address: MemoryLeak (resources acquired on the fast
//! path and dropped by an early-return arm) and
//! PerformanceDegradation (slow-path work performed unconditionally or
//! repeatedly on the fast path). Rules 6.1/6.2 and 7.1 cover them;
//! this set is their ground truth — one positive and one negative
//! unit per rule, plus the family's known false-positive source
//! (ownership transfer), so the scorer exercises hit, clean, and FP
//! outcomes for every new rule.

use crate::types::{Component, CorpusUnit};
use pallas_checkers::Rule;
use pallas_core::{KnownBug, SourceUnit};

fn unit(
    component: Component,
    name: &str,
    source: &str,
    spec: &str,
    bugs: Vec<KnownBug>,
    expected_false_positives: usize,
    description: &str,
) -> CorpusUnit {
    CorpusUnit {
        component,
        unit: SourceUnit::new(name)
            .with_file(format!("{}.c", name.replace('/', "_")), source)
            .with_spec(spec),
        bugs,
        expected_false_positives,
        description: description.to_string(),
    }
}

/// Rule 6.1 positive: the fast path pins a page and an early-return
/// arm bails out before the unpin — the study's dominant MemoryLeak
/// shape.
pub fn pin_leak() -> CorpusUnit {
    let src = "\
int pin_page(int addr);
int unpin_page(int page);
int process(int page);
int pin_fast(int addr, int ready) {
  int page = pin_page(addr);
  if (!ready)
    return -1;
  process(page);
  unpin_page(page);
  return 0;
}
";
    let spec = "\
unit mm/pin_leak;
fastpath pin_fast;
pair pin_page -> unpin_page;
";
    unit(
        Component::Mm,
        "mm/pin_leak",
        src,
        spec,
        vec![KnownBug::new(
            "mm/pin_leak#6.1",
            Rule::AcquireNoRelease,
            "pin_fast",
            "the not-ready arm returns between pin_page and unpin_page",
            "Memory leak",
        )],
        0,
        "6.1 positive: early return between acquire and release",
    )
}

/// Rule 6.1 negative: the same shape with the early-return arm
/// releasing before it bails — every path is balanced.
pub fn pin_balanced() -> CorpusUnit {
    let src = "\
int pin_page(int addr);
int unpin_page(int page);
int process(int page);
int pin_fast(int addr, int ready) {
  int page = pin_page(addr);
  if (!ready) {
    unpin_page(page);
    return -1;
  }
  process(page);
  unpin_page(page);
  return 0;
}
";
    let spec = "\
unit mm/pin_balanced;
fastpath pin_fast;
pair pin_page -> unpin_page;
";
    unit(
        Component::Mm,
        "mm/pin_balanced",
        src,
        spec,
        vec![],
        0,
        "6.1 negative: every arm releases before returning",
    )
}

/// Rule 6.1 false-positive source: the acquired buffer is handed to a
/// queue that owns it from then on. Path-local checking cannot see the
/// ownership transfer, so the unit is benign but warns — the family's
/// §5.3-style FP, labelled as such.
pub fn io_handoff() -> CorpusUnit {
    let src = "\
int grab_buffer(int len);
int put_buffer(int buf);
int queue_write(int buf);
int submit_fast(int len) {
  int buf = grab_buffer(len);
  queue_write(buf);
  return 0;
}
";
    let spec = "\
unit fs/io_handoff;
fastpath submit_fast;
pair grab_buffer -> put_buffer;
";
    unit(
        Component::Fs,
        "fs/io_handoff",
        src,
        spec,
        vec![],
        1,
        "6.1 false positive: ownership transferred to the write queue",
    )
}

/// Rule 6.2 positive: a path releases a buffer it never acquired —
/// seen from this path, a double release.
pub fn stray_put() -> CorpusUnit {
    let src = "\
int grab_buffer(int len);
int put_buffer(int buf);
int drop_fast(int buf, int dirty) {
  if (dirty)
    put_buffer(buf);
  return 0;
}
";
    let spec = "\
unit fs/stray_put;
fastpath drop_fast;
pair grab_buffer -> put_buffer;
";
    unit(
        Component::Fs,
        "fs/stray_put",
        src,
        spec,
        vec![KnownBug::new(
            "fs/stray_put#6.2",
            Rule::ReleaseNoAcquire,
            "drop_fast",
            "put_buffer runs on a path that never called grab_buffer",
            "System crash",
        )],
        0,
        "6.2 positive: release with no acquire on the path",
    )
}

/// Rule 6.2 negative: the acquire precedes the release on the same
/// path, so the pairing is clean.
pub fn grab_then_put() -> CorpusUnit {
    let src = "\
int grab_buffer(int len);
int put_buffer(int buf);
int copy_fast(int len) {
  int buf = grab_buffer(len);
  put_buffer(buf);
  return 0;
}
";
    let spec = "\
unit fs/grab_then_put;
fastpath copy_fast;
pair grab_buffer -> put_buffer;
";
    unit(
        Component::Fs,
        "fs/grab_then_put",
        src,
        spec,
        vec![],
        0,
        "6.2 negative: acquire precedes the release",
    )
}

/// Rule 7.1 positive: a declared-expensive writeback flush runs on
/// every traversal of the fast path — the fast path is only fast in
/// name.
pub fn tx_flush() -> CorpusUnit {
    let src = "\
int wb_flush(void);
int tx_fast(int len) {
  wb_flush();
  return len;
}
";
    let spec = "\
unit net/tx_flush;
fastpath tx_fast;
expensive wb_flush;
";
    unit(
        Component::Net,
        "net/tx_flush",
        src,
        spec,
        vec![KnownBug::new(
            "net/tx_flush#7.1",
            Rule::FastPathExpensive,
            "tx_fast",
            "wb_flush runs unconditionally on the fast path",
            "Regression",
        )],
        0,
        "7.1 positive: unconditional expensive helper",
    )
}

/// Rule 7.1 negative: the flush is guarded by the dirty flag, so a
/// clean traversal skips the slow work.
pub fn tx_flush_guarded() -> CorpusUnit {
    let src = "\
int wb_flush(void);
int tx_fast(int len, int dirty) {
  if (dirty)
    wb_flush();
  return len;
}
";
    let spec = "\
unit net/tx_flush_guarded;
fastpath tx_fast;
expensive wb_flush;
";
    unit(
        Component::Net,
        "net/tx_flush_guarded",
        src,
        spec,
        vec![],
        0,
        "7.1 negative: flush guarded by the dirty flag",
    )
}

/// All labelled units for the study-mined rules, positives first
/// within each rule.
pub fn mined_rules() -> Vec<CorpusUnit> {
    vec![
        pin_leak(),
        pin_balanced(),
        io_handoff(),
        stray_put(),
        grab_then_put(),
        tx_flush(),
        tx_flush_guarded(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_core::{score, Pallas};

    #[test]
    fn mined_units_check_exactly() {
        for cu in mined_rules() {
            let analyzed = Pallas::new()
                .check_unit(&cu.unit)
                .unwrap_or_else(|e| panic!("{}: {e}", cu.name()));
            let s = score(&analyzed.warnings, &cu.bugs);
            assert_eq!(
                s.bug_count(),
                cu.bugs.len(),
                "{}: missed {:?}, warnings {:#?}",
                cu.name(),
                s.missed,
                analyzed.warnings
            );
            assert_eq!(
                s.false_positives.len(),
                cu.expected_false_positives,
                "{}: {:#?}",
                cu.name(),
                s.false_positives
            );
        }
    }

    #[test]
    fn every_mined_rule_has_a_positive_and_a_negative() {
        let set = mined_rules();
        for rule in [Rule::AcquireNoRelease, Rule::ReleaseNoAcquire, Rule::FastPathExpensive] {
            assert!(
                set.iter().any(|cu| cu.bugs.iter().any(|b| b.rule == rule)),
                "no positive unit for {rule:?}"
            );
        }
        assert!(
            set.iter().any(|cu| cu.bugs.is_empty() && cu.expected_false_positives == 0),
            "no clean negative unit"
        );
    }

    #[test]
    fn positives_fire_under_the_default_rule_set() {
        // The acceptance bar for the extension rules: they fire in a
        // plain engine run, not only when explicitly selected.
        let engine = pallas_core::Engine::new();
        for cu in mined_rules().iter().filter(|cu| !cu.bugs.is_empty()) {
            let analyzed = engine.check_unit(&cu.unit).unwrap();
            for bug in &cu.bugs {
                assert!(
                    analyzed.warnings.iter().any(|w| w.rule == bug.rule),
                    "{}: rule {:?} silent in default run; warnings {:#?}",
                    cu.name(),
                    bug.rule,
                    analyzed.warnings
                );
            }
        }
    }
}
