//! Error-quality tests: malformed inputs must fail with messages that
//! name what was expected, never panic, and carry spans.

use pallas_lang::parse;

fn err_of(src: &str) -> String {
    match parse(src) {
        Err(e) => {
            assert!(e.span.end as usize <= src.len() + 1, "span in bounds");
            e.message
        }
        Ok(_) => panic!("expected parse error for:\n{src}"),
    }
}

#[test]
fn missing_semicolon() {
    let m = err_of("int f(void) { int x = 1 return x; }");
    assert!(m.contains("expected `;`"), "{m}");
}

#[test]
fn missing_closing_paren() {
    let m = err_of("int f(int a { return a; }");
    assert!(m.contains("expected"), "{m}");
}

#[test]
fn unterminated_block() {
    let m = err_of("int f(void) { return 0;");
    assert!(m.contains("unterminated block") || m.contains("expected"), "{m}");
}

#[test]
fn stray_operator_in_expression() {
    let m = err_of("int f(int a) { return a + ; }");
    assert!(m.contains("expected expression"), "{m}");
}

#[test]
fn bad_top_level_token() {
    let m = err_of("@ int f(void) { return 0; }");
    assert!(m.contains("unexpected character") || m.contains("expected"), "{m}");
}

#[test]
fn struct_without_brace_or_name() {
    let m = err_of("struct { int a; };");
    assert!(m.contains("expected identifier"), "{m}");
}

#[test]
fn enum_bad_initializer() {
    let m = err_of("enum e { A = x };");
    assert!(m.contains("constant"), "{m}");
}

#[test]
fn do_without_while() {
    let m = err_of("int f(int a) { do { a--; } until (a); return a; }");
    assert!(m.contains("while"), "{m}");
}

#[test]
fn case_outside_parse_is_tolerated_but_bad_case_value_is_not() {
    let m = err_of("int f(int a) { switch (a) { case : return 1; } }");
    assert!(m.contains("expected expression"), "{m}");
}

#[test]
fn missing_function_body_or_semi() {
    let m = err_of("int f(void)");
    assert!(m.contains("expected"), "{m}");
}

#[test]
fn unterminated_string_reported_from_lexer() {
    let m = err_of("int f(void) { return puts(\"oops); }");
    assert!(m.contains("unterminated string"), "{m}");
}

#[test]
fn error_messages_name_the_found_token() {
    let m = err_of("int f(void) { return 0; } }");
    assert!(m.contains('}'), "{m}");
}

#[test]
fn pathological_nesting_is_an_error_not_a_stack_overflow() {
    // 20k nested parens previously aborted the process with a stack
    // overflow, which catch_unwind cannot contain. The parser must
    // bail out with a regular error instead.
    let deep = format!("int f(int x) {{ return {}x{}; }}", "(".repeat(20_000), ")".repeat(20_000));
    let m = err_of(&deep);
    assert!(m.contains("nesting"), "{m}");

    let blocks = format!("int g(void) {{ {} return 0; {} }}", "{".repeat(20_000), "}".repeat(20_000));
    let m = err_of(&blocks);
    assert!(m.contains("nesting"), "{m}");
}

#[test]
fn reasonable_nesting_still_parses() {
    let src = format!("int f(int x) {{ return {}x{}; }}", "(".repeat(100), ")".repeat(100));
    assert!(parse(&src).is_ok());
}
