//! Torture test: one large kernel-style translation unit exercising
//! the full front-end feature matrix at once, end to end through CFG
//! construction and symbolic extraction.

use pallas_lang::{parse, Item};

const KERNEL_STYLE: &str = r#"
/* A miniature "subsystem" merging header-ish declarations and the
   implementation, the way the Pallas merge step produces units. */
#include <linux/kernel.h>
#include <linux/mm.h>

#define GFP_NOWAIT 0x00
#define GFP_KERNEL 0x14
#define MAX_ORDER 11

typedef unsigned int gfp_t;
typedef unsigned long pfn_t;

enum migrate_mode {
    MIGRATE_ASYNC,
    MIGRATE_SYNC_LIGHT,
    MIGRATE_SYNC = 4,
    MIGRATE_LAST,
};

struct list_head {
    struct list_head *next, *prev;
};

struct page {
    unsigned long flags;
    int refcount;
    int private;
    struct list_head lru;
};

struct zone {
    unsigned long free_pages;
    unsigned long watermark[3];
    struct page *pcp_list;
    int node;
};

struct alloc_context {
    struct zone *preferred_zone;
    gfp_t gfp_mask;
    int order;
    int migratetype;
};

/* prototypes */
extern int printk(const char *fmt, ...);
int zone_watermark_ok(struct zone *z, int order, unsigned long mark);
struct page *rmqueue_pcplist(struct zone *zone, int migratetype);
struct page *rmqueue_buddy(struct zone *zone, int order, int migratetype);
void wakeup_kswapd(struct zone *zone);

static int order_to_index(int order) {
    switch (order) {
        case 0:
            return 0;
        case 1:
        case 2:
            return 1;
        default:
            return 2;
    }
}

static unsigned long low_wmark(struct zone *z, int order) {
    return z->watermark[order_to_index(order)];
}

/* the fast path: order-0 allocations served from per-cpu lists */
struct page *rmqueue(struct zone *zone, int order, gfp_t gfp_mask, int migratetype) {
    struct page *page = 0;
    if (order == 0) {
        page = rmqueue_pcplist(zone, migratetype);
        if (page)
            goto out;
    }
    /* slow path: take the zone lock and hit the buddy lists */
    do {
        page = rmqueue_buddy(zone, order, migratetype);
        if (!page && order >= MAX_ORDER)
            return 0;
    } while (!page);

    if (!zone_watermark_ok(zone, order, low_wmark(zone, order)))
        wakeup_kswapd(zone);

out:
    if (page) {
        page->refcount++;
        page->private = migratetype;
    }
    return page;
}

/* a caller mixing ternaries, casts, comma reads and compound ops */
int alloc_batch(struct zone *zone, int n, gfp_t mask) {
    int allocated = 0;
    for (int i = 0; i < n; i++) {
        struct page *p = rmqueue(zone, 0, mask ? mask : (gfp_t)GFP_KERNEL, MIGRATE_ASYNC);
        if (!p)
            break;
        allocated += 1;
        zone->free_pages -= 1UL;
    }
    printk("allocated %d\n", allocated);
    return allocated;
}
"#;

#[test]
fn kernel_style_unit_parses() {
    let ast = parse(KERNEL_STYLE).unwrap_or_else(|e| panic!("{e}"));
    assert!(ast.function("rmqueue").is_some());
    assert!(ast.function("alloc_batch").is_some());
    assert!(ast.function("order_to_index").is_some());
    assert_eq!(ast.functions().count(), 4);
    assert!(ast.struct_def("page").is_some());
    assert!(ast.struct_def("alloc_context").is_some());
    assert_eq!(ast.enum_value("MIGRATE_SYNC"), Some(4));
    assert_eq!(ast.enum_value("MIGRATE_LAST"), Some(5));
    // Prototypes survive as items.
    let protos = ast
        .items
        .iter()
        .filter(|i| matches!(i, Item::Proto(_)))
        .count();
    assert!(protos >= 5, "{protos}");
}

#[test]
fn kernel_style_macros_substituted() {
    let ast = parse(KERNEL_STYLE).unwrap();
    // MAX_ORDER appears inside rmqueue as the literal 11; check by
    // extracting and looking for the condition.
    let db = pallas_sym::extract("k", &ast, KERNEL_STYLE, &pallas_sym::ExtractConfig::default());
    let f = db.function("rmqueue").unwrap();
    let any_literal_11 = f.records.iter().any(|r| {
        r.conditions().any(|e| match e {
            pallas_sym::Event::Cond { text, .. } => text.contains("11"),
            _ => false,
        })
    });
    assert!(any_literal_11, "#define MAX_ORDER expanded");
}

#[test]
fn kernel_style_cfg_structure() {
    let ast = parse(KERNEL_STYLE).unwrap();
    let f = ast.function("rmqueue").unwrap();
    let cfg = pallas_cfg::build_cfg(&ast, f);
    // One do-while loop.
    let (loops, nesting) = pallas_cfg::loop_stats(&cfg);
    assert_eq!(loops, 1);
    assert_eq!(nesting, 1);
    // The goto target block is labelled `out`.
    assert!(cfg.blocks.iter().any(|b| b.label.as_deref() == Some("out")));
    // Multiple exits: `return 0` inside the loop and the final return.
    assert!(cfg.exit_blocks().len() >= 2);

    let switch_fn = ast.function("order_to_index").unwrap();
    let switch_cfg = pallas_cfg::build_cfg(&ast, switch_fn);
    // case 1 and case 2 share a body via fallthrough.
    let ps = pallas_cfg::enumerate_paths(&switch_cfg, &pallas_cfg::PathConfig::default());
    assert_eq!(ps.paths.len(), 4, "case 0, case 1, case 2, default");
}

#[test]
fn kernel_style_symbolic_extraction() {
    let ast = parse(KERNEL_STYLE).unwrap();
    let db = pallas_sym::extract("k", &ast, KERNEL_STYLE, &pallas_sym::ExtractConfig::default());
    let f = db.function("rmqueue").unwrap();
    assert!(!f.records.is_empty());
    // Some path writes page->private.
    let writes_private = f.records.iter().any(|r| {
        r.states().any(|e| matches!(e, pallas_sym::Event::State { lvalue, .. } if lvalue == "page->private"))
    });
    assert!(writes_private);
    // The call graph connects alloc_batch → rmqueue → rmqueue_pcplist.
    let cg = pallas_sym::CallGraph::build(&db);
    assert_eq!(cg.call_depth("alloc_batch", "rmqueue"), Some(1));
    assert_eq!(cg.call_depth("alloc_batch", "rmqueue_pcplist"), Some(2));
}

#[test]
fn kernel_style_checks_with_spec() {
    // End-to-end through the whole toolkit: the unit carries one real
    // bug shape (rmqueue overwrites page->private which the spec pins).
    let report = pallas_core::Pallas::new()
        .check_source(
            "mm/kernel_style",
            KERNEL_STYLE,
            "fastpath rmqueue;\n\
             immutable page->private;\n\
             cond order0: order;\n\
             fault kswapd_failed;",
        )
        .expect("unit checks");
    use pallas_checkers::Rule;
    let rules: Vec<Rule> = report.warnings.iter().map(|w| w.rule).collect();
    assert!(rules.contains(&Rule::ImmutableOverwrite), "{:?}", report.warnings);
    assert!(rules.contains(&Rule::FaultMissing), "{:?}", report.warnings);
    // order *is* checked, so no 2.1 warning.
    assert!(!rules.contains(&Rule::CondMissing), "{:?}", report.warnings);
}
