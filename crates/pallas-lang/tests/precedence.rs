//! Golden tests for expression parsing: operator precedence and
//! associativity, checked through the pretty-printer's explicit
//! parenthesization.

use pallas_lang::{expr_to_string, parse, StmtKind};

/// Parses `return <expr>;` and renders the expression with explicit
/// grouping.
fn shape(expr: &str) -> String {
    let src = format!("int f(int a, int b, int c, int d) {{ return {expr}; }}");
    let ast = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let f = ast.functions().next().unwrap();
    let body = match &ast.stmt(f.body).kind {
        StmtKind::Block(stmts) => stmts.clone(),
        _ => unreachable!(),
    };
    for &s in &body {
        if let StmtKind::Return(Some(e)) = &ast.stmt(s).kind {
            return expr_to_string(&ast, *e);
        }
    }
    panic!("no return found");
}

#[test]
fn multiplication_binds_tighter_than_addition() {
    assert_eq!(shape("a + b * c"), "a + (b * c)");
    assert_eq!(shape("a * b + c"), "(a * b) + c");
}

#[test]
fn shifts_bind_tighter_than_comparisons() {
    assert_eq!(shape("a << 2 < b"), "(a << 2) < b");
    assert_eq!(shape("a < b >> 1"), "a < (b >> 1)");
}

#[test]
fn comparisons_bind_tighter_than_bitwise() {
    // The classic C gotcha: `a & b == c` is `a & (b == c)`.
    assert_eq!(shape("a & b == c"), "a & (b == c)");
    assert_eq!(shape("a == b & c"), "(a == b) & c");
}

#[test]
fn bitwise_precedence_chain() {
    // & over ^ over |
    assert_eq!(shape("a | b ^ c & d"), "a | (b ^ (c & d))");
    assert_eq!(shape("a & b ^ c | d"), "((a & b) ^ c) | d");
}

#[test]
fn logical_and_over_or() {
    assert_eq!(shape("a || b && c"), "a || (b && c)");
    assert_eq!(shape("a && b || c"), "(a && b) || c");
}

#[test]
fn bitwise_over_logical() {
    assert_eq!(shape("a & b && c | d"), "(a & b) && (c | d)");
}

#[test]
fn binary_operators_left_associative() {
    assert_eq!(shape("a - b - c"), "(a - b) - c");
    assert_eq!(shape("a / b / c"), "(a / b) / c");
    assert_eq!(shape("a << b << c"), "(a << b) << c");
}

#[test]
fn assignment_right_associative() {
    assert_eq!(shape("a = b = c"), "a = b = c");
    // Verify the tree shape by checking a compound variant parses.
    assert_eq!(shape("a = b += c"), "a = b += c");
}

#[test]
fn ternary_binds_looser_than_logical() {
    assert_eq!(shape("a && b ? c : d"), "(a && b) ? c : d");
    // Arms between `?` and `:` are unambiguous and render bare.
    assert_eq!(shape("a ? b && c : d"), "a ? b && c : d");
}

#[test]
fn unary_binds_tighter_than_binary() {
    assert_eq!(shape("!a && b"), "!a && b");
    assert_eq!(shape("-a * b"), "-a * b");
    assert_eq!(shape("~a | b"), "~a | b");
    assert_eq!(shape("!a == b"), "!a == b");
}

#[test]
fn postfix_binds_tighter_than_unary() {
    assert_eq!(shape("-a[0]"), "-a[0]");
    assert_eq!(shape("!f(a)"), "!f(a)");
    assert_eq!(shape("*a[1]"), "*a[1]");
    assert_eq!(shape("-a++"), "-a++");
}

#[test]
fn member_chains_flat() {
    assert_eq!(shape("a->b.c->d"), "a->b.c->d");
}

#[test]
fn parenthesized_subexpressions_preserved_in_meaning() {
    // Parens change the tree: (a + b) * c renders with the grouping.
    assert_eq!(shape("(a + b) * c"), "(a + b) * c");
    assert_eq!(shape("a + (b * c)"), "a + (b * c)");
    // Double parens collapse.
    assert_eq!(shape("((a))"), "a");
}

#[test]
fn mixed_kernel_flag_expression() {
    assert_eq!(
        shape("a & 16 && !(b->flags & 32) || c == 0"),
        "((a & 16) && !(b->flags & 32)) || (c == 0)"
    );
}

#[test]
fn sizeof_and_cast_interaction() {
    assert_eq!(shape("sizeof(int) + a"), "sizeof(int) + a");
    assert_eq!(shape("(unsigned)a + b"), "(unsigned)a + b");
}

#[test]
fn comma_in_parens_lowest() {
    assert_eq!(shape("(a, b)"), "a, b");
}
