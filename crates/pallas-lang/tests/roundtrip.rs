//! Source round-trip tests: `parse → unit_to_source → parse` reaches a
//! fixpoint, and the regenerated source preserves structure.

use pallas_lang::{parse, unit_to_source};

fn roundtrip(src: &str) {
    let ast1 = parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let printed1 = unit_to_source(&ast1);
    let ast2 = parse(&printed1).unwrap_or_else(|e| panic!("reparse: {e}\n{printed1}"));
    let printed2 = unit_to_source(&ast2);
    assert_eq!(printed1, printed2, "print→parse→print must be a fixpoint");
    assert_eq!(ast1.functions().count(), ast2.functions().count());
    assert_eq!(ast1.structs().count(), ast2.structs().count());
    assert_eq!(ast1.enums().count(), ast2.enums().count());
}

#[test]
fn roundtrip_simple_function() {
    roundtrip("int f(int x) { if (x > 0) return 1; return 0; }");
}

#[test]
fn roundtrip_structs_enums_typedefs_globals() {
    roundtrip(
        "typedef unsigned int gfp_t;\n\
         enum zone_type { ZONE_DMA, ZONE_NORMAL = 5 };\n\
         struct page { int flags; struct page *next; };\n\
         union u { int a; long b; };\n\
         static int total_pages = 4096;\n\
         extern int printk(const char *fmt, ...);\n",
    );
}

#[test]
fn roundtrip_control_flow_zoo() {
    roundtrip(
        "int f(int n, int mode) {\n\
           int s = 0;\n\
           for (int i = 0; i < n; i++) {\n\
             switch (mode) {\n\
               case 1: s += i; break;\n\
               case 2:\n\
               case 3: s -= i; break;\n\
               default: continue;\n\
             }\n\
           }\n\
           do { s--; } while (s > 100);\n\
           if (s < 0)\n\
             goto out;\n\
           while (s) s /= 2;\n\
         out:\n\
           return s;\n\
         }",
    );
}

#[test]
fn roundtrip_expressions() {
    roundtrip(
        "int f(struct q *p, int a, int b) {\n\
           int x = (a + b) * 2 - -a;\n\
           x |= p->m[a] & ~b;\n\
           x = a ? b : (int)x;\n\
           x += sizeof(int);\n\
           p->m[0]++;\n\
           return !x;\n\
         }\n\
         struct q { int m[4]; };",
    );
}

#[test]
fn roundtrip_generator_output_256_seeds() {
    // The fuzz generator prints its AST with `unit_to_source`, so its
    // output is exactly the printer's image: reparsing must reproduce
    // the same source byte-for-byte and the same item structure. 256
    // fixed seeds keep the property deterministic in CI while covering
    // every statement and expression form the generator emits.
    for seed in 0..256u64 {
        let g = pallas_fuzz::generate(seed);
        let ast2 = parse(&g.source)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e:?}\n{}", g.source));
        let printed2 = unit_to_source(&ast2);
        assert_eq!(g.source, printed2, "seed {seed}: print→parse→print not a fixpoint");
        assert_eq!(
            g.ast.functions().count(),
            ast2.functions().count(),
            "seed {seed}: function count drifted"
        );
        assert_eq!(
            g.ast.structs().count(),
            ast2.structs().count(),
            "seed {seed}: struct count drifted"
        );
        assert_eq!(
            g.ast.items.len(),
            ast2.items.len(),
            "seed {seed}: item count drifted"
        );
        // The deeper structural check: a second print of the original
        // AST also matches, i.e. the generator's AST and the reparsed
        // AST are printer-equivalent.
        assert_eq!(unit_to_source(&g.ast), printed2, "seed {seed}");
    }
}

#[test]
fn roundtrip_pragmas_preserved() {
    let src = "/* @pallas fastpath f; */\nint f(void) { /* @pallas fault E; */ return 0; }";
    let ast1 = parse(src).unwrap();
    let printed = unit_to_source(&ast1);
    let ast2 = parse(&printed).unwrap();
    assert_eq!(ast1.pragmas(), ast2.pragmas());
}

#[test]
fn reprinted_kernel_miniature_still_checks_identically() {
    // End-to-end: reprint a corpus miniature and confirm the checker
    // finds the same bug in the regenerated source.
    let cu = pallas_corpus::examples::page_alloc();
    let (merged, _) = cu.unit.merge();
    let ast = parse(&merged).unwrap();
    let reprinted = unit_to_source(&ast);
    let report = pallas_core::Pallas::new()
        .check_source("reprinted", &reprinted, &cu.unit.spec_text)
        .unwrap_or_else(|e| panic!("{e}\n{reprinted}"));
    assert_eq!(report.warnings.len(), 1, "{:#?}", report.warnings);
    assert_eq!(report.warnings[0].rule, pallas_checkers::Rule::ImmutableOverwrite);
}
