//! # pallas-lang
//!
//! The C-subset front-end for the Pallas fast-path checker — the
//! substrate that replaces the Clang front-end used by the original
//! ASPLOS'17 system.
//!
//! The pipeline is: [`lexer::lex`] → [`parser::parse`] → [`ast::Ast`].
//! Source positions are tracked by [`span::Span`] and mapped back to
//! line numbers with [`span::LineMap`], which is how path records report
//! the `L#` column of the paper's Table 5.
//!
//! ```
//! use pallas_lang::parse;
//!
//! # fn main() -> Result<(), pallas_lang::ParseError> {
//! let ast = parse("int double_it(int x) { return x * 2; }")?;
//! assert!(ast.function("double_it").is_some());
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Ast, ExprId, ExprKind, Function, FunctionSig, Item, StmtId, StmtKind, TypeRef};
pub use lexer::{lex, LexError};
pub use parser::{parse, ParseError};
pub use pretty::{expr_to_string, stmt_to_source, stmt_to_string, unit_to_source};
pub use span::{LineCol, LineMap, Span};
