//! Token definitions for the Pallas C subset.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Identifier or keyword candidate (`foo`, `page_alloc`).
    Ident(String),
    /// Integer literal, already decoded (`42`, `0x1f`, `'c'`).
    Int(i64),
    /// String literal with quotes stripped and escapes decoded.
    Str(String),
    /// A reserved keyword (`if`, `while`, `struct`, ...).
    Keyword(Keyword),
    /// A punctuation or operator token.
    Punct(Punct),
    /// A `/* @pallas ... */` pragma comment body (without delimiters).
    Pragma(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Pragma(_) => write!(f, "pragma comment"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Reserved keywords of the C subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    If,
    Else,
    While,
    Do,
    For,
    Switch,
    Case,
    Default,
    Return,
    Break,
    Continue,
    Goto,
    Struct,
    Union,
    Enum,
    Typedef,
    Sizeof,
    Static,
    Extern,
    Const,
    Inline,
    Void,
    Int,
    Long,
    Short,
    Char,
    Unsigned,
    Signed,
    Bool,
    Float,
    Double,
    Volatile,
}

impl Keyword {
    /// Looks up a keyword by its source spelling.
    ///
    /// Named `from_str` deliberately (it is infallible-by-`Option`, so
    /// the `FromStr` trait with its error type would be noise).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "if" => If,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "for" => For,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "goto" => Goto,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "typedef" => Typedef,
            "sizeof" => Sizeof,
            "static" => Static,
            "extern" => Extern,
            "const" => Const,
            "inline" | "__inline" | "__always_inline" => Inline,
            "void" => Void,
            "int" => Int,
            "long" => Long,
            "short" => Short,
            "char" => Char,
            "unsigned" => Unsigned,
            "signed" => Signed,
            "bool" | "_Bool" => Bool,
            "float" => Float,
            "double" => Double,
            "volatile" => Volatile,
            _ => return None,
        })
    }

    /// The canonical source spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            If => "if",
            Else => "else",
            While => "while",
            Do => "do",
            For => "for",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Return => "return",
            Break => "break",
            Continue => "continue",
            Goto => "goto",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Typedef => "typedef",
            Sizeof => "sizeof",
            Static => "static",
            Extern => "extern",
            Const => "const",
            Inline => "inline",
            Void => "void",
            Int => "int",
            Long => "long",
            Short => "short",
            Char => "char",
            Unsigned => "unsigned",
            Signed => "signed",
            Bool => "bool",
            Float => "float",
            Double => "double",
            Volatile => "volatile",
        }
    }

    /// Whether this keyword can begin a type name.
    pub fn starts_type(self) -> bool {
        use Keyword::*;
        matches!(
            self,
            Struct
                | Union
                | Enum
                | Void
                | Int
                | Long
                | Short
                | Char
                | Unsigned
                | Signed
                | Bool
                | Float
                | Double
                | Const
                | Volatile
                | Static
                | Extern
                | Inline
                | Typedef
        )
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Colon,
    Question,
    Ellipsis,
    // Assignment
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    // Arithmetic / bitwise
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    // Logical / comparison
    Not,
    AndAnd,
    OrOr,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    // Inc/dec
    Inc,
    Dec,
}

impl Punct {
    /// The canonical source spelling.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Colon => ":",
            Question => "?",
            Ellipsis => "...",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
            Not => "!",
            AndAnd => "&&",
            OrOr => "||",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Inc => "++",
            Dec => "--",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A lexed token: kind plus source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: Punct) -> bool {
        self.kind == TokenKind::Punct(p)
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        self.kind == TokenKind::Keyword(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for s in ["if", "while", "struct", "return", "unsigned", "goto"] {
            let k = Keyword::from_str(s).unwrap();
            assert_eq!(k.as_str(), s);
        }
        assert!(Keyword::from_str("frobnicate").is_none());
    }

    #[test]
    fn inline_aliases() {
        assert_eq!(Keyword::from_str("__always_inline"), Some(Keyword::Inline));
        assert_eq!(Keyword::from_str("_Bool"), Some(Keyword::Bool));
    }

    #[test]
    fn type_starters() {
        assert!(Keyword::Struct.starts_type());
        assert!(Keyword::Unsigned.starts_type());
        assert!(!Keyword::If.starts_type());
        assert!(!Keyword::Return.starts_type());
    }

    #[test]
    fn token_predicates() {
        let t = Token::new(TokenKind::Punct(Punct::Arrow), Span::new(0, 2));
        assert!(t.is_punct(Punct::Arrow));
        assert!(!t.is_punct(Punct::Dot));
        assert!(!t.is_keyword(Keyword::If));
    }
}
