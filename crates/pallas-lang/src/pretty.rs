//! Rendering AST nodes back to C-like source text.
//!
//! Used by diagnostics ("the condition `map->len == 1` ..."), by the
//! symbolic layer for Table 5-style listings, and by the path diff tool.

use crate::ast::{Ast, ExprId, ExprKind, StmtId, StmtKind, UnOp};

/// Renders an expression as compact C-like text.
pub fn expr_to_string(ast: &Ast, id: ExprId) -> String {
    let mut out = String::new();
    write_expr(ast, id, &mut out);
    out
}

fn write_expr(ast: &Ast, id: ExprId, out: &mut String) {
    match &ast.expr(id).kind {
        ExprKind::Int(v) => out.push_str(&v.to_string()),
        ExprKind::Str(s) => {
            out.push('"');
            out.push_str(&s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"));
            out.push('"');
        }
        ExprKind::Ident(n) => out.push_str(n),
        ExprKind::Unary(op, e) => match op {
            UnOp::PostInc => {
                write_expr(ast, *e, out);
                out.push_str("++");
            }
            UnOp::PostDec => {
                write_expr(ast, *e, out);
                out.push_str("--");
            }
            _ => {
                out.push_str(op.as_str());
                write_maybe_paren(ast, *e, out);
            }
        },
        ExprKind::Binary(op, a, b) => {
            write_maybe_paren(ast, *a, out);
            out.push(' ');
            out.push_str(op.as_str());
            out.push(' ');
            write_maybe_paren(ast, *b, out);
        }
        ExprKind::Assign(op, a, b) => {
            write_expr(ast, *a, out);
            out.push(' ');
            out.push_str(op.as_str());
            out.push(' ');
            write_expr(ast, *b, out);
        }
        ExprKind::Ternary(c, t, e) => {
            write_maybe_paren(ast, *c, out);
            out.push_str(" ? ");
            write_expr(ast, *t, out);
            out.push_str(" : ");
            write_expr(ast, *e, out);
        }
        ExprKind::Call { callee, args } => {
            write_expr(ast, *callee, out);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(ast, *a, out);
            }
            out.push(')');
        }
        ExprKind::Member { base, field, arrow } => {
            write_maybe_paren(ast, *base, out);
            out.push_str(if *arrow { "->" } else { "." });
            out.push_str(field);
        }
        ExprKind::Index(b, i) => {
            write_maybe_paren(ast, *b, out);
            out.push('[');
            write_expr(ast, *i, out);
            out.push(']');
        }
        ExprKind::Cast(ty, e) => {
            out.push('(');
            out.push_str(&ty.to_string());
            out.push(')');
            write_maybe_paren(ast, *e, out);
        }
        ExprKind::SizeofType(ty) => {
            out.push_str("sizeof(");
            out.push_str(&ty.to_string());
            out.push(')');
        }
        ExprKind::SizeofExpr(e) => {
            out.push_str("sizeof ");
            write_maybe_paren(ast, *e, out);
        }
        ExprKind::Comma(a, b) => {
            write_expr(ast, *a, out);
            out.push_str(", ");
            write_expr(ast, *b, out);
        }
    }
}

/// Parenthesizes compound sub-expressions for readability.
fn write_maybe_paren(ast: &Ast, id: ExprId, out: &mut String) {
    let needs = matches!(
        ast.expr(id).kind,
        ExprKind::Binary(..)
            | ExprKind::Assign(..)
            | ExprKind::Ternary(..)
            | ExprKind::Comma(..)
    );
    if needs {
        out.push('(');
        write_expr(ast, id, out);
        out.push(')');
    } else {
        write_expr(ast, id, out);
    }
}

/// Renders a statement as a single summary line (bodies elided).
///
/// Intended for diagnostics and CFG dumps, not for round-tripping.
pub fn stmt_to_string(ast: &Ast, id: StmtId) -> String {
    match &ast.stmt(id).kind {
        StmtKind::Decl { ty, name, init } => match init {
            Some(e) => format!("{ty} {name} = {};", expr_to_string(ast, *e)),
            None => format!("{ty} {name};"),
        },
        StmtKind::Expr(e) => format!("{};", expr_to_string(ast, *e)),
        StmtKind::If { cond, .. } => format!("if ({}) ...", expr_to_string(ast, *cond)),
        StmtKind::While { cond, .. } => format!("while ({}) ...", expr_to_string(ast, *cond)),
        StmtKind::DoWhile { cond, .. } => format!("do ... while ({});", expr_to_string(ast, *cond)),
        StmtKind::For { .. } => "for (...) ...".to_string(),
        StmtKind::Switch { scrutinee, .. } => {
            format!("switch ({}) ...", expr_to_string(ast, *scrutinee))
        }
        StmtKind::Case(e) => format!("case {}:", expr_to_string(ast, *e)),
        StmtKind::Default => "default:".to_string(),
        StmtKind::Return(Some(e)) => format!("return {};", expr_to_string(ast, *e)),
        StmtKind::Return(None) => "return;".to_string(),
        StmtKind::Break => "break;".to_string(),
        StmtKind::Continue => "continue;".to_string(),
        StmtKind::Goto(l) => format!("goto {l};"),
        StmtKind::Label(l) => format!("{l}:"),
        StmtKind::Block(stmts) => format!("{{ {} statements }}", stmts.len()),
        StmtKind::Empty => ";".to_string(),
        StmtKind::Pragma(p) => format!("/* @pallas {p} */"),
    }
}


/// Renders a full statement tree with indentation (round-trippable,
/// unlike the one-line summaries of [`stmt_to_string`]).
pub fn stmt_to_source(ast: &Ast, id: StmtId, indent: usize) -> String {
    let mut out = String::new();
    write_stmt_source(ast, id, indent, &mut out);
    out
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_stmt_source(ast: &Ast, id: StmtId, indent: usize, out: &mut String) {
    use crate::ast::StmtKind;
    match &ast.stmt(id).kind {
        StmtKind::Block(stmts) => {
            pad(out, indent);
            out.push_str("{\n");
            for &s in stmts {
                write_stmt_source(ast, s, indent + 1, out);
            }
            pad(out, indent);
            out.push_str("}\n");
        }
        StmtKind::Decl { ty, name, init } => {
            pad(out, indent);
            match init {
                Some(e) => out.push_str(&format!("{ty} {name} = {};\n", expr_to_string(ast, *e))),
                None => out.push_str(&format!("{ty} {name};\n")),
            }
        }
        StmtKind::Expr(e) => {
            pad(out, indent);
            out.push_str(&format!("{};\n", expr_to_string(ast, *e)));
        }
        StmtKind::If { cond, then_br, else_br } => {
            pad(out, indent);
            out.push_str(&format!("if ({})\n", expr_to_string(ast, *cond)));
            write_stmt_source(ast, *then_br, indent + 1, out);
            if let Some(e) = else_br {
                pad(out, indent);
                out.push_str("else\n");
                write_stmt_source(ast, *e, indent + 1, out);
            }
        }
        StmtKind::While { cond, body } => {
            pad(out, indent);
            out.push_str(&format!("while ({})\n", expr_to_string(ast, *cond)));
            write_stmt_source(ast, *body, indent + 1, out);
        }
        StmtKind::DoWhile { body, cond } => {
            pad(out, indent);
            out.push_str("do\n");
            write_stmt_source(ast, *body, indent + 1, out);
            pad(out, indent);
            out.push_str(&format!("while ({});\n", expr_to_string(ast, *cond)));
        }
        StmtKind::For { init, cond, step, body } => {
            pad(out, indent);
            let init_text = match init {
                Some(s) => {
                    let mut t = stmt_to_source(ast, *s, 0);
                    t.truncate(t.trim_end_matches(['\n', ';'].as_ref()).len());
                    t
                }
                None => String::new(),
            };
            let cond_text = cond.map(|c| expr_to_string(ast, c)).unwrap_or_default();
            let step_text = step.map(|s| expr_to_string(ast, s)).unwrap_or_default();
            out.push_str(&format!("for ({init_text}; {cond_text}; {step_text})\n"));
            write_stmt_source(ast, *body, indent + 1, out);
        }
        StmtKind::Switch { scrutinee, body } => {
            pad(out, indent);
            out.push_str(&format!("switch ({})\n", expr_to_string(ast, *scrutinee)));
            write_stmt_source(ast, *body, indent + 1, out);
        }
        StmtKind::Case(e) => {
            pad(out, indent);
            out.push_str(&format!("case {}:\n", expr_to_string(ast, *e)));
        }
        StmtKind::Default => {
            pad(out, indent);
            out.push_str("default:\n");
        }
        StmtKind::Return(Some(e)) => {
            pad(out, indent);
            out.push_str(&format!("return {};\n", expr_to_string(ast, *e)));
        }
        StmtKind::Return(None) => {
            pad(out, indent);
            out.push_str("return;\n");
        }
        StmtKind::Break => {
            pad(out, indent);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            pad(out, indent);
            out.push_str("continue;\n");
        }
        StmtKind::Goto(l) => {
            pad(out, indent);
            out.push_str(&format!("goto {l};\n"));
        }
        StmtKind::Label(l) => {
            // Labels sit at column 0 in kernel style.
            out.push_str(&format!("{l}:\n"));
        }
        StmtKind::Empty => {
            pad(out, indent);
            out.push_str(";\n");
        }
        StmtKind::Pragma(p) => {
            pad(out, indent);
            out.push_str(&format!("/* @pallas {p} */\n"));
        }
    }
}

/// Renders a whole translation unit back to compilable source.
///
/// Spans are not preserved, but parsing the output yields a unit with
/// the same items, signatures, and statement structure — the
/// round-trip property the test suite checks.
pub fn unit_to_source(ast: &Ast) -> String {
    use crate::ast::Item;
    let mut out = String::new();
    for item in &ast.items {
        match item {
            Item::Typedef { ty, name } => out.push_str(&format!("typedef {ty} {name};\n")),
            Item::Struct(def) => {
                let kw = if def.is_union { "union" } else { "struct" };
                out.push_str(&format!("{kw} {} {{\n", def.name));
                for f in &def.fields {
                    out.push_str(&format!("  {} {};\n", f.ty, f.name));
                }
                out.push_str("};\n");
            }
            Item::Enum(def) => {
                match &def.name {
                    Some(n) => out.push_str(&format!("enum {n} {{ ")),
                    None => out.push_str("enum { "),
                }
                for (i, (n, v)) in def.variants.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{n} = {v}"));
                }
                out.push_str(" };\n");
            }
            Item::Global { ty, name, init, .. } => match init {
                Some(e) => out.push_str(&format!("{ty} {name} = {};\n", expr_to_string(ast, *e))),
                None => out.push_str(&format!("{ty} {name};\n")),
            },
            Item::Proto(sig) => out.push_str(&format!("{sig};\n")),
            Item::Function(f) => {
                out.push_str(&format!("{}\n", f.sig));
                out.push_str(&stmt_to_source(ast, f.body, 0));
            }
            Item::Pragma(body, _) => out.push_str(&format!("/* @pallas {body} */\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn render_return(src: &str) -> String {
        let ast = parse(src).unwrap();
        let f = ast.functions().next().unwrap();
        let body = match &ast.stmt(f.body).kind {
            StmtKind::Block(stmts) => stmts.clone(),
            _ => panic!("expected block"),
        };
        let last = *body.last().unwrap();
        stmt_to_string(&ast, last)
    }

    #[test]
    fn render_arithmetic() {
        assert_eq!(
            render_return("int f(int a, int b) { return a + b * 2; }"),
            "return a + (b * 2);"
        );
    }

    #[test]
    fn render_member_and_call() {
        assert_eq!(
            render_return("int f(struct a *p) { return g(p->x, p->y[1]); }"),
            "return g(p->x, p->y[1]);"
        );
    }

    #[test]
    fn render_cast_and_mask() {
        assert_eq!(
            render_return(
                "typedef unsigned int gfp_t;\nint f(gfp_t m) { return (int)(m & 16); }"
            ),
            "return (int)(m & 16);"
        );
    }

    #[test]
    fn render_ternary_and_unary() {
        assert_eq!(
            render_return("int f(int a) { return !a ? -1 : a++; }"),
            "return !a ? -1 : a++;"
        );
    }

    #[test]
    fn render_string_literal_escapes() {
        assert_eq!(
            render_return(r#"int f(void) { return puts("a\"b"); }"#),
            r#"return puts("a\"b");"#
        );
    }
}
