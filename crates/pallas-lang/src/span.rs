//! Source positions, spans, and line maps.
//!
//! Every token and AST node carries a [`Span`] — a byte range into the
//! original source text. [`LineMap`] converts byte offsets back into
//! 1-based line/column pairs so diagnostics and path records can report
//! the `L#` line numbers that appear in the paper's Table 5.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for synthesized nodes.
    pub fn point(pos: u32) -> Self {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Extracts the spanned text from `src`.
    ///
    /// Returns an empty string if the span is out of bounds, rather than
    /// panicking, so diagnostics never abort rendering.
    pub fn text(self, src: &str) -> &str {
        src.get(self.start as usize..self.end as usize).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Precomputed newline offsets for O(log n) offset → line/column lookup.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of each line; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl LineMap {
    /// Builds a line map for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts, len: src.len() as u32 }
    }

    /// Converts a byte offset to a 1-based line/column.
    ///
    /// Offsets past the end of the buffer clamp to the final position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The 1-based line number containing `offset`.
    pub fn line(&self, offset: u32) -> u32 {
        self.line_col(offset).line
    }

    /// Total number of lines (at least 1, even for an empty buffer).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_text() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
        let src = "abcdefghij";
        assert_eq!(a.text(src), "cde");
        assert_eq!(Span::new(8, 20).text(src), "");
    }

    #[test]
    fn span_point_is_empty() {
        let p = Span::point(7);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn line_map_basic() {
        let src = "ab\ncd\n\nxyz";
        let lm = LineMap::new(src);
        assert_eq!(lm.line_count(), 4);
        assert_eq!(lm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(lm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(lm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(lm.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(lm.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(lm.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn line_map_clamps_past_end() {
        let lm = LineMap::new("one\ntwo");
        assert_eq!(lm.line_col(1000).line, 2);
    }

    #[test]
    fn line_map_empty_source() {
        let lm = LineMap::new("");
        assert_eq!(lm.line_count(), 1);
        assert_eq!(lm.line_col(0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn line_map_offset_at_newline_belongs_to_current_line() {
        let lm = LineMap::new("ab\ncd");
        // offset 2 is the '\n' itself — still line 1.
        assert_eq!(lm.line_col(2), LineCol { line: 1, col: 3 });
    }
}
