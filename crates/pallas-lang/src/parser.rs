//! Recursive-descent parser for the Pallas C subset.
//!
//! The subset covers every construct appearing in the fast paths the
//! paper studies: functions, structs/unions/enums, typedefs, globals,
//! pointers, member access (`.`/`->`), the full C expression grammar
//! (including casts, `sizeof`, ternaries, and compound assignment), and
//! all structured plus unstructured (`goto`) control flow.
//!
//! Deliberate omissions (the corpus avoids them): brace initializer
//! lists, bitfields, function pointers in declarators, and K&R-style
//! definitions. Hitting one is a parse error, never a silent mis-parse.

use crate::ast::{
    AssignOp, Ast, BinOp, EnumDef, ExprId, ExprKind, Field, Function, FunctionSig, Item, Param,
    StmtId, StmtKind, StructDef, TypeRef, UnOp,
};
use crate::lexer::{lex, LexError};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::collections::HashSet;
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, span: e.span }
    }
}

/// Parses a complete translation unit.
///
/// # Errors
///
/// Returns the first lex or parse error encountered; there is no error
/// recovery (a checker must never run over a half-parsed unit).
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).run()
}

/// Maximum statement/expression nesting depth. The parser is a
/// recursive descent, so pathological inputs like 20k nested
/// parentheses would otherwise overflow the stack — an abort that
/// `catch_unwind` cannot contain (found by probing the fuzzer's
/// degenerate-input corner). Real kernel code nests a few dozen
/// levels at most.
const MAX_NESTING: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ast: Ast,
    /// Names introduced by `typedef`, used for cast/decl disambiguation.
    typedefs: HashSet<String>,
    /// Current statement + expression nesting depth, bounded by
    /// [`MAX_NESTING`].
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, ast: Ast::new(), typedefs: HashSet::new(), depth: 0 }
    }

    fn enter_nested(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.err(format!("nesting deeper than {MAX_NESTING} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { message: msg.into(), span: self.peek().span }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span, ParseError> {
        if self.peek().is_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.peek().kind)))
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().is_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ----- type recognition ---------------------------------------------

    /// Whether the token at lookahead `n` can begin a type.
    fn is_type_start_at(&self, n: usize) -> bool {
        match &self.peek_at(n).kind {
            TokenKind::Keyword(k) => k.starts_type(),
            TokenKind::Ident(name) => self.is_type_name(name),
            _ => false,
        }
    }

    fn is_type_name(&self, name: &str) -> bool {
        self.typedefs.contains(name)
            || name.ends_with("_t")
            || matches!(name, "u8" | "u16" | "u32" | "u64" | "s8" | "s16" | "s32" | "s64")
    }

    /// Parses declaration specifiers into a base [`TypeRef`] (no pointers).
    fn parse_base_type(&mut self) -> Result<TypeRef, ParseError> {
        // Skip storage-class and qualifier keywords.
        while let TokenKind::Keyword(
            Keyword::Static | Keyword::Extern | Keyword::Const | Keyword::Inline | Keyword::Volatile,
        ) = &self.peek().kind
        {
            self.bump();
        }
        match self.peek().kind.clone() {
            TokenKind::Keyword(k @ (Keyword::Struct | Keyword::Union | Keyword::Enum)) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Ok(TypeRef::named(format!("{} {}", k.as_str(), name)))
            }
            TokenKind::Keyword(k) if k.starts_type() => {
                // Collect a run of builtin type keywords: `unsigned long int`.
                let mut words = Vec::new();
                while let TokenKind::Keyword(kw) = self.peek().kind {
                    if matches!(
                        kw,
                        Keyword::Void
                            | Keyword::Int
                            | Keyword::Long
                            | Keyword::Short
                            | Keyword::Char
                            | Keyword::Unsigned
                            | Keyword::Signed
                            | Keyword::Bool
                            | Keyword::Float
                            | Keyword::Double
                    ) {
                        words.push(kw.as_str());
                        self.bump();
                    } else if matches!(kw, Keyword::Const | Keyword::Volatile) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if words.is_empty() {
                    return Err(self.err("expected type name"));
                }
                Ok(TypeRef::named(words.join(" ")))
            }
            TokenKind::Ident(name) if self.is_type_name(&name) => {
                self.bump();
                Ok(TypeRef::named(name))
            }
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }

    /// Parses `*`s and qualifiers following a base type.
    fn parse_pointers(&mut self, mut ty: TypeRef) -> TypeRef {
        loop {
            if self.eat_punct(Punct::Star) {
                ty = ty.pointer_to();
                // `* const`, `* volatile`
                while matches!(
                    self.peek().kind,
                    TokenKind::Keyword(Keyword::Const | Keyword::Volatile)
                ) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        ty
    }

    // ----- items ----------------------------------------------------------

    fn run(mut self) -> Result<Ast, ParseError> {
        while !self.at_eof() {
            self.parse_item()?;
        }
        Ok(self.ast)
    }

    fn parse_item(&mut self) -> Result<(), ParseError> {
        // Pragmas can appear anywhere at top level.
        if let TokenKind::Pragma(body) = self.peek().kind.clone() {
            let span = self.bump().span;
            self.ast.items.push(Item::Pragma(body, span));
            return Ok(());
        }
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        if self.peek().is_keyword(Keyword::Typedef) {
            return self.parse_typedef();
        }
        // struct/union/enum definitions (vs. use as a declaration type).
        if let TokenKind::Keyword(k @ (Keyword::Struct | Keyword::Union)) = self.peek().kind {
            if matches!(self.peek_at(1).kind, TokenKind::Ident(_))
                && self.peek_at(2).is_punct(Punct::LBrace)
            {
                return self.parse_struct(k == Keyword::Union);
            }
            if matches!(self.peek_at(1).kind, TokenKind::Ident(_))
                && self.peek_at(2).is_punct(Punct::Semi)
            {
                // Forward declaration: ignore.
                self.bump();
                self.bump();
                self.bump();
                return Ok(());
            }
        }
        if self.peek().is_keyword(Keyword::Enum)
            && (self.peek_at(1).is_punct(Punct::LBrace)
                || (matches!(self.peek_at(1).kind, TokenKind::Ident(_))
                    && self.peek_at(2).is_punct(Punct::LBrace)))
        {
            return self.parse_enum();
        }
        // Otherwise: type declarator — function def, prototype, or global.
        let base = self.parse_base_type()?;
        let ty = self.parse_pointers(base);
        let (name, name_span) = self.expect_ident()?;
        if self.peek().is_punct(Punct::LParen) {
            self.parse_function_or_proto(ty, name, name_span)
        } else {
            self.parse_global(ty, name, name_span)
        }
    }

    fn parse_typedef(&mut self) -> Result<(), ParseError> {
        self.bump(); // typedef
        let base = self.parse_base_type()?;
        let ty = self.parse_pointers(base);
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::Semi)?;
        self.typedefs.insert(name.clone());
        self.ast.items.push(Item::Typedef { ty, name });
        Ok(())
    }

    fn parse_struct(&mut self, is_union: bool) -> Result<(), ParseError> {
        let start = self.bump().span; // struct/union
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated struct body"));
            }
            // Skip pragmas inside struct bodies.
            if matches!(self.peek().kind, TokenKind::Pragma(_)) {
                self.bump();
                continue;
            }
            let base = self.parse_base_type()?;
            loop {
                let fty = self.parse_pointers(base.clone());
                let (fname, _) = self.expect_ident()?;
                let fty = self.parse_array_suffix(fty)?;
                fields.push(Field { ty: fty, name: fname });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        let end = self.expect_punct(Punct::RBrace)?;
        self.eat_punct(Punct::Semi);
        self.ast.items.push(Item::Struct(StructDef {
            name,
            fields,
            is_union,
            span: start.merge(end),
        }));
        Ok(())
    }

    fn parse_enum(&mut self) -> Result<(), ParseError> {
        let start = self.bump().span; // enum
        let name = match &self.peek().kind {
            TokenKind::Ident(n) => {
                let n = n.clone();
                self.bump();
                Some(n)
            }
            _ => None,
        };
        self.expect_punct(Punct::LBrace)?;
        let mut variants = Vec::new();
        let mut next_value = 0i64;
        while !self.peek().is_punct(Punct::RBrace) {
            let (vname, _) = self.expect_ident()?;
            if self.eat_punct(Punct::Assign) {
                next_value = self.parse_const_int()?;
            }
            variants.push((vname, next_value));
            next_value += 1;
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        self.ast.items.push(Item::Enum(EnumDef { name, variants, span: start.merge(end) }));
        Ok(())
    }

    /// Parses a constant integer expression (literals, unary minus, and
    /// shifts of literals — enough for enum initializers like `1 << 4`).
    fn parse_const_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct(Punct::Minus);
        let base = match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                v
            }
            _ => return Err(self.err("expected constant integer")),
        };
        let mut value = if neg { -base } else { base };
        if self.eat_punct(Punct::Shl) {
            let rhs = self.parse_const_int()?;
            value <<= rhs;
        }
        Ok(value)
    }

    fn parse_function_or_proto(
        &mut self,
        ret: TypeRef,
        name: String,
        name_span: Span,
    ) -> Result<(), ParseError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        let mut variadic = false;
        if !self.peek().is_punct(Punct::RParen) {
            loop {
                if self.eat_punct(Punct::Ellipsis) {
                    variadic = true;
                    break;
                }
                if self.peek().is_keyword(Keyword::Void)
                    && self.peek_at(1).is_punct(Punct::RParen)
                {
                    self.bump();
                    break;
                }
                let base = self.parse_base_type()?;
                let pty = self.parse_pointers(base);
                let pname = match &self.peek().kind {
                    TokenKind::Ident(n) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                let pty = self.parse_array_suffix(pty)?;
                params.push(Param { ty: pty, name: pname });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        let sig = FunctionSig { name, ret, params, variadic };
        if self.eat_punct(Punct::Semi) {
            self.ast.items.push(Item::Proto(sig));
            return Ok(());
        }
        let body = self.parse_block()?;
        let span = name_span.merge(self.ast.stmt(body).span);
        self.ast.items.push(Item::Function(Function { sig, body, span }));
        Ok(())
    }

    fn parse_global(
        &mut self,
        ty: TypeRef,
        name: String,
        name_span: Span,
    ) -> Result<(), ParseError> {
        let ty = self.parse_array_suffix(ty)?;
        let init =
            if self.eat_punct(Punct::Assign) { Some(self.parse_assign_expr()?) } else { None };
        self.ast.items.push(Item::Global { ty, name, init, span: name_span });
        // Additional declarators: `int a = 1, b = 2;`
        while self.eat_punct(Punct::Comma) {
            let (n2, s2) = self.expect_ident()?;
            let init2 =
                if self.eat_punct(Punct::Assign) { Some(self.parse_assign_expr()?) } else { None };
            self.ast.items.push(Item::Global {
                ty: TypeRef::named("int"),
                name: n2,
                init: init2,
                span: s2,
            });
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    /// Array dimensions decay to one extra pointer level.
    fn parse_array_suffix(&mut self, mut ty: TypeRef) -> Result<TypeRef, ParseError> {
        while self.eat_punct(Punct::LBracket) {
            if !self.peek().is_punct(Punct::RBracket) {
                self.parse_assign_expr()?;
            }
            self.expect_punct(Punct::RBracket)?;
            ty = ty.pointer_to();
        }
        Ok(ty)
    }

    // ----- statements -----------------------------------------------------

    fn parse_block(&mut self) -> Result<StmtId, ParseError> {
        let start = self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        let end = self.expect_punct(Punct::RBrace)?;
        Ok(self.ast.alloc_stmt(StmtKind::Block(stmts), start.merge(end)))
    }

    fn parse_stmt(&mut self) -> Result<StmtId, ParseError> {
        self.enter_nested()?;
        let r = self.parse_stmt_inner();
        self.depth -= 1;
        r
    }

    fn parse_stmt_inner(&mut self) -> Result<StmtId, ParseError> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Pragma(body) => {
                let body = body.clone();
                let span = self.bump().span;
                Ok(self.ast.alloc_stmt(StmtKind::Pragma(body), span))
            }
            TokenKind::Punct(Punct::LBrace) => self.parse_block(),
            TokenKind::Punct(Punct::Semi) => {
                let span = self.bump().span;
                Ok(self.ast.alloc_stmt(StmtKind::Empty, span))
            }
            TokenKind::Keyword(Keyword::If) => self.parse_if(),
            TokenKind::Keyword(Keyword::While) => self.parse_while(),
            TokenKind::Keyword(Keyword::Do) => self.parse_do_while(),
            TokenKind::Keyword(Keyword::For) => self.parse_for(),
            TokenKind::Keyword(Keyword::Switch) => self.parse_switch(),
            TokenKind::Keyword(Keyword::Case) => {
                let start = self.bump().span;
                let value = self.parse_ternary_expr()?;
                let end = self.expect_punct(Punct::Colon)?;
                Ok(self.ast.alloc_stmt(StmtKind::Case(value), start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Default) => {
                let start = self.bump().span;
                let end = self.expect_punct(Punct::Colon)?;
                Ok(self.ast.alloc_stmt(StmtKind::Default, start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Return) => {
                let start = self.bump().span;
                let value = if self.peek().is_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                let end = self.expect_punct(Punct::Semi)?;
                Ok(self.ast.alloc_stmt(StmtKind::Return(value), start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Break) => {
                let start = self.bump().span;
                let end = self.expect_punct(Punct::Semi)?;
                Ok(self.ast.alloc_stmt(StmtKind::Break, start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                let start = self.bump().span;
                let end = self.expect_punct(Punct::Semi)?;
                Ok(self.ast.alloc_stmt(StmtKind::Continue, start.merge(end)))
            }
            TokenKind::Keyword(Keyword::Goto) => {
                let start = self.bump().span;
                let (label, _) = self.expect_ident()?;
                let end = self.expect_punct(Punct::Semi)?;
                Ok(self.ast.alloc_stmt(StmtKind::Goto(label), start.merge(end)))
            }
            // Label: `ident :` (not part of a ternary at statement start).
            TokenKind::Ident(name)
                if self.peek_at(1).is_punct(Punct::Colon) =>
            {
                let name = name.clone();
                let start = self.bump().span;
                let end = self.expect_punct(Punct::Colon)?;
                Ok(self.ast.alloc_stmt(StmtKind::Label(name), start.merge(end)))
            }
            _ if self.starts_decl() => self.parse_decl_stmt(),
            _ => {
                let expr = self.parse_expr()?;
                let span = self.ast.expr(expr).span;
                let end = self.expect_punct(Punct::Semi)?;
                Ok(self.ast.alloc_stmt(StmtKind::Expr(expr), span.merge(end)))
            }
        }
    }

    /// Whether the current position starts a local declaration.
    fn starts_decl(&self) -> bool {
        match &self.peek().kind {
            TokenKind::Keyword(k) => k.starts_type(),
            TokenKind::Ident(name) if self.is_type_name(name) => {
                // `gfp_t x` / `gfp_t *x` — but `size_t = 3;` would be an
                // (ill-formed) expression; require a declarator to follow.
                matches!(self.peek_at(1).kind, TokenKind::Ident(_))
                    || self.peek_at(1).is_punct(Punct::Star)
            }
            _ => false,
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<StmtId, ParseError> {
        let start = self.peek().span;
        let base = self.parse_base_type()?;
        let mut decls = Vec::new();
        loop {
            let ty = self.parse_pointers(base.clone());
            let (name, _) = self.expect_ident()?;
            let ty = self.parse_array_suffix(ty)?;
            let init =
                if self.eat_punct(Punct::Assign) { Some(self.parse_assign_expr()?) } else { None };
            decls.push((ty, name, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::Semi)?;
        let span = start.merge(end);
        if decls.len() == 1 {
            let (ty, name, init) = decls.pop().expect("one decl");
            Ok(self.ast.alloc_stmt(StmtKind::Decl { ty, name, init }, span))
        } else {
            let stmts = decls
                .into_iter()
                .map(|(ty, name, init)| self.ast.alloc_stmt(StmtKind::Decl { ty, name, init }, span))
                .collect();
            Ok(self.ast.alloc_stmt(StmtKind::Block(stmts), span))
        }
    }

    fn parse_if(&mut self) -> Result<StmtId, ParseError> {
        let start = self.bump().span; // if
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_br = self.parse_stmt()?;
        let mut span = start.merge(self.ast.stmt(then_br).span);
        let else_br = if self.eat_keyword(Keyword::Else) {
            let e = self.parse_stmt()?;
            span = span.merge(self.ast.stmt(e).span);
            Some(e)
        } else {
            None
        };
        Ok(self.ast.alloc_stmt(StmtKind::If { cond, then_br, else_br }, span))
    }

    fn parse_while(&mut self) -> Result<StmtId, ParseError> {
        let start = self.bump().span; // while
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt()?;
        let span = start.merge(self.ast.stmt(body).span);
        Ok(self.ast.alloc_stmt(StmtKind::While { cond, body }, span))
    }

    fn parse_do_while(&mut self) -> Result<StmtId, ParseError> {
        let start = self.bump().span; // do
        let body = self.parse_stmt()?;
        if !self.eat_keyword(Keyword::While) {
            return Err(self.err("expected `while` after do-body"));
        }
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(self.ast.alloc_stmt(StmtKind::DoWhile { body, cond }, start.merge(end)))
    }

    fn parse_for(&mut self) -> Result<StmtId, ParseError> {
        let start = self.bump().span; // for
        self.expect_punct(Punct::LParen)?;
        let init = if self.peek().is_punct(Punct::Semi) {
            self.bump();
            None
        } else if self.starts_decl() {
            Some(self.parse_decl_stmt()?)
        } else {
            let e = self.parse_expr()?;
            let span = self.ast.expr(e).span;
            self.expect_punct(Punct::Semi)?;
            Some(self.ast.alloc_stmt(StmtKind::Expr(e), span))
        };
        let cond =
            if self.peek().is_punct(Punct::Semi) { None } else { Some(self.parse_expr()?) };
        self.expect_punct(Punct::Semi)?;
        let step =
            if self.peek().is_punct(Punct::RParen) { None } else { Some(self.parse_expr()?) };
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt()?;
        let span = start.merge(self.ast.stmt(body).span);
        Ok(self.ast.alloc_stmt(StmtKind::For { init, cond, step, body }, span))
    }

    fn parse_switch(&mut self) -> Result<StmtId, ParseError> {
        let start = self.bump().span; // switch
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_block()?;
        let span = start.merge(self.ast.stmt(body).span);
        Ok(self.ast.alloc_stmt(StmtKind::Switch { scrutinee, body }, span))
    }

    // ----- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> Result<ExprId, ParseError> {
        let first = self.parse_assign_expr()?;
        if self.peek().is_punct(Punct::Comma) {
            // Comma expression — only valid where commas are not separators;
            // callers that need separator commas use parse_assign_expr.
            let mut lhs = first;
            while self.eat_punct(Punct::Comma) {
                let rhs = self.parse_assign_expr()?;
                let span = self.ast.expr(lhs).span.merge(self.ast.expr(rhs).span);
                lhs = self.ast.alloc_expr(ExprKind::Comma(lhs, rhs), span);
            }
            return Ok(lhs);
        }
        Ok(first)
    }

    fn parse_assign_expr(&mut self) -> Result<ExprId, ParseError> {
        self.enter_nested()?;
        let r = self.parse_assign_expr_inner();
        self.depth -= 1;
        r
    }

    fn parse_assign_expr_inner(&mut self) -> Result<ExprId, ParseError> {
        let lhs = self.parse_ternary_expr()?;
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Assign) => AssignOp::Assign,
            TokenKind::Punct(Punct::PlusAssign) => AssignOp::Compound(BinOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => AssignOp::Compound(BinOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => AssignOp::Compound(BinOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => AssignOp::Compound(BinOp::Div),
            TokenKind::Punct(Punct::PercentAssign) => AssignOp::Compound(BinOp::Rem),
            TokenKind::Punct(Punct::AmpAssign) => AssignOp::Compound(BinOp::BitAnd),
            TokenKind::Punct(Punct::PipeAssign) => AssignOp::Compound(BinOp::BitOr),
            TokenKind::Punct(Punct::CaretAssign) => AssignOp::Compound(BinOp::BitXor),
            TokenKind::Punct(Punct::ShlAssign) => AssignOp::Compound(BinOp::Shl),
            TokenKind::Punct(Punct::ShrAssign) => AssignOp::Compound(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign_expr()?; // right-associative
        let span = self.ast.expr(lhs).span.merge(self.ast.expr(rhs).span);
        Ok(self.ast.alloc_expr(ExprKind::Assign(op, lhs, rhs), span))
    }

    fn parse_ternary_expr(&mut self) -> Result<ExprId, ParseError> {
        let cond = self.parse_binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then_e = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_e = self.parse_assign_expr()?;
            let span = self.ast.expr(cond).span.merge(self.ast.expr(else_e).span);
            return Ok(self.ast.alloc_expr(ExprKind::Ternary(cond, then_e, else_e), span));
        }
        Ok(cond)
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary_expr(&mut self, min_prec: u8) -> Result<ExprId, ParseError> {
        let mut lhs = self.parse_unary_expr()?;
        loop {
            let (op, prec) = match self.peek().kind {
                TokenKind::Punct(Punct::OrOr) => (BinOp::Or, 1),
                TokenKind::Punct(Punct::AndAnd) => (BinOp::And, 2),
                TokenKind::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
                TokenKind::Punct(Punct::Caret) => (BinOp::BitXor, 4),
                TokenKind::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
                TokenKind::Punct(Punct::Eq) => (BinOp::Eq, 6),
                TokenKind::Punct(Punct::Ne) => (BinOp::Ne, 6),
                TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
                TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
                TokenKind::Punct(Punct::Le) => (BinOp::Le, 7),
                TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 7),
                TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
                TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
                TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
                TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
                TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
                TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
                TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary_expr(prec + 1)?;
            let span = self.ast.expr(lhs).span.merge(self.ast.expr(rhs).span);
            lhs = self.ast.alloc_expr(ExprKind::Binary(op, lhs, rhs), span);
        }
        Ok(lhs)
    }

    fn parse_unary_expr(&mut self) -> Result<ExprId, ParseError> {
        let tok = self.peek().clone();
        let un = match tok.kind {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Not) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::Addr),
            TokenKind::Punct(Punct::Inc) => Some(UnOp::PreInc),
            TokenKind::Punct(Punct::Dec) => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = un {
            let start = self.bump().span;
            let operand = self.parse_unary_expr()?;
            let span = start.merge(self.ast.expr(operand).span);
            return Ok(self.ast.alloc_expr(ExprKind::Unary(op, operand), span));
        }
        if tok.is_keyword(Keyword::Sizeof) {
            let start = self.bump().span;
            if self.peek().is_punct(Punct::LParen) && self.is_type_start_at(1) {
                self.bump(); // (
                let base = self.parse_base_type()?;
                let ty = self.parse_pointers(base);
                let end = self.expect_punct(Punct::RParen)?;
                return Ok(self.ast.alloc_expr(ExprKind::SizeofType(ty), start.merge(end)));
            }
            let operand = self.parse_unary_expr()?;
            let span = start.merge(self.ast.expr(operand).span);
            return Ok(self.ast.alloc_expr(ExprKind::SizeofExpr(operand), span));
        }
        // Cast: `(` type `)` unary
        if tok.is_punct(Punct::LParen) && self.is_type_start_at(1) && self.looks_like_cast() {
            let start = self.bump().span; // (
            let base = self.parse_base_type()?;
            let ty = self.parse_pointers(base);
            self.expect_punct(Punct::RParen)?;
            let operand = self.parse_unary_expr()?;
            let span = start.merge(self.ast.expr(operand).span);
            return Ok(self.ast.alloc_expr(ExprKind::Cast(ty, operand), span));
        }
        self.parse_postfix_expr()
    }

    /// Disambiguates `(T)x` casts from parenthesized expressions by
    /// scanning ahead for the matching `)`: a cast's parenthesized
    /// content consists only of type-ish tokens.
    fn looks_like_cast(&self) -> bool {
        let mut n = 1;
        loop {
            match &self.peek_at(n).kind {
                TokenKind::Punct(Punct::RParen) => {
                    // Must be followed by something that can begin an operand.
                    return matches!(
                        self.peek_at(n + 1).kind,
                        TokenKind::Ident(_)
                            | TokenKind::Int(_)
                            | TokenKind::Str(_)
                            | TokenKind::Punct(
                                Punct::LParen
                                    | Punct::Star
                                    | Punct::Amp
                                    | Punct::Not
                                    | Punct::Tilde
                                    | Punct::Minus
                                    | Punct::Inc
                                    | Punct::Dec
                            )
                            | TokenKind::Keyword(Keyword::Sizeof)
                    );
                }
                TokenKind::Punct(Punct::Star) | TokenKind::Keyword(_) => n += 1,
                TokenKind::Ident(name) if n == 1 || self.is_type_name(name) => n += 1,
                _ => return false,
            }
            if n > 8 {
                return false;
            }
        }
    }

    fn parse_postfix_expr(&mut self) -> Result<ExprId, ParseError> {
        let mut expr = self.parse_primary_expr()?;
        loop {
            match self.peek().kind {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen)?;
                    let span = self.ast.expr(expr).span.merge(end);
                    expr = self.ast.alloc_expr(ExprKind::Call { callee: expr, args }, span);
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    let span = self.ast.expr(expr).span.merge(end);
                    expr = self.ast.alloc_expr(ExprKind::Index(expr, index), span);
                }
                TokenKind::Punct(p @ (Punct::Dot | Punct::Arrow)) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = self.ast.expr(expr).span.merge(fspan);
                    expr = self.ast.alloc_expr(
                        ExprKind::Member { base: expr, field, arrow: p == Punct::Arrow },
                        span,
                    );
                }
                TokenKind::Punct(Punct::Inc) => {
                    let end = self.bump().span;
                    let span = self.ast.expr(expr).span.merge(end);
                    expr = self.ast.alloc_expr(ExprKind::Unary(UnOp::PostInc, expr), span);
                }
                TokenKind::Punct(Punct::Dec) => {
                    let end = self.bump().span;
                    let span = self.ast.expr(expr).span.merge(end);
                    expr = self.ast.alloc_expr(ExprKind::Unary(UnOp::PostDec, expr), span);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary_expr(&mut self) -> Result<ExprId, ParseError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(v) => {
                let span = self.bump().span;
                Ok(self.ast.alloc_expr(ExprKind::Int(v), span))
            }
            TokenKind::Str(s) => {
                let span = self.bump().span;
                Ok(self.ast.alloc_expr(ExprKind::Str(s), span))
            }
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok(self.ast.alloc_expr(ExprKind::Ident(name), span))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Ast {
        match parse(src) {
            Ok(ast) => ast,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn parse_minimal_function() {
        let ast = parse_ok("int f(void) { return 0; }");
        let f = ast.function("f").unwrap();
        assert_eq!(f.sig.ret, TypeRef::named("int"));
        assert!(f.sig.params.is_empty());
    }

    #[test]
    fn parse_struct_and_fields() {
        let ast = parse_ok(
            "struct page { unsigned long flags; struct page *next; int refs[4]; };",
        );
        let s = ast.struct_def("page").unwrap();
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "flags");
        assert_eq!(s.fields[1].ty, TypeRef::named("struct page").pointer_to());
        assert_eq!(s.fields[2].ty.ptr, 1, "array decays to pointer");
    }

    #[test]
    fn parse_enum_with_values() {
        let ast = parse_ok("enum zone { ZONE_DMA, ZONE_NORMAL = 5, ZONE_HIGH, };");
        assert_eq!(ast.enum_value("ZONE_DMA"), Some(0));
        assert_eq!(ast.enum_value("ZONE_NORMAL"), Some(5));
        assert_eq!(ast.enum_value("ZONE_HIGH"), Some(6));
    }

    #[test]
    fn parse_enum_shift_initializer() {
        let ast = parse_ok("enum f { A = 1 << 4 };");
        assert_eq!(ast.enum_value("A"), Some(16));
    }

    #[test]
    fn parse_typedef_enables_decls_and_casts() {
        let ast = parse_ok(
            "typedef unsigned int gfp_t;\n\
             int f(gfp_t mask) { gfp_t local = (gfp_t)mask; return (int)local; }",
        );
        let f = ast.function("f").unwrap();
        assert_eq!(f.sig.params[0].ty, TypeRef::named("gfp_t"));
    }

    #[test]
    fn parse_member_chains() {
        let ast = parse_ok("int f(struct a *p) { return p->b.c->d; }");
        assert!(ast.function("f").is_some());
    }

    #[test]
    fn parse_control_flow() {
        parse_ok(
            "int f(int x) {\n\
               if (x > 0) { x--; } else x++;\n\
               while (x) x -= 1;\n\
               do { x += 2; } while (x < 10);\n\
               for (int i = 0; i < 4; i++) x += i;\n\
               switch (x) { case 1: return 1; default: break; }\n\
               goto out;\n\
             out:\n\
               return x;\n\
             }",
        );
    }

    #[test]
    fn parse_ternary_vs_label() {
        let ast = parse_ok("int f(int a) { int b = a ? 1 : 2; lbl: return b; }");
        assert!(ast.function("f").is_some());
    }

    #[test]
    fn parse_compound_assignment() {
        let ast = parse_ok("int f(int a) { a |= 4; a <<= 1; a &= ~2; return a; }");
        assert!(ast.function("f").is_some());
    }

    #[test]
    fn parse_multi_declarator() {
        parse_ok("int f(void) { int a = 1, b = 2, c; c = a + b; return c; }");
    }

    #[test]
    fn parse_prototype_and_variadic() {
        let ast = parse_ok("extern int printk(const char *fmt, ...);");
        match &ast.items[0] {
            Item::Proto(sig) => {
                assert!(sig.variadic);
                assert_eq!(sig.name, "printk");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_globals() {
        let ast = parse_ok("static unsigned long totalram_pages = 100;");
        match &ast.items[0] {
            Item::Global { name, init, .. } => {
                assert_eq!(name, "totalram_pages");
                assert!(init.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_pragma_items_and_stmts() {
        let ast = parse_ok(
            "/* @pallas fastpath f; */\n\
             int f(void) { /* @pallas immutable x; */ return 0; }",
        );
        let pragmas = ast.pragmas();
        assert_eq!(pragmas, vec!["fastpath f;", "immutable x;"]);
    }

    #[test]
    fn parse_sizeof_forms() {
        parse_ok("int f(int x) { return sizeof(int) + sizeof(struct page *) + sizeof x; }");
    }

    #[test]
    fn parse_cast_vs_paren() {
        // `(x)` is a parenthesized expression, `(int)x` a cast.
        let ast = parse_ok("int g(int x) { return (x) + (int)x + (unsigned long)x; }");
        assert!(ast.function("g").is_some());
    }

    #[test]
    fn parse_call_with_address_of_struct_member() {
        parse_ok(
            "int get_page_from_freelist(int order, int flags);\n\
             int f(int order) { return get_page_from_freelist(order, 1 | 2); }",
        );
    }

    #[test]
    fn parse_kernel_style_snippet() {
        // Miniature of Figure 5's patch shape.
        parse_ok(
            "struct rps_map { int len; int cpus[8]; };\n\
             struct netdev_rx_queue { struct rps_map *rps_map; struct rps_dev_flow_table *rps_flow_table; };\n\
             struct rps_dev_flow_table { int mask; };\n\
             int cpu_online(int cpu);\n\
             int get_rps_cpu(struct netdev_rx_queue *rxqueue) {\n\
               struct rps_map *map = rxqueue->rps_map;\n\
               int cpu = -1;\n\
               if (map) {\n\
                 if (map->len == 1 && !rxqueue->rps_flow_table) {\n\
                   int tcpu = map->cpus[0];\n\
                   if (cpu_online(tcpu))\n\
                     cpu = tcpu;\n\
                 }\n\
               }\n\
               return cpu;\n\
             }",
        );
    }

    #[test]
    fn parse_error_on_brace_init() {
        assert!(parse("int f(void) { int a[2] = {1, 2}; return 0; }").is_err());
    }

    #[test]
    fn parse_error_reports_span() {
        let err = parse("int f(void) { return + ; }").unwrap_err();
        assert!(err.span.start > 0);
    }

    #[test]
    fn union_definition() {
        let ast = parse_ok("union u { int a; long b; };");
        let u = ast.struct_def("u").unwrap();
        assert!(u.is_union);
    }

    #[test]
    fn forward_declaration_ignored() {
        let ast = parse_ok("struct sk_buff; int f(struct sk_buff *skb) { return 0; }");
        assert!(ast.struct_def("sk_buff").is_none());
        assert!(ast.function("f").is_some());
    }
}
