//! Lexer for the Pallas C subset.
//!
//! Besides ordinary tokenization the lexer performs two front-end duties
//! that Clang's driver performed for the original Pallas:
//!
//! * **Simple object-like macros.** `#define NAME <int>` registers a
//!   constant; later uses of `NAME` lex as integer literals. All other
//!   preprocessor lines (`#include`, `#ifdef`, ...) are skipped — the
//!   Pallas pipeline merges headers into one translation unit first
//!   (paper §4 step 1), so conditional compilation is not needed.
//! * **Pragma capture.** Block comments whose body starts with `@pallas`
//!   are emitted as [`TokenKind::Pragma`] tokens so inline semantic
//!   annotations survive lexing; all other comments are discarded.

use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// An error produced during lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, returning the token stream (terminated by `Eof`).
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/comments or characters
/// outside the language.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    defines: HashMap<String, i64>,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, defines: HashMap::new(), out: Vec::new() }
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn err(&self, start: usize, msg: impl Into<String>) -> LexError {
        LexError { message: msg.into(), span: Span::new(start as u32, self.pos as u32) }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            if self.pos >= self.bytes.len() {
                self.out.push(Token::new(TokenKind::Eof, Span::point(start as u32)));
                return Ok(self.out);
            }
            let b = self.peek();
            match b {
                b'#' => self.directive()?,
                b'"' => self.string(start)?,
                b'\'' => self.char_lit(start)?,
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                _ => self.punct(start)?,
            }
        }
    }

    /// Skips whitespace and comments; emits pragma tokens for
    /// `/* @pallas ... */` comments.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    let start = self.pos;
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                    let body = &self.src[start + 2..self.pos];
                    self.maybe_pragma(body.trim(), start);
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.bytes.len() {
                            self.pos = self.bytes.len();
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                    let body = &self.src[start + 2..self.pos - 2];
                    self.maybe_pragma(body.trim(), start);
                }
                _ => return Ok(()),
            }
        }
    }

    fn maybe_pragma(&mut self, body: &str, start: usize) {
        if let Some(rest) = body.strip_prefix("@pallas") {
            self.out.push(Token::new(
                TokenKind::Pragma(rest.trim().to_string()),
                Span::new(start as u32, self.pos as u32),
            ));
        }
    }

    /// Handles a `#` preprocessor line: `#define NAME <int>` registers a
    /// constant, everything else is skipped through end-of-line.
    fn directive(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek() != b'\n' {
            // Honor line continuations so multi-line defines are skipped whole.
            if self.peek() == b'\\' && self.peek2() == b'\n' {
                self.pos += 2;
                continue;
            }
            self.pos += 1;
        }
        let line = &self.src[start..self.pos];
        let mut parts = line[1..].split_whitespace();
        if parts.next() == Some("define") {
            if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
                // Function-like macros (`#define f(x) ...`) are not constants.
                if !name.contains('(') {
                    if let Some(v) = parse_int(value) {
                        self.defines.insert(name.to_string(), v);
                    }
                }
            }
        }
        Ok(())
    }

    fn string(&mut self, start: usize) -> Result<(), LexError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err(start, "unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => {
                    let esc = self.bump();
                    s.push(decode_escape(esc));
                }
                c => s.push(c as char),
            }
        }
        self.out
            .push(Token::new(TokenKind::Str(s), Span::new(start as u32, self.pos as u32)));
        Ok(())
    }

    fn char_lit(&mut self, start: usize) -> Result<(), LexError> {
        self.pos += 1; // opening quote
        let c = match self.bump() {
            b'\\' => decode_escape(self.bump()),
            0 => return Err(self.err(start, "unterminated character literal")),
            c => c as char,
        };
        if self.bump() != b'\'' {
            return Err(self.err(start, "unterminated character literal"));
        }
        self.out.push(Token::new(
            TokenKind::Int(c as i64),
            Span::new(start as u32, self.pos as u32),
        ));
        Ok(())
    }

    fn number(&mut self, start: usize) -> Result<(), LexError> {
        while matches!(self.peek(), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'x' | b'X') {
            self.pos += 1;
        }
        // Swallow integer suffixes.
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let value = parse_int(text)
            .ok_or_else(|| self.err(start, format!("invalid integer literal `{text}`")))?;
        self.out.push(Token::new(
            TokenKind::Int(value),
            Span::new(start as u32, self.pos as u32),
        ));
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        let kind = if let Some(k) = Keyword::from_str(text) {
            TokenKind::Keyword(k)
        } else if let Some(&v) = self.defines.get(text) {
            TokenKind::Int(v)
        } else {
            TokenKind::Ident(text.to_string())
        };
        self.out.push(Token::new(kind, span));
    }

    fn punct(&mut self, start: usize) -> Result<(), LexError> {
        use Punct::*;
        let a = self.bump();
        let b = self.peek();
        let c = self.peek2();
        let (p, extra) = match (a, b, c) {
            (b'<', b'<', b'=') => (ShlAssign, 2),
            (b'>', b'>', b'=') => (ShrAssign, 2),
            (b'.', b'.', b'.') => (Ellipsis, 2),
            (b'-', b'>', _) => (Arrow, 1),
            (b'+', b'+', _) => (Inc, 1),
            (b'-', b'-', _) => (Dec, 1),
            (b'+', b'=', _) => (PlusAssign, 1),
            (b'-', b'=', _) => (MinusAssign, 1),
            (b'*', b'=', _) => (StarAssign, 1),
            (b'/', b'=', _) => (SlashAssign, 1),
            (b'%', b'=', _) => (PercentAssign, 1),
            (b'&', b'=', _) => (AmpAssign, 1),
            (b'|', b'=', _) => (PipeAssign, 1),
            (b'^', b'=', _) => (CaretAssign, 1),
            (b'&', b'&', _) => (AndAnd, 1),
            (b'|', b'|', _) => (OrOr, 1),
            (b'=', b'=', _) => (Eq, 1),
            (b'!', b'=', _) => (Ne, 1),
            (b'<', b'=', _) => (Le, 1),
            (b'>', b'=', _) => (Ge, 1),
            (b'<', b'<', _) => (Shl, 1),
            (b'>', b'>', _) => (Shr, 1),
            (b'(', ..) => (LParen, 0),
            (b')', ..) => (RParen, 0),
            (b'{', ..) => (LBrace, 0),
            (b'}', ..) => (RBrace, 0),
            (b'[', ..) => (LBracket, 0),
            (b']', ..) => (RBracket, 0),
            (b';', ..) => (Semi, 0),
            (b',', ..) => (Comma, 0),
            (b'.', ..) => (Dot, 0),
            (b':', ..) => (Colon, 0),
            (b'?', ..) => (Question, 0),
            (b'=', ..) => (Assign, 0),
            (b'+', ..) => (Plus, 0),
            (b'-', ..) => (Minus, 0),
            (b'*', ..) => (Star, 0),
            (b'/', ..) => (Slash, 0),
            (b'%', ..) => (Percent, 0),
            (b'&', ..) => (Amp, 0),
            (b'|', ..) => (Pipe, 0),
            (b'^', ..) => (Caret, 0),
            (b'~', ..) => (Tilde, 0),
            (b'!', ..) => (Not, 0),
            (b'<', ..) => (Lt, 0),
            (b'>', ..) => (Gt, 0),
            _ => {
                return Err(self.err(start, format!("unexpected character `{}`", a as char)));
            }
        };
        self.pos += extra;
        self.out.push(Token::new(
            TokenKind::Punct(p),
            Span::new(start as u32, self.pos as u32),
        ));
        Ok(())
    }
}

fn decode_escape(b: u8) -> char {
    match b {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

/// Parses a C integer literal (decimal, hex `0x`, octal `0`), ignoring
/// `u`/`l` suffixes. Returns `None` if malformed.
fn parse_int(text: &str) -> Option<i64> {
    let t = text.trim_end_matches(['u', 'U', 'l', 'L']);
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if t.len() > 1 && t.starts_with('0') {
        i64::from_str_radix(&t[1..], 8).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_expression() {
        let ks = kinds("x = a->b + 0x10;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Arrow),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(Punct::Plus),
                TokenKind::Int(16),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_keywords_vs_idents() {
        let ks = kinds("if ifx struct structural");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::If));
        assert_eq!(ks[1], TokenKind::Ident("ifx".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::Struct));
        assert_eq!(ks[3], TokenKind::Ident("structural".into()));
    }

    #[test]
    fn lex_comments_discarded() {
        let ks = kinds("a // comment\n/* block */ b");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_pragma_comment_preserved() {
        let ks = kinds("/* @pallas immutable gfp_mask; */ int x;");
        assert_eq!(ks[0], TokenKind::Pragma("immutable gfp_mask;".into()));
    }

    #[test]
    fn lex_line_pragma_preserved() {
        let ks = kinds("// @pallas cond order0: order;\nint x;");
        assert_eq!(ks[0], TokenKind::Pragma("cond order0: order;".into()));
    }

    #[test]
    fn define_substitution() {
        let ks = kinds("#define GFP_KERNEL 0x14\nint x = GFP_KERNEL;");
        assert!(ks.contains(&TokenKind::Int(0x14)));
    }

    #[test]
    fn include_skipped() {
        let ks = kinds("#include <linux/mm.h>\nint x;");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Int));
    }

    #[test]
    fn function_like_macro_not_registered() {
        let ks = kinds("#define max(a,b) ((a)>(b)?(a):(b))\nint max;");
        assert_eq!(ks[1], TokenKind::Ident("max".into()));
    }

    #[test]
    fn char_and_string_literals() {
        let ks = kinds(r#"'a' "hi\n""#);
        assert_eq!(ks[0], TokenKind::Int('a' as i64));
        assert_eq!(ks[1], TokenKind::Str("hi\n".into()));
    }

    #[test]
    fn numeric_suffixes_and_bases() {
        let ks = kinds("10UL 0x1fL 017");
        assert_eq!(ks[0], TokenKind::Int(10));
        assert_eq!(ks[1], TokenKind::Int(31));
        assert_eq!(ks[2], TokenKind::Int(15));
    }

    #[test]
    fn three_char_operators() {
        let ks = kinds("a <<= 2; b >>= 1;");
        assert!(ks.contains(&TokenKind::Punct(Punct::ShlAssign)));
        assert!(ks.contains(&TokenKind::Punct(Punct::ShrAssign)));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }
}
