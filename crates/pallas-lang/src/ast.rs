//! Arena-allocated abstract syntax tree for the Pallas C subset.
//!
//! All expression and statement nodes live in flat arenas inside [`Ast`]
//! and are addressed by the copyable ids [`ExprId`] / [`StmtId`]. This
//! keeps the tree cache-friendly, makes sharing across the CFG and
//! symbolic layers trivial, and sidesteps ownership cycles.

use crate::span::Span;
use std::fmt;

/// Index of an expression node in an [`Ast`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Index of a statement node in an [`Ast`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A (simplified) C type reference: a base name plus pointer depth.
///
/// Pallas' checkers are name-driven — they never need full C type
/// checking — so `struct page **` is represented as
/// `TypeRef { name: "struct page", ptr: 2 }`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeRef {
    /// Base type name, e.g. `"int"`, `"struct page"`, `"gfp_t"`.
    pub name: String,
    /// Number of pointer indirections.
    pub ptr: u8,
}

impl TypeRef {
    /// A non-pointer type with the given base name.
    pub fn named(name: impl Into<String>) -> Self {
        TypeRef { name: name.into(), ptr: 0 }
    }

    /// This type with one more level of indirection.
    pub fn pointer_to(mut self) -> Self {
        self.ptr += 1;
        self
    }

    /// Whether this is the `void` non-pointer type.
    pub fn is_void(&self) -> bool {
        self.ptr == 0 && self.name == "void"
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        for _ in 0..self.ptr {
            f.write_str(" *")?;
        }
        Ok(())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*x`
    Deref,
    /// `&x`
    Addr,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
    /// `x++`
    PostInc,
    /// `x--`
    PostDec,
}

impl UnOp {
    /// Whether the operator mutates its operand.
    pub fn mutates(self) -> bool {
        matches!(self, UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec)
    }

    /// Source spelling (prefix position for inc/dec).
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Deref => "*",
            UnOp::Addr => "&",
            UnOp::PreInc | UnOp::PostInc => "++",
            UnOp::PreDec | UnOp::PostDec => "--",
        }
    }
}

/// Binary operators (excluding assignment, which is [`ExprKind::Assign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            And => "&&",
            Or => "||",
        }
    }

    /// Whether this is a comparison producing a boolean.
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(self, Lt | Gt | Le | Ge | Eq | Ne)
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`, `-=`, ... — the compound payload is the underlying [`BinOp`].
    Compound(BinOp),
}

impl AssignOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Compound(BinOp::Add) => "+=",
            AssignOp::Compound(BinOp::Sub) => "-=",
            AssignOp::Compound(BinOp::Mul) => "*=",
            AssignOp::Compound(BinOp::Div) => "/=",
            AssignOp::Compound(BinOp::Rem) => "%=",
            AssignOp::Compound(BinOp::BitAnd) => "&=",
            AssignOp::Compound(BinOp::BitOr) => "|=",
            AssignOp::Compound(BinOp::BitXor) => "^=",
            AssignOp::Compound(BinOp::Shl) => "<<=",
            AssignOp::Compound(BinOp::Shr) => ">>=",
            AssignOp::Compound(_) => "?=",
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer (or character) literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Variable or function reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, ExprId),
    /// Binary operation.
    Binary(BinOp, ExprId, ExprId),
    /// Assignment `lhs op rhs`.
    Assign(AssignOp, ExprId, ExprId),
    /// `cond ? then : else`.
    Ternary(ExprId, ExprId, ExprId),
    /// Function call.
    Call {
        /// Callee expression (usually an identifier).
        callee: ExprId,
        /// Argument expressions in order.
        args: Vec<ExprId>,
    },
    /// Member access `base.field` (`arrow == false`) or `base->field`.
    Member {
        /// Object expression.
        base: ExprId,
        /// Field name.
        field: String,
        /// True for `->`.
        arrow: bool,
    },
    /// Array indexing `base[index]`.
    Index(ExprId, ExprId),
    /// C cast `(type)expr`.
    Cast(TypeRef, ExprId),
    /// `sizeof(type)`.
    SizeofType(TypeRef),
    /// `sizeof expr`.
    SizeofExpr(ExprId),
    /// Comma expression `a, b`.
    Comma(ExprId, ExprId),
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration `ty name = init;`.
    Decl {
        /// Declared type.
        ty: TypeRef,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<ExprId>,
    },
    /// Expression statement.
    Expr(ExprId),
    /// `if (cond) then_br else else_br`.
    If {
        /// Branch condition.
        cond: ExprId,
        /// Taken when the condition is non-zero.
        then_br: StmtId,
        /// Taken otherwise, if present.
        else_br: Option<StmtId>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: ExprId,
        /// Loop body.
        body: StmtId,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: StmtId,
        /// Loop condition.
        cond: ExprId,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement (decl or expression).
        init: Option<StmtId>,
        /// Optional condition.
        cond: Option<ExprId>,
        /// Optional step expression.
        step: Option<ExprId>,
        /// Loop body.
        body: StmtId,
    },
    /// `switch (scrutinee) body` — the body block contains `Case`/`Default`
    /// label statements.
    Switch {
        /// Switched-on expression.
        scrutinee: ExprId,
        /// Body block.
        body: StmtId,
    },
    /// `case value:` label inside a switch body.
    Case(ExprId),
    /// `default:` label inside a switch body.
    Default,
    /// `return expr;` or bare `return;`.
    Return(Option<ExprId>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `goto label;`
    Goto(String),
    /// `label:` statement label.
    Label(String),
    /// `{ ... }` block.
    Block(Vec<StmtId>),
    /// Empty statement `;`.
    Empty,
    /// Inline `/* @pallas ... */` pragma appearing at statement position.
    Pragma(String),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: TypeRef,
    /// Parameter name (`""` for unnamed prototype parameters).
    pub name: String,
}

/// A function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSig {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeRef,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Whether the signature ends with `...`.
    pub variadic: bool,
}

impl fmt::Display for FunctionSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}(", self.ret, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", p.ty, p.name)?;
        }
        if self.variadic {
            if !self.params.is_empty() {
                f.write_str(", ")?;
            }
            f.write_str("...")?;
        }
        f.write_str(")")
    }
}

/// A function definition with a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Signature.
    pub sig: FunctionSig,
    /// Body block statement.
    pub body: StmtId,
    /// Full definition span.
    pub span: Span,
}

/// A field of a struct or union.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field type.
    pub ty: TypeRef,
    /// Field name.
    pub name: String,
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name (e.g. `page` for `struct page`).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// True for `union`.
    pub is_union: bool,
    /// Definition span.
    pub span: Span,
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Tag name, if any.
    pub name: Option<String>,
    /// `(name, value)` pairs with C-style implicit numbering applied.
    pub variants: Vec<(String, i64)>,
    /// Definition span.
    pub span: Span,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Function definition.
    Function(Function),
    /// Function prototype (no body).
    Proto(FunctionSig),
    /// Struct or union definition.
    Struct(StructDef),
    /// Enum definition.
    Enum(EnumDef),
    /// Global variable.
    Global {
        /// Declared type.
        ty: TypeRef,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<ExprId>,
        /// Declaration span.
        span: Span,
    },
    /// `typedef existing new_name;`
    Typedef {
        /// Aliased type.
        ty: TypeRef,
        /// New name.
        name: String,
    },
    /// Top-level `/* @pallas ... */` pragma.
    Pragma(String, Span),
}

/// A parsed translation unit: arenas plus the top-level item list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ast {
    exprs: Vec<Expr>,
    stmts: Vec<Stmt>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Ast {
    /// Creates an empty AST.
    pub fn new() -> Self {
        Ast::default()
    }

    /// Allocates an expression node, returning its id.
    pub fn alloc_expr(&mut self, kind: ExprKind, span: Span) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(Expr { kind, span });
        id
    }

    /// Allocates a statement node, returning its id.
    pub fn alloc_stmt(&mut self, kind: StmtKind, span: Span) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(Stmt { kind, span });
        id
    }

    /// Returns the expression node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this AST.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// Returns the statement node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this AST.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// Number of allocated expressions.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Number of allocated statements.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Iterates over all function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.sig.name == name)
    }

    /// Iterates over all struct/union definitions.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Finds a struct definition by tag name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs().find(|s| s.name == name)
    }

    /// Iterates over all enum definitions.
    pub fn enums(&self) -> impl Iterator<Item = &EnumDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Enum(e) => Some(e),
            _ => None,
        })
    }

    /// Looks up an enum variant's value by name across all enums.
    pub fn enum_value(&self, variant: &str) -> Option<i64> {
        self.enums()
            .flat_map(|e| e.variants.iter())
            .find(|(n, _)| n == variant)
            .map(|&(_, v)| v)
    }

    /// All top-level and statement-level `@pallas` pragma bodies, in order.
    pub fn pragmas(&self) -> Vec<&str> {
        let mut out: Vec<(Span, &str)> = Vec::new();
        for item in &self.items {
            if let Item::Pragma(body, span) = item {
                out.push((*span, body.as_str()));
            }
        }
        for stmt in &self.stmts {
            if let StmtKind::Pragma(body) = &stmt.kind {
                out.push((stmt.span, body.as_str()));
            }
        }
        out.sort_by_key(|(s, _)| *s);
        out.into_iter().map(|(_, b)| b).collect()
    }

    /// Visits `expr` and all of its sub-expressions in pre-order.
    pub fn walk_expr(&self, expr: ExprId, visit: &mut dyn FnMut(ExprId)) {
        visit(expr);
        match &self.expr(expr).kind {
            ExprKind::Int(_) | ExprKind::Str(_) | ExprKind::Ident(_) | ExprKind::SizeofType(_) => {}
            ExprKind::Unary(_, e)
            | ExprKind::Cast(_, e)
            | ExprKind::SizeofExpr(e)
            | ExprKind::Member { base: e, .. } => self.walk_expr(*e, visit),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                self.walk_expr(*a, visit);
                self.walk_expr(*b, visit);
            }
            ExprKind::Ternary(c, t, e) => {
                self.walk_expr(*c, visit);
                self.walk_expr(*t, visit);
                self.walk_expr(*e, visit);
            }
            ExprKind::Call { callee, args } => {
                self.walk_expr(*callee, visit);
                for a in args {
                    self.walk_expr(*a, visit);
                }
            }
        }
    }

    /// Collects the names of all identifiers mentioned anywhere in `expr`.
    pub fn idents_in(&self, expr: ExprId) -> Vec<String> {
        let mut names = Vec::new();
        self.walk_expr(expr, &mut |id| {
            if let ExprKind::Ident(n) = &self.expr(id).kind {
                names.push(n.clone());
            }
        });
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::point(0)
    }

    #[test]
    fn arena_allocation_and_lookup() {
        let mut ast = Ast::new();
        let a = ast.alloc_expr(ExprKind::Int(1), sp());
        let b = ast.alloc_expr(ExprKind::Ident("x".into()), sp());
        let sum = ast.alloc_expr(ExprKind::Binary(BinOp::Add, a, b), sp());
        assert_eq!(ast.expr_count(), 3);
        match &ast.expr(sum).kind {
            ExprKind::Binary(BinOp::Add, l, r) => {
                assert_eq!(*l, a);
                assert_eq!(*r, b);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_expr_visits_all_nodes() {
        let mut ast = Ast::new();
        let a = ast.alloc_expr(ExprKind::Ident("a".into()), sp());
        let b = ast.alloc_expr(ExprKind::Ident("b".into()), sp());
        let c = ast.alloc_expr(ExprKind::Ident("c".into()), sp());
        let cond = ast.alloc_expr(ExprKind::Binary(BinOp::Lt, a, b), sp());
        let tern = ast.alloc_expr(ExprKind::Ternary(cond, b, c), sp());
        let mut count = 0;
        ast.walk_expr(tern, &mut |_| count += 1);
        // tern, cond, a, b (in cond), b (then), c (else)
        assert_eq!(count, 6);
        let names = ast.idents_in(tern);
        assert_eq!(names, vec!["a", "b", "b", "c"]);
    }

    #[test]
    fn type_ref_display() {
        let t = TypeRef::named("struct page").pointer_to();
        assert_eq!(t.to_string(), "struct page *");
        assert!(TypeRef::named("void").is_void());
        assert!(!t.is_void());
    }

    #[test]
    fn signature_display() {
        let sig = FunctionSig {
            name: "alloc_pages".into(),
            ret: TypeRef::named("struct page").pointer_to(),
            params: vec![
                Param { ty: TypeRef::named("gfp_t"), name: "gfp_mask".into() },
                Param { ty: TypeRef::named("unsigned int"), name: "order".into() },
            ],
            variadic: false,
        };
        assert_eq!(
            sig.to_string(),
            "struct page * alloc_pages(gfp_t gfp_mask, unsigned int order)"
        );
    }

    #[test]
    fn enum_value_lookup() {
        let mut ast = Ast::new();
        ast.items.push(Item::Enum(EnumDef {
            name: Some("zone_type".into()),
            variants: vec![("ZONE_DMA".into(), 0), ("ZONE_NORMAL".into(), 1)],
            span: sp(),
        }));
        assert_eq!(ast.enum_value("ZONE_NORMAL"), Some(1));
        assert_eq!(ast.enum_value("ZONE_MOVABLE"), None);
    }

    #[test]
    fn unop_mutates() {
        assert!(UnOp::PostInc.mutates());
        assert!(!UnOp::Deref.mutates());
    }
}
