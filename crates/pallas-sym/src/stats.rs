//! Summary statistics over a path database — the numbers the paper
//! reports qualitatively ("a execution path includes four components",
//! "inlines a limited number of callee functions", per-path checking
//! cost) made measurable.

use crate::event::{Event, PathDb};
use std::fmt;

/// Aggregate statistics for one path database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Functions extracted.
    pub functions: usize,
    /// Total paths.
    pub paths: usize,
    /// Largest per-function path count.
    pub max_paths_per_function: usize,
    /// Total events across all paths.
    pub events: usize,
    /// Condition events.
    pub conditions: usize,
    /// State-update events.
    pub states: usize,
    /// Call events.
    pub calls: usize,
    /// Events contributed by summary-inlined callees (depth > 0).
    pub inlined_events: usize,
    /// Functions whose enumeration was truncated.
    pub truncated_functions: usize,
}

impl DbStats {
    /// Computes statistics for `db`.
    pub fn compute(db: &PathDb) -> Self {
        let mut s = DbStats { functions: db.functions.len(), ..DbStats::default() };
        for func in &db.functions {
            s.paths += func.records.len();
            s.max_paths_per_function = s.max_paths_per_function.max(func.records.len());
            if func.truncated {
                s.truncated_functions += 1;
            }
            for rec in &func.records {
                for e in &rec.events {
                    s.events += 1;
                    if e.depth() > 0 {
                        s.inlined_events += 1;
                    }
                    match e {
                        Event::Cond { .. } => s.conditions += 1,
                        Event::State { .. } => s.states += 1,
                        Event::Call { .. } => s.calls += 1,
                        Event::Decl { .. } => {}
                    }
                }
            }
        }
        s
    }

    /// Average events per path (0 when empty).
    pub fn events_per_path(&self) -> f64 {
        if self.paths == 0 {
            0.0
        } else {
            self.events as f64 / self.paths as f64
        }
    }
}

impl fmt::Display for DbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} function(s), {} path(s) (max {}/fn, {} truncated), {} event(s) \
             ({} cond, {} state, {} call; {} inlined; {:.1}/path)",
            self.functions,
            self.paths,
            self.max_paths_per_function,
            self.truncated_functions,
            self.events,
            self.conditions,
            self.states,
            self.calls,
            self.inlined_events,
            self.events_per_path()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractConfig};
    use pallas_lang::parse;

    fn stats_of(src: &str) -> DbStats {
        let ast = parse(src).unwrap();
        let db = extract("stats", &ast, src, &ExtractConfig::default());
        DbStats::compute(&db)
    }

    #[test]
    fn counts_add_up() {
        let s = stats_of(
            "int g(int v) { if (v) return 1; return 0; }\n\
             int f(int x) {\n  int y = g(x);\n  if (y)\n    return 1;\n  return 0;\n}",
        );
        assert_eq!(s.functions, 2);
        assert!(s.paths >= 4);
        assert!(s.conditions > 0);
        assert!(s.states > 0);
        assert!(s.calls > 0);
        assert!(s.inlined_events > 0, "g's summary appears in f at depth 1");
        assert!(s.events >= s.conditions + s.states + s.calls);
        assert!(s.events_per_path() > 0.0);
    }

    #[test]
    fn truncation_counted() {
        let s = stats_of("int f(int n) { while (n) n--; return n; }");
        assert_eq!(s.truncated_functions, 1);
    }

    #[test]
    fn empty_db_safe() {
        let s = DbStats::compute(&PathDb::new("empty"));
        assert_eq!(s.functions, 0);
        assert_eq!(s.events_per_path(), 0.0);
        assert!(s.to_string().contains("0 function(s)"));
    }
}
