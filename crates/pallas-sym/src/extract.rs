//! Symbolic path extraction: CFG paths → [`PathDb`] event timelines.
//!
//! For every function the extractor enumerates bounded CFG paths and
//! interprets each path's statements over symbolic values, producing
//! the ordered [`Event`] timeline the checkers consume. Calls to
//! functions defined in the same (merged) unit can be *summary-inlined*
//! up to a configurable depth — the union of the callee's own events is
//! appended at `depth + 1` — mirroring the paper's "inlines a limited
//! number of callee functions" design (§4).
//!
//! Allocation discipline: one [`Evaluator`] is reused across all paths
//! of a function (its environment map keeps its capacity), expression
//! renderings / atom sets / lvalue keys are memoized per [`ExprId`] in
//! unit-scoped caches, and environment keys are interned [`Istr`]s —
//! the per-path cost is event construction, not re-deriving the same
//! strings path after path.

use crate::event::{Event, FunctionPaths, OutputRecord, PathDb, PathRecord};
use crate::feasible::FeasibilityOracle;
use crate::intern::Istr;
use crate::sym::{Sym, SymNode};
use pallas_cfg::{
    build_cfg, enumerate_paths_reusing, summarize_loops, CfgPath, Decision, LoopSummary, NoOracle,
    PathConfig, PathScratch,
};
use pallas_lang::ast::{AssignOp, Ast, ExprId, ExprKind, StmtKind, UnOp};
use pallas_lang::{expr_to_string, LineMap};
use std::collections::{HashMap, HashSet};

/// Extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractConfig {
    /// CFG path-enumeration limits.
    pub paths: PathConfig,
    /// How many levels of same-unit callees to summary-inline
    /// (0 disables inlining).
    pub inline_depth: u8,
    /// Whether to prune provably infeasible decision arms during path
    /// enumeration (the [`crate::feasible`] engine). Pruning is sound —
    /// only contradictory condition sets are cut — so on an
    /// untruncated enumeration it can only remove paths no execution
    /// takes; under truncation it additionally frees budget for
    /// feasible paths the limits would otherwise have cut.
    pub prune_infeasible: bool,
    /// Whether to compute per-loop effect summaries
    /// ([`pallas_cfg::summarize_loops`]) and use them in two places:
    /// the extractor havocs exactly the may-written variable set when
    /// a path leaves a loop body (instead of trusting the bounded
    /// unroll's final bindings), and the feasibility oracle asserts
    /// loop-invariant conditions inside loop bodies instead of
    /// treating every in-loop decision as transparent.
    pub loop_summaries: bool,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            paths: PathConfig::default(),
            inline_depth: 1,
            prune_infeasible: true,
            loop_summaries: true,
        }
    }
}

impl ExtractConfig {
    /// A stable byte encoding of every field that influences
    /// extraction output. Content-addressed caches (the staged
    /// engine's frontend cache) must include these bytes in their
    /// keys: two configurations with different encodings can produce
    /// different path databases for the same source.
    pub fn cache_key_bytes(&self) -> [u8; 35] {
        let mut out = [0u8; 35];
        out[0..8].copy_from_slice(&(self.paths.max_paths as u64).to_le_bytes());
        out[8..16].copy_from_slice(&(self.paths.max_visits as u64).to_le_bytes());
        out[16..24].copy_from_slice(&(self.paths.max_len as u64).to_le_bytes());
        out[24..32].copy_from_slice(&(self.paths.max_steps as u64).to_le_bytes());
        out[32] = self.inline_depth;
        out[33] = self.prune_infeasible as u8;
        out[34] = self.loop_summaries as u8;
        out
    }
}

/// Extracts the path database for a parsed unit.
///
/// `src` must be the exact text the unit was parsed from (line numbers
/// are derived from it).
pub fn extract(unit: &str, ast: &Ast, src: &str, config: &ExtractConfig) -> PathDb {
    let mut fx = FunctionExtractor::new(ast, src, config);
    let mut db = PathDb::new(unit);
    for func in ast.functions() {
        db.insert(fx.extract_function(&func.sig.name));
    }
    db
}

/// Per-function extraction over one parsed unit, sharing the callee
/// summary memo across calls. This is the incremental re-analysis
/// entry point: a caller that can prove some functions' content
/// unchanged (the persistent store's per-function hashes) reuses their
/// stored [`FunctionPaths`] and extracts only the rest. Extracting
/// every function in [`Ast::functions`] order is exactly [`extract`].
pub struct FunctionExtractor<'a> {
    ast: &'a Ast,
    lm: LineMap,
    config: ExtractConfig,
    caches: ExtractCaches,
}

impl<'a> FunctionExtractor<'a> {
    /// Prepares extraction for `ast`, which must have been parsed from
    /// exactly `src` (line numbers are derived from it).
    pub fn new(ast: &'a Ast, src: &str, config: &ExtractConfig) -> Self {
        FunctionExtractor {
            ast,
            lm: LineMap::new(src),
            config: *config,
            caches: ExtractCaches::default(),
        }
    }

    /// Extracts the paths of one function defined in the unit.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a function defined in the AST.
    pub fn extract_function(&mut self, name: &str) -> FunctionPaths {
        let mut span = pallas_trace::span(pallas_trace::Layer::Paths, name);
        let fp = extract_function(self.ast, &self.lm, name, &self.config, &mut self.caches);
        span.attr_u64("paths", fp.records.len() as u64);
        span.attr_bool("truncated", fp.truncated);
        span.attr_u64("pruned", fp.pruned as u64);
        fp
    }

    /// `(hits, misses)` of the callee summary memo so far. A hit means
    /// a call site reused an already-computed `(callee, depth)` summary
    /// (including the empty placeholder that breaks recursion cycles)
    /// instead of re-extracting the callee.
    pub fn summary_cache_stats(&self) -> (u64, u64) {
        (self.caches.summary_hits, self.caches.summary_misses)
    }

    /// `(loops summarized, variables havocked)` so far: how many
    /// natural loops got effect summaries and how many environment
    /// bindings were havocked at loop exits across all extracted
    /// paths. Both stay zero with `loop_summaries` off.
    pub fn loop_summary_stats(&self) -> (u64, u64) {
        (self.caches.loops_summarized, self.caches.vars_havocked)
    }
}

/// Unit-scoped memo state shared by every function extracted from one
/// AST: callee summaries plus per-[`ExprId`] derived-string caches
/// (all pure functions of the AST, so they never need invalidation).
#[derive(Default)]
struct ExtractCaches {
    /// Callee summaries keyed by `(function, remaining depth)`.
    summaries: HashMap<(Istr, u8), Vec<Event>>,
    summary_hits: u64,
    summary_misses: u64,
    /// Rendered expression text (event `text` fields, callee names).
    texts: HashMap<ExprId, String>,
    /// Canonical lvalue key, `None` for non-lvalues.
    lvalues: HashMap<ExprId, Option<Istr>>,
    /// Name atoms mentioned by an expression.
    atoms: HashMap<ExprId, Vec<String>>,
    /// Reused DFS buffers for path enumeration (one per unit, warm
    /// across every function and inlined callee).
    paths_scratch: PathScratch,
    /// Natural loops summarized across every extraction in the unit
    /// (including inlined callees).
    loops_summarized: u64,
    /// Variable bindings havocked at loop exits across every path.
    vars_havocked: u64,
}

fn extract_function(
    ast: &Ast,
    lm: &LineMap,
    name: &str,
    config: &ExtractConfig,
    caches: &mut ExtractCaches,
) -> FunctionPaths {
    let func = ast.function(name).expect("function exists");
    let cfg = build_cfg(ast, func);
    let paths = if config.prune_infeasible {
        let mut oracle = FeasibilityOracle::new(ast);
        if !config.loop_summaries {
            oracle = oracle.without_loop_summaries();
        }
        enumerate_paths_reusing(&cfg, &config.paths, &mut oracle, &mut caches.paths_scratch)
    } else {
        enumerate_paths_reusing(&cfg, &config.paths, &mut NoOracle, &mut caches.paths_scratch)
    };
    let summaries = if config.loop_summaries { summarize_loops(ast, &cfg) } else { Vec::new() };
    caches.loops_summarized += summaries.len() as u64;
    let mut records = Vec::with_capacity(paths.paths.len());
    let mut ev = Evaluator::new(ast, lm, config, caches);
    for (index, path) in paths.paths.iter().enumerate() {
        records.push(ev.run_path(&cfg, path, index, &summaries));
    }
    FunctionPaths {
        name: func.sig.name.clone(),
        signature: func.sig.to_string(),
        params: func.sig.params.iter().map(|p| p.name.clone()).collect(),
        line: lm.line(func.span.start),
        records,
        truncated: paths.truncated,
        pruned: paths.pruned,
    }
}

/// Computes (and memoizes) the summary event set of a callee: the union
/// of events over all of its extracted paths, deduplicated. `remaining`
/// is the inlining budget left at the *call site*: the callee's own
/// extraction gets `remaining - 1`, so a budget of 2 surfaces the
/// callee's callees' conditions at cumulative depth 2, and so on.
///
/// Returns a borrow of the memoized entry: the caller clones events
/// only as it splices them, and the union vector itself is inserted
/// exactly once (no insert-empty-then-overwrite double write of the
/// final value, no defensive clone of the whole union).
fn callee_summary<'c>(
    ast: &Ast,
    lm: &LineMap,
    name: Istr,
    remaining: u8,
    base: &ExtractConfig,
    caches: &'c mut ExtractCaches,
) -> &'c [Event] {
    const EMPTY: &[Event] = &[];
    if remaining == 0 {
        return EMPTY;
    }
    let key = (name, remaining);
    if caches.summaries.contains_key(&key) {
        caches.summary_hits += 1;
        return &caches.summaries[&key];
    }
    caches.summary_misses += 1;
    // Insert a placeholder first to break recursion cycles.
    caches.summaries.insert(key, Vec::new());
    let sub_config = ExtractConfig {
        paths: PathConfig { max_paths: 64, ..base.paths },
        inline_depth: remaining - 1,
        ..*base
    };
    let fp = extract_function(ast, lm, name.as_str(), &sub_config, caches);
    let mut seen = HashSet::new();
    let mut union = Vec::new();
    for rec in &fp.records {
        for e in &rec.events {
            if seen.insert(e) {
                union.push(e.clone());
            }
        }
    }
    caches.summaries.insert(key, union);
    &caches.summaries[&key]
}

struct Evaluator<'a> {
    ast: &'a Ast,
    lm: &'a LineMap,
    config: &'a ExtractConfig,
    env: HashMap<Istr, Sym>,
    temp_counter: u32,
    in_condition: u32,
    events: Vec<Event>,
    caches: &'a mut ExtractCaches,
}

impl<'a> Evaluator<'a> {
    fn new(
        ast: &'a Ast,
        lm: &'a LineMap,
        config: &'a ExtractConfig,
        caches: &'a mut ExtractCaches,
    ) -> Self {
        Evaluator {
            ast,
            lm,
            config,
            env: HashMap::new(),
            temp_counter: 0,
            in_condition: 0,
            events: Vec::new(),
            caches,
        }
    }

    /// Interprets one enumerated path, resetting per-path state but
    /// keeping the environment map's capacity and every unit-scoped
    /// memo warm.
    fn run_path(
        &mut self,
        cfg: &pallas_cfg::Cfg,
        path: &CfgPath,
        index: usize,
        loops: &[LoopSummary],
    ) -> PathRecord {
        self.env.clear();
        self.temp_counter = 0;
        self.in_condition = 0;
        self.events.clear();
        // Parameters start as symbolic inputs of their own name.
        // (The environment defaults to `Input(name)` on lookup, so
        // nothing to seed.)
        let mut decision_iter = path.decisions.iter().peekable();
        for (i, &bb) in path.blocks.iter().enumerate() {
            // A loop-exit stand-in path ran the body a bounded number
            // of times; the real execution may have run it arbitrarily
            // often. Havoc exactly the may-written set so post-loop
            // events never see the k-th iteration's bindings. (Loops
            // are in deterministic `find_loops` order and `may_write`
            // is a BTreeSet, so havoc order is stable.)
            if i > 0 {
                let prev = path.blocks[i - 1];
                for l in loops {
                    if l.body.contains(&prev) && !l.body.contains(&bb) {
                        for key in &l.may_write {
                            self.env.insert(Istr::new(key), Sym::unknown());
                            self.caches.vars_havocked += 1;
                        }
                    }
                }
            }
            let block = cfg.block(bb);
            for &stmt in &block.stmts {
                self.exec_stmt(stmt);
            }
            for &(b, step) in &cfg.step_exprs {
                if b == bb {
                    self.eval(step);
                }
            }
            // If this block made a decision on the path, record it.
            let is_last = i + 1 == path.blocks.len();
            if !is_last {
                if let Some(d) = decision_iter.peek() {
                    if d.block() == bb {
                        let d = decision_iter.next().expect("peeked");
                        self.record_decision(d);
                    }
                }
            }
        }
        let output = match path.ret {
            Some(e) => {
                let value = self.eval_in_return(e);
                OutputRecord {
                    line: self.line_of(e),
                    text: self.text_of(e),
                    value: Some(value),
                    vars: self.atoms_of(e),
                }
            }
            None => OutputRecord {
                line: path
                    .blocks
                    .last()
                    .map(|&b| self.lm.line(cfg.block(b).span.start))
                    .unwrap_or(0),
                text: String::new(),
                value: None,
                vars: Vec::new(),
            },
        };
        PathRecord { index, events: std::mem::take(&mut self.events), output }
    }

    fn line_of(&self, e: ExprId) -> u32 {
        self.lm.line(self.ast.expr(e).span.start)
    }

    /// Memoized `expr_to_string`.
    fn text_of(&mut self, e: ExprId) -> String {
        if let Some(t) = self.caches.texts.get(&e) {
            return t.clone();
        }
        let t = expr_to_string(self.ast, e);
        self.caches.texts.insert(e, t.clone());
        t
    }

    fn exec_stmt(&mut self, id: pallas_lang::StmtId) {
        let ast = self.ast;
        let stmt = ast.stmt(id);
        match &stmt.kind {
            StmtKind::Decl { name, init, .. } => {
                let line = self.lm.line(stmt.span.start);
                self.events.push(Event::Decl {
                    line,
                    name: name.clone(),
                    has_init: init.is_some(),
                    depth: 0,
                });
                match init {
                    Some(e) => {
                        let value = self.eval(*e);
                        let value = self.detemporalize_call(value, name);
                        let text = format!("{name} = {}", self.text_of(*e));
                        let reads = self.atoms_of(*e);
                        self.events.push(Event::State {
                            line,
                            lvalue: name.clone(),
                            value,
                            text,
                            reads,
                            depth: 0,
                        });
                        self.env.insert(Istr::new(name), value);
                    }
                    None => {
                        // Declared but uninitialized: poison so reads
                        // can be recognized by the init checker.
                        self.env.insert(Istr::new(name), Sym::unknown());
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.eval(*e);
            }
            _ => {}
        }
    }

    fn record_decision(&mut self, d: &Decision) {
        match d {
            Decision::Branch { cond, taken, .. } => {
                self.in_condition += 1;
                let sym = self.eval(*cond);
                self.in_condition -= 1;
                let text = self.text_of(*cond);
                let vars = self.atoms_of(*cond);
                self.events.push(Event::Cond {
                    line: self.line_of(*cond),
                    text,
                    symbolic: sym.to_string(),
                    vars,
                    taken: Some(*taken),
                    depth: 0,
                });
            }
            Decision::Switch { scrutinee, case, .. } => {
                self.in_condition += 1;
                let sym = self.eval(*scrutinee);
                self.in_condition -= 1;
                let case_text = case
                    .map(|c| format!(" == case {}", self.text_of(c)))
                    .unwrap_or_else(|| " == default".to_string());
                let mut vars = self.atoms_of(*scrutinee);
                if let Some(c) = case {
                    for atom in self.atoms_of(*c) {
                        if !vars.contains(&atom) {
                            vars.push(atom);
                        }
                    }
                }
                let text = format!("{}{case_text}", self.text_of(*scrutinee));
                self.events.push(Event::Cond {
                    line: self.line_of(*scrutinee),
                    text,
                    symbolic: format!("{sym}{case_text}"),
                    vars,
                    taken: None,
                    depth: 0,
                });
            }
        }
    }

    fn eval_in_return(&mut self, e: ExprId) -> Sym {
        self.eval(e)
    }

    /// If the value is a raw call result, rewrite it as a `V#` temp (the
    /// Table 5 convention) and point the most recent Call event at the
    /// assigned lvalue.
    fn detemporalize_call(&mut self, value: Sym, lvalue: &str) -> Sym {
        if let SymNode::Call { .. } = value.node() {
            for e in self.events.iter_mut().rev() {
                // Only the function's own call events qualify — summary
                // events spliced from callees sit at depth > 0 and must
                // not absorb the assignment.
                if let Event::Call { assigned_to, depth: 0, .. } = e {
                    if assigned_to.is_none() {
                        *assigned_to = Some(lvalue.to_string());
                        break;
                    }
                }
            }
            self.temp_counter += 1;
            return Sym::temp(self.temp_counter);
        }
        value
    }

    /// Canonical (interned) lvalue key for identifier / member / index
    /// / deref chains; `None` for non-lvalue expressions. Memoized per
    /// expression.
    fn lvalue_key(&mut self, e: ExprId) -> Option<Istr> {
        if let Some(k) = self.caches.lvalues.get(&e) {
            return *k;
        }
        let key = match &self.ast.expr(e).kind {
            ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index(..) => {
                Some(Istr::new(&expr_to_string(self.ast, e)))
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                self.lvalue_key(*inner).map(|k| Istr::new(&format!("*{k}")))
            }
            _ => None,
        };
        self.caches.lvalues.insert(e, key);
        key
    }

    /// Name atoms mentioned by an expression: identifiers, full member
    /// paths, and bare field names. Memoized per expression.
    fn atoms_of(&mut self, e: ExprId) -> Vec<String> {
        if let Some(v) = self.caches.atoms.get(&e) {
            return v.clone();
        }
        let mut set = Vec::new();
        let mut push = |s: String| {
            if !set.contains(&s) {
                set.push(s);
            }
        };
        self.ast.walk_expr(e, &mut |id| match &self.ast.expr(id).kind {
            ExprKind::Ident(n) => push(n.clone()),
            ExprKind::Member { field, .. } => {
                push(field.clone());
                push(expr_to_string(self.ast, id));
            }
            _ => {}
        });
        self.caches.atoms.insert(e, set.clone());
        set
    }

    /// Environment lookup falling back to a symbolic input of the key's
    /// own spelling.
    fn env_value(&self, key: Istr) -> Sym {
        self.env.get(&key).copied().unwrap_or_else(|| Sym::input(key))
    }

    fn eval(&mut self, e: ExprId) -> Sym {
        let ast = self.ast;
        match &ast.expr(e).kind {
            ExprKind::Int(v) => Sym::int(*v),
            ExprKind::Str(s) => Sym::str_lit(s.as_str()),
            ExprKind::Ident(_) => {
                let key = self.lvalue_key(e).expect("identifiers are lvalues");
                self.env_value(key)
            }
            ExprKind::Unary(op, inner) => {
                let (op, inner) = (*op, *inner);
                if op.mutates() {
                    let value = self.eval(inner);
                    if let Some(key) = self.lvalue_key(inner) {
                        let delta = if matches!(op, UnOp::PreInc | UnOp::PostInc) { 1 } else { -1 };
                        let new = Sym::binary(
                            pallas_lang::ast::BinOp::Add,
                            value,
                            Sym::int(delta),
                        );
                        let text = self.text_of(e);
                        let reads = self.atoms_of(inner);
                        self.events.push(Event::State {
                            line: self.line_of(e),
                            lvalue: key.to_string(),
                            value: new,
                            text,
                            reads,
                            depth: 0,
                        });
                        self.env.insert(key, new);
                        return match op {
                            UnOp::PostInc | UnOp::PostDec => value,
                            _ => new,
                        };
                    }
                    return Sym::unknown();
                }
                if matches!(op, UnOp::Addr) {
                    // Taking an address counts as a read; value unknown.
                    self.eval(inner);
                    return Sym::unknown();
                }
                let v = self.eval(inner);
                if matches!(op, UnOp::Deref) {
                    return match self.lvalue_key(e) {
                        Some(key) => self.env_value(key),
                        None => Sym::unknown(),
                    };
                }
                Sym::unary(op, v)
            }
            ExprKind::Binary(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let va = self.eval(a);
                let vb = self.eval(b);
                Sym::binary(op, va, vb)
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let (op, lhs, rhs) = (*op, *lhs, *rhs);
                let rhs_value = self.eval(rhs);
                let key = match self.lvalue_key(lhs) {
                    Some(k) => k,
                    None => return Sym::unknown(),
                };
                let mut value = match op {
                    AssignOp::Assign => rhs_value,
                    AssignOp::Compound(bin) => {
                        let cur = self.env_value(key);
                        Sym::binary(bin, cur, rhs_value)
                    }
                };
                value = self.detemporalize_call(value, key.as_str());
                let mut reads = self.atoms_of(rhs);
                if matches!(op, AssignOp::Compound(_)) {
                    for a in self.atoms_of(lhs) {
                        if !reads.contains(&a) {
                            reads.push(a);
                        }
                    }
                }
                let text = self.text_of(e);
                self.events.push(Event::State {
                    line: self.line_of(e),
                    lvalue: key.to_string(),
                    value,
                    text,
                    reads,
                    depth: 0,
                });
                self.env.insert(key, value);
                value
            }
            ExprKind::Ternary(c, t, el) => {
                let (c, t, el) = (*c, *t, *el);
                self.in_condition += 1;
                let sym = self.eval(c);
                self.in_condition -= 1;
                let text = self.text_of(c);
                let vars = self.atoms_of(c);
                self.events.push(Event::Cond {
                    line: self.line_of(c),
                    text,
                    symbolic: sym.to_string(),
                    vars,
                    taken: None,
                    depth: 0,
                });
                let tv = self.eval(t);
                let ev = self.eval(el);
                if tv == ev {
                    tv
                } else {
                    Sym::unknown()
                }
            }
            ExprKind::Call { callee, args } => {
                let callee_name = Istr::new(&self.text_of(*callee));
                let mut arg_syms = Vec::with_capacity(args.len());
                let mut arg_vars = Vec::new();
                for &a in args {
                    arg_syms.push(self.eval(a));
                    for atom in self.atoms_of(a) {
                        if !arg_vars.contains(&atom) {
                            arg_vars.push(atom);
                        }
                    }
                }
                self.events.push(Event::Call {
                    line: self.line_of(e),
                    callee: callee_name.to_string(),
                    arg_vars,
                    assigned_to: None,
                    in_condition: self.in_condition > 0,
                    depth: 0,
                });
                // Summary-inline same-unit callees.
                if self.config.inline_depth > 0 && ast.function(callee_name.as_str()).is_some() {
                    let summary = callee_summary(
                        ast,
                        self.lm,
                        callee_name,
                        self.config.inline_depth,
                        self.config,
                        self.caches,
                    );
                    for ev in summary {
                        let mut ev = ev.clone();
                        match &mut ev {
                            Event::Cond { depth, .. }
                            | Event::State { depth, .. }
                            | Event::Call { depth, .. }
                            | Event::Decl { depth, .. } => *depth += 1,
                        }
                        self.events.push(ev);
                    }
                }
                Sym::call(callee_name, arg_syms)
            }
            ExprKind::Member { base, .. } => {
                let base = *base;
                self.eval(base);
                match self.lvalue_key(e) {
                    Some(key) => self.env_value(key),
                    None => Sym::unknown(),
                }
            }
            ExprKind::Index(b, i) => {
                let (b, i) = (*b, *i);
                self.eval(b);
                self.eval(i);
                match self.lvalue_key(e) {
                    Some(key) => self.env_value(key),
                    None => Sym::unknown(),
                }
            }
            ExprKind::Cast(_, inner) => self.eval(*inner),
            ExprKind::SizeofType(ty) => Sym::input(format!("sizeof({ty})")),
            ExprKind::SizeofExpr(inner) => {
                self.eval(*inner);
                Sym::unknown()
            }
            ExprKind::Comma(a, b) => {
                let (a, b) = (*a, *b);
                self.eval(a);
                self.eval(b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_lang::parse;

    fn db_of(src: &str) -> PathDb {
        let ast = parse(src).unwrap();
        extract("test", &ast, src, &ExtractConfig::default())
    }

    #[test]
    fn straight_line_states_recorded() {
        let db = db_of("int f(int x) {\n  int y = x + 1;\n  y = y * 2;\n  return y;\n}");
        let f = db.function("f").unwrap();
        assert_eq!(f.records.len(), 1);
        let rec = &f.records[0];
        let states: Vec<_> = rec.states().collect();
        assert_eq!(states.len(), 2);
        match &states[1] {
            Event::State { lvalue, line, .. } => {
                assert_eq!(lvalue, "y");
                assert_eq!(*line, 3);
            }
            _ => unreachable!(),
        }
        // y = (x+1)*2 stays symbolic in x.
        assert!(rec.output.value.unwrap().mentions("x"));
    }

    #[test]
    fn constant_propagation_to_return() {
        let db = db_of("int f(void) { int a = 2; int b = a + 3; return b * 2; }");
        let f = db.function("f").unwrap();
        assert_eq!(f.records[0].output.value, Some(Sym::int(10)));
        assert_eq!(f.literal_returns(), vec![10]);
    }

    #[test]
    fn branch_conditions_recorded_per_path() {
        let db = db_of("int f(int x) {\n  if (x > 0)\n    return 1;\n  return 0;\n}");
        let f = db.function("f").unwrap();
        assert_eq!(f.records.len(), 2);
        for rec in &f.records {
            assert!(rec.checks_atom("x"));
            assert_eq!(rec.conditions().count(), 1);
        }
        assert_eq!(f.literal_returns(), vec![0, 1]);
    }

    #[test]
    fn member_lvalues_tracked() {
        let db = db_of(
            "struct page { int private; };\n\
             int f(struct page *page, int migratetype) {\n\
               page->private = migratetype;\n\
               page->private = 0;\n\
               return page->private;\n\
             }",
        );
        let f = db.function("f").unwrap();
        let rec = &f.records[0];
        let lvalues: Vec<&str> = rec
            .states()
            .map(|e| match e {
                Event::State { lvalue, .. } => lvalue.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lvalues, vec!["page->private", "page->private"]);
        assert_eq!(rec.output.value, Some(Sym::int(0)));
    }

    #[test]
    fn calls_recorded_with_assignment_target() {
        let db = db_of(
            "int g(int a);\n\
             int f(int x) {\n\
               int r = g(x);\n\
               if (r < 0)\n\
                 return -1;\n\
               return 0;\n\
             }",
        );
        let f = db.function("f").unwrap();
        let rec = &f.records[0];
        let call = rec.calls().next().unwrap();
        match call {
            Event::Call { callee, assigned_to, in_condition, arg_vars, .. } => {
                assert_eq!(callee, "g");
                assert_eq!(assigned_to.as_deref(), Some("r"));
                assert!(!in_condition);
                assert_eq!(arg_vars, &vec!["x".to_string()]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn call_inside_condition_flagged() {
        let db = db_of(
            "int ok(int a);\n\
             int f(int x) { if (ok(x)) return 1; return 0; }",
        );
        let f = db.function("f").unwrap();
        let call = f.records[0].calls().next().unwrap();
        assert!(matches!(call, Event::Call { in_condition: true, .. }));
    }

    #[test]
    fn compound_assignment_reads_lhs() {
        let db = db_of("int f(int x) { x |= 4; return x; }");
        let f = db.function("f").unwrap();
        let st = f.records[0].states().next().unwrap();
        match st {
            Event::State { lvalue, reads, .. } => {
                assert_eq!(lvalue, "x");
                assert!(reads.contains(&"x".to_string()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn increment_is_a_state_update() {
        let db = db_of("int f(int i) { i++; return i; }");
        let f = db.function("f").unwrap();
        assert_eq!(f.records[0].states().count(), 1);
    }

    #[test]
    fn ternary_condition_recorded() {
        let db = db_of("int f(int flag) { return flag ? 1 : 0; }");
        let f = db.function("f").unwrap();
        assert!(f.records[0].checks_atom("flag"));
    }

    #[test]
    fn summary_inlining_surfaces_callee_conditions() {
        let src = "int handle_fault(int err) {\n\
               if (err == -5)\n\
                 return 1;\n\
               return 0;\n\
             }\n\
             int f(int err) {\n\
               handle_fault(err);\n\
               return 0;\n\
             }";
        let db = db_of(src);
        let f = db.function("f").unwrap();
        // The callee's `err == -5` check appears at depth 1.
        let has_inlined_cond = f.records[0]
            .conditions()
            .any(|e| matches!(e, Event::Cond { depth: 1, vars, .. } if vars.iter().any(|v| v == "err")));
        assert!(has_inlined_cond);
        // With inlining disabled it does not.
        let ast = parse(src).unwrap();
        let db0 = extract(
            "test",
            &ast,
            src,
            &ExtractConfig { inline_depth: 0, ..ExtractConfig::default() },
        );
        let f0 = db0.function("f").unwrap();
        assert_eq!(f0.records[0].conditions().count(), 0);
    }

    #[test]
    fn recursive_functions_do_not_hang() {
        let db = db_of("int f(int x) { if (x) return f(x - 1); return 0; }");
        assert!(db.function("f").is_some());
    }

    #[test]
    fn switch_scrutinee_recorded() {
        let db = db_of(
            "int f(int mode) { switch (mode) { case 1: return 1; default: return 0; } }",
        );
        let f = db.function("f").unwrap();
        assert!(f.records.iter().all(|r| r.checks_atom("mode")));
        assert_eq!(f.records.len(), 2);
    }

    #[test]
    fn member_path_atoms_include_field_names() {
        let db = db_of(
            "struct q { struct t *rps_flow_table; };\n\
             int f(struct q *rxq) {\n\
               if (!rxq->rps_flow_table)\n\
                 return 1;\n\
               return 0;\n\
             }",
        );
        let f = db.function("f").unwrap();
        let rec = &f.records[0];
        assert!(rec.checks_atom("rps_flow_table"));
        assert!(rec.checks_atom("rxq->rps_flow_table"));
        assert!(rec.checks_atom("rxq"));
    }

    #[test]
    fn globals_default_to_symbolic_inputs() {
        let db = db_of(
            "int total_pages = 100;\n\
             int f(void) { return total_pages; }",
        );
        let f = db.function("f").unwrap();
        assert_eq!(f.records[0].output.value, Some(Sym::input("total_pages")));
    }

    #[test]
    fn for_loop_step_event_present() {
        let db = db_of("int f(void) { int s = 0; for (int i = 0; i < 2; i++) s += i; return s; }");
        let f = db.function("f").unwrap();
        // At least one path iterates and thus records the i++ state.
        let any_step = f
            .records
            .iter()
            .any(|r| r.states().any(|e| matches!(e, Event::State { lvalue, .. } if lvalue == "i")));
        assert!(any_step);
    }

    #[test]
    fn summary_cache_hit_counts_are_stable() {
        // Three call sites of the same callee at the same depth: the
        // first misses (and extracts `callee` once), the remaining two
        // hit the memo. The counts pin the insert-once protocol — a
        // regression that re-extracts per call site shows up as extra
        // misses, one that drops the placeholder shows up as a hang on
        // the recursive case below.
        let src = "int callee(int x) { if (x) return 1; return 0; }\n\
             int f(int a) {\n\
               callee(a);\n\
               callee(a);\n\
               callee(a);\n\
               return 0;\n\
             }";
        let ast = parse(src).unwrap();
        let mut fx = FunctionExtractor::new(&ast, src, &ExtractConfig::default());
        let _ = fx.extract_function("callee");
        let _ = fx.extract_function("f");
        assert_eq!(fx.summary_cache_stats(), (2, 1));

        // A self-recursive function: extracting `r` computes its own
        // summary once (the recursive call site inside sits at
        // remaining depth 0, where inlining is gated off, so it never
        // queries the cache), and `g`'s call site then reuses it.
        let src = "int r(int x) { if (x) return r(x - 1); return 0; }\n\
             int g(int a) { return r(a); }";
        let ast = parse(src).unwrap();
        let mut fx = FunctionExtractor::new(&ast, src, &ExtractConfig::default());
        let _ = fx.extract_function("r");
        let _ = fx.extract_function("g");
        let (hits, misses) = fx.summary_cache_stats();
        assert_eq!(misses, 1, "r's summary must be computed exactly once");
        assert_eq!(hits, 1, "g's call site must reuse r's cached summary");
    }
}
