//! Global string interner.
//!
//! Input, temporary, field, and callee names recur across every path of
//! every function in a unit — and across units, since kernel code keeps
//! re-using the same identifiers (`gfp_mask`, `ret`, `flags`). The
//! extractor used to `clone()` those `String`s into every event, every
//! environment binding, and every constraint key. [`Istr`] replaces
//! that with an interned `&'static str`: each distinct spelling is
//! leaked exactly once, handles are `Copy`, and equality is a pointer
//! comparison.
//!
//! The interner is process-global because interned names flow into
//! [`crate::Sym`] nodes that outlive any single extraction: they sit in
//! the engine's bounded unit cache, in persisted path databases, and
//! cross worker threads in the daemon. Memory grows with the number of
//! *distinct* identifiers seen, which is small and bounded by the
//! source under analysis.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned, immutable string. `Copy`, pointer-compared.
///
/// Two `Istr`s are equal iff their contents are equal: the interner
/// guarantees each distinct spelling has exactly one address, so `==`
/// is a single pointer comparison.
#[derive(Clone, Copy)]
pub struct Istr(&'static str);

fn interner() -> &'static Mutex<HashSet<&'static str>> {
    static INTERNER: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

impl Istr {
    /// Interns `s`, returning the canonical handle for its contents.
    pub fn new(s: &str) -> Istr {
        let mut set = interner().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = set.get(s) {
            return Istr(found);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        set.insert(leaked);
        Istr(leaked)
    }

    /// The interned contents.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Number of distinct strings interned so far (for diagnostics).
    pub fn interned_count() -> usize {
        interner().lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl PartialEq for Istr {
    fn eq(&self, other: &Istr) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Istr {}

// Hash the contents, not the address: addresses vary run to run (and
// with interning order), and hashing short identifiers is cheap. This
// keeps any `HashMap<Istr, _>` iteration order as deterministic as the
// old `String`-keyed maps were.
impl std::hash::Hash for Istr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Istr {
    fn partial_cmp(&self, other: &Istr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Istr {
    fn cmp(&self, other: &Istr) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl PartialEq<str> for Istr {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Istr {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl std::ops::Deref for Istr {
    type Target = str;
    fn deref(&self) -> &str {
        self.0
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Istr {
        Istr::new(s)
    }
}

impl From<&String> for Istr {
    fn from(s: &String) -> Istr {
        Istr::new(s)
    }
}

impl From<String> for Istr {
    fn from(s: String) -> Istr {
        Istr::new(&s)
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_contents_share_one_address() {
        let a = Istr::new("gfp_mask");
        // A dynamically built string must land on the same address as
        // the literal.
        let owned = String::from("gfp_") + "mask";
        let b = Istr::new(owned.as_str());
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_contents_are_unequal() {
        assert_ne!(Istr::new("a"), Istr::new("b"));
        assert_eq!(Istr::new("x"), *"x");
        assert!(Istr::new("x") == "x");
    }

    #[test]
    fn orders_and_hashes_by_contents() {
        use std::collections::HashMap;
        assert!(Istr::new("a") < Istr::new("b"));
        let mut m = HashMap::new();
        m.insert(Istr::new("k"), 1);
        assert_eq!(m.get(&Istr::new("k")), Some(&1));
    }
}
