//! # pallas-sym
//!
//! Symbolic path extraction for the Pallas fast-path checker. Every
//! bounded CFG path is interpreted over symbolic values (`S#` inputs,
//! `I#` integers, `V#` temporaries, `E#` call results — the notation of
//! the paper's Table 5) to produce an ordered event timeline; the set
//! of timelines for a merged translation unit is the *path database*
//! the twelve rule checkers run over.
//!
//! ```
//! use pallas_sym::{extract, ExtractConfig};
//! use pallas_lang::parse;
//!
//! # fn main() -> Result<(), pallas_lang::ParseError> {
//! let src = "int f(int x) { if (x) return 1; return 0; }";
//! let ast = parse(src)?;
//! let db = extract("demo", &ast, src, &ExtractConfig::default());
//! let f = db.function("f").expect("extracted");
//! assert_eq!(f.literal_returns(), vec![0, 1]);
//! # Ok(())
//! # }
//! ```

pub mod callgraph;
pub mod event;
pub mod extract;
pub mod feasible;
pub mod intern;
pub mod stats;
pub mod sym;
pub mod table5;

pub use callgraph::CallGraph;
pub use event::{Event, FunctionPaths, OutputRecord, PathDb, PathRecord};
pub use extract::{extract, ExtractConfig, FunctionExtractor};
pub use feasible::{path_feasibility, ConstraintSet, Feasibility, FeasibilityOracle};
pub use intern::Istr;
pub use stats::DbStats;
pub use sym::{arena_node_count, Sym, SymNode, MAX_SYM_NODES};
pub use table5::render_table5;
