//! Rendering a path in the paper's Table 5 format.
//!
//! Table 5 shows the symbolic extraction of one execution path as five
//! sections — `Input` (the user-supplied semantic facts), `Signature`,
//! `Condition`, `State`, and `Output` — with `L#` line numbers and the
//! `S#/I#/V#/E#` symbol notation.

use crate::event::{Event, FunctionPaths, PathRecord};
use pallas_spec::FastPathSpec;

/// Renders one path of `func` as a Table 5-style listing.
///
/// `spec` supplies the `Input` section (`@immutable`, `@cond`,
/// `@order`); pass a default spec to omit user facts.
pub fn render_table5(func: &FunctionPaths, record: &PathRecord, spec: &FastPathSpec) -> String {
    let mut out = String::new();
    let mut row = |section: &str, line: Option<u32>, text: &str| {
        match line {
            Some(l) => out.push_str(&format!("{section:<10} {l:>4}  {text}\n")),
            None => out.push_str(&format!("{section:<10}       {text}\n")),
        }
    };

    for imm in &spec.immutable {
        row("Input", None, &format!("@immutable = {imm}"));
    }
    for (i, c) in spec.conds.iter().enumerate() {
        row("Input", None, &format!("@cond{i} = {}", c.vars.join(", ")));
    }
    for (i, (a, b)) in spec.orders.iter().enumerate() {
        row("Input", None, &format!("@order{i} = @{a} < @{b}"));
    }

    row("Signature", Some(func.line), &func.signature);

    for e in &record.events {
        if let Event::Cond { line, symbolic, .. } = e {
            row("Condition", Some(*line), symbolic);
        }
    }
    for e in &record.events {
        match e {
            Event::State { line, lvalue, value, .. } => {
                row("State", Some(*line), &format!("{lvalue} = {value}"));
            }
            Event::Call { line, callee, assigned_to: Some(to), .. } => {
                row("State", Some(*line), &format!("{to} = (E#{callee}(...))"));
            }
            _ => {}
        }
    }

    row(
        "Output",
        Some(record.output.line),
        if record.output.text.is_empty() { "(void)" } else { &record.output.text },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractConfig};
    use pallas_lang::parse;

    #[test]
    fn table5_sections_present() {
        let src = "\
typedef unsigned int gfp_t;
int memalloc_noio_flags(gfp_t mask);
int __alloc_pages_slowpath(gfp_t mask);
int __alloc_pages_nodemask(gfp_t gfp_mask, int order) {
  int migratetype = 0;
  int alloc_flags = 0;
  if (order == 0) {
    gfp_mask = memalloc_noio_flags(gfp_mask);
    int page = __alloc_pages_slowpath(gfp_mask);
    return page;
  }
  return 0;
}
";
        let ast = parse(src).unwrap();
        let db = extract("mm", &ast, src, &ExtractConfig::default());
        let f = db.function("__alloc_pages_nodemask").unwrap();
        let spec = pallas_spec::FastPathSpec::new("mm")
            .with_immutable("gfp_mask")
            .with_cond("order0", &["order"]);
        let listing = render_table5(f, &f.records[0], &spec);
        assert!(listing.contains("@immutable = gfp_mask"), "{listing}");
        assert!(listing.contains("Signature"), "{listing}");
        assert!(listing.contains("__alloc_pages_nodemask"), "{listing}");
        assert!(listing.contains("Condition"), "{listing}");
        assert!(listing.contains("State"), "{listing}");
        assert!(listing.contains("Output"), "{listing}");
        // The immutable overwrite appears as a State row on gfp_mask.
        assert!(listing.contains("gfp_mask = "), "{listing}");
    }

    #[test]
    fn bare_return_renders_void() {
        let src = "void f(void) { return; }";
        let ast = parse(src).unwrap();
        let db = extract("u", &ast, src, &ExtractConfig::default());
        let f = db.function("f").unwrap();
        let listing = render_table5(f, &f.records[0], &pallas_spec::FastPathSpec::default());
        assert!(listing.contains("(void)"));
    }
}
