//! Path-feasibility checking: a lightweight abstract domain over the
//! [`Sym`] conditions collected along a path.
//!
//! The paper's §5.3 accuracy discussion attributes most false
//! positives to warnings reported on paths whose branch conditions can
//! never hold together (`x == 0` taken on one branch, `x != 0` taken
//! later with `x` untouched). This module decides, as conditions
//! accumulate, whether the set is *provably unsatisfiable* — and only
//! then. The verdict is deliberately one-sided:
//!
//! * [`Feasibility::Contradiction`] is a proof: under the extractor's
//!   symbolic semantics no assignment of the path's inputs satisfies
//!   every accumulated condition. Sources of proof are exactly the
//!   ones a three-fact domain can discharge — a condition that folds
//!   to a constant and disagrees with the taken arm, `x == k` against
//!   `x != k` or `x == k2`, and disjoint interval bounds on the same
//!   stable value.
//! * [`Feasibility::Feasible`] means "no contradiction found", not
//!   "satisfiable" — anything the domain does not understand
//!   (call results compared twice under different temporaries,
//!   bitwise conditions, relations between two inputs) is simply
//!   ignored.
//!
//! Facts are keyed by *stable values*: `Input` (the entry value
//! of a variable, fixed for the whole path) and `Temp` (a call
//! result bound once at its assignment point). Everything else is
//! unkeyed and contributes no facts. Soundness is therefore relative
//! to the extractor's memory model — distinct lvalue keys are assumed
//! not to alias, exactly as [`extract`](crate::extract) itself
//! assumes when it builds the symbolic environment the checkers see.
//!
//! With hash-consed values, key resolution is O(1): an `Input`'s
//! interned name *is* the fact key, and temporaries hit a small memo
//! of interned `V#n` spellings.
//!
//! [`FeasibilityOracle`] packages the domain as a
//! [`pallas_cfg::PathOracle`]: it re-interprets block statements with
//! a side-effect-free mirror of the extraction evaluator so each
//! branch condition is seen exactly as the extractor would render it,
//! and vetoes decision arms whose added constraint is contradictory —
//! pruning the whole doomed subtree before the `max_steps` /
//! `max_paths` budgets are spent on it.

use crate::intern::Istr;
use crate::sym::{Sym, SymNode};
use pallas_cfg::{summarize_loops, BlockId, Cfg, CounterDir, Decision, PathOracle, Terminator};
use pallas_lang::ast::{AssignOp, Ast, BinOp, ExprId, ExprKind, StmtKind, UnOp};
use pallas_lang::expr_to_string;
use std::collections::{BTreeSet, HashMap};

/// Verdict over a set of path conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// No contradiction was found (the set may still be unsatisfiable
    /// in ways the domain cannot see).
    Feasible,
    /// The condition set is provably unsatisfiable.
    Contradiction,
}

impl Feasibility {
    /// True for [`Feasibility::Contradiction`].
    pub fn is_contradiction(self) -> bool {
        matches!(self, Feasibility::Contradiction)
    }
}

/// Per-value facts: an optional exact value, a disequality set, and an
/// inclusive interval.
#[derive(Debug, Clone, Default, PartialEq)]
struct Facts {
    eq: Option<i64>,
    ne: Vec<i64>,
    lo: Option<i64>,
    hi: Option<i64>,
}

impl Facts {
    fn assert_eq(&mut self, k: i64) -> Feasibility {
        if self.eq.is_some_and(|e| e != k)
            || self.ne.contains(&k)
            || self.lo.is_some_and(|lo| lo > k)
            || self.hi.is_some_and(|hi| hi < k)
        {
            return Feasibility::Contradiction;
        }
        self.eq = Some(k);
        Feasibility::Feasible
    }

    fn assert_ne(&mut self, k: i64) -> Feasibility {
        if self.eq == Some(k) {
            return Feasibility::Contradiction;
        }
        if !self.ne.contains(&k) {
            self.ne.push(k);
        }
        // A new disequality can exhaust a narrow interval (`lo == hi`
        // is just the width-one case), so re-check the bounds.
        self.bounds_consistent()
    }

    /// `value >= k`.
    fn assert_ge(&mut self, k: i64) -> Feasibility {
        if let Some(e) = self.eq {
            return if e >= k { Feasibility::Feasible } else { Feasibility::Contradiction };
        }
        self.lo = Some(self.lo.map_or(k, |lo| lo.max(k)));
        self.bounds_consistent()
    }

    /// `value <= k`.
    fn assert_le(&mut self, k: i64) -> Feasibility {
        if let Some(e) = self.eq {
            return if e <= k { Feasibility::Feasible } else { Feasibility::Contradiction };
        }
        self.hi = Some(self.hi.map_or(k, |hi| hi.min(k)));
        self.bounds_consistent()
    }

    /// `value > k` / `value < k`, saturating at the i64 rim (where the
    /// strict comparison is unsatisfiable outright).
    fn assert_gt(&mut self, k: i64) -> Feasibility {
        match k.checked_add(1) {
            Some(k1) => self.assert_ge(k1),
            None => Feasibility::Contradiction,
        }
    }

    fn assert_lt(&mut self, k: i64) -> Feasibility {
        match k.checked_sub(1) {
            Some(k1) => self.assert_le(k1),
            None => Feasibility::Contradiction,
        }
    }

    fn bounds_consistent(&self) -> Feasibility {
        if let (Some(lo), Some(hi)) = (self.lo, self.hi) {
            if lo > hi {
                return Feasibility::Contradiction;
            }
            // The disequality set can exhaust the whole interval even
            // when `lo < hi` (e.g. bounds [5, 6] with 5 and 6 both
            // excluded). Only a window no wider than the set could be
            // exhausted, so the scan is bounded by `ne.len()`.
            let width = (hi as i128) - (lo as i128) + 1;
            if width <= self.ne.len() as i128 && (lo..=hi).all(|v| self.ne.contains(&v)) {
                return Feasibility::Contradiction;
            }
        }
        Feasibility::Feasible
    }
}

/// Bitmask of the orderings a key pair `(a, b)` may still stand in:
/// `a < b`, `a == b`, `a > b`. Relational facts intersect masks; an
/// empty intersection is a contradiction.
mod ord_mask {
    pub const LT: u8 = 1;
    pub const EQ: u8 = 2;
    pub const GT: u8 = 4;
    pub const ANY: u8 = LT | EQ | GT;

    /// The mask for `a OP b`.
    pub fn of(op: pallas_lang::ast::BinOp) -> Option<u8> {
        use pallas_lang::ast::BinOp;
        Some(match op {
            BinOp::Lt => LT,
            BinOp::Le => LT | EQ,
            BinOp::Gt => GT,
            BinOp::Ge => GT | EQ,
            BinOp::Eq => EQ,
            BinOp::Ne => LT | GT,
            _ => return None,
        })
    }

    /// The mask of `(b, a)` given the mask of `(a, b)`.
    pub fn mirror(mask: u8) -> u8 {
        (mask & EQ) | if mask & LT != 0 { GT } else { 0 } | if mask & GT != 0 { LT } else { 0 }
    }
}

/// One undo-stack entry: the previous state of whichever fact a
/// speculative assert touched.
#[derive(Debug)]
enum Undo {
    Fact(Istr, Option<Facts>),
    Rel((Istr, Istr), Option<u8>),
}

/// A set of accumulated path constraints with undo support, so a DFS
/// can speculatively add a decision's constraints and roll them back
/// when backtracking (or immediately, on a contradiction).
///
/// Facts come in two shapes: per-key [`Facts`] (interval, equality,
/// disequalities against constants) and pairwise *relational* facts —
/// an ordering mask between two stable keys, harvested from observed
/// `x OP y` comparisons. The relational layer is deliberately
/// non-transitive and does not exchange information with the interval
/// layer; it exists to catch direct reversals (`x < y` then `y < x`)
/// and to let loop-exit direction facts constrain havocked counters.
#[derive(Debug, Default)]
pub struct ConstraintSet {
    facts: HashMap<Istr, Facts>,
    /// Ordering masks per canonical (smaller, larger) key pair.
    rel: HashMap<(Istr, Istr), u8>,
    undo: Vec<Undo>,
}

impl ConstraintSet {
    /// An empty, everything-is-feasible set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// An undo mark; [`rollback`](ConstraintSet::rollback) to it to
    /// discard every constraint added since.
    pub fn mark(&self) -> usize {
        self.undo.len()
    }

    /// Restores the set to the state it had at `mark`.
    pub fn rollback(&mut self, mark: usize) {
        while self.undo.len() > mark {
            match self.undo.pop().expect("undo entry above mark") {
                Undo::Fact(key, Some(facts)) => {
                    self.facts.insert(key, facts);
                }
                Undo::Fact(key, None) => {
                    self.facts.remove(&key);
                }
                Undo::Rel(pair, Some(mask)) => {
                    self.rel.insert(pair, mask);
                }
                Undo::Rel(pair, None) => {
                    self.rel.remove(&pair);
                }
            }
        }
    }

    fn with_facts(
        &mut self,
        key: Istr,
        f: impl FnOnce(&mut Facts) -> Feasibility,
    ) -> Feasibility {
        self.undo.push(Undo::Fact(key, self.facts.get(&key).cloned()));
        f(self.facts.entry(key).or_default())
    }

    /// Intersects the ordering mask of `(ka, kb)` with `mask`.
    fn assume_rel(&mut self, ka: Istr, kb: Istr, mask: u8) -> Feasibility {
        if ka == kb {
            // A value always orders EQ against itself.
            return if mask & ord_mask::EQ != 0 {
                Feasibility::Feasible
            } else {
                Feasibility::Contradiction
            };
        }
        let (pair, mask) = if ka < kb {
            ((ka, kb), mask)
        } else {
            ((kb, ka), ord_mask::mirror(mask))
        };
        let prev = self.rel.get(&pair).copied();
        self.undo.push(Undo::Rel(pair, prev));
        let narrowed = prev.unwrap_or(ord_mask::ANY) & mask;
        self.rel.insert(pair, narrowed);
        if narrowed == 0 {
            Feasibility::Contradiction
        } else {
            Feasibility::Feasible
        }
    }

    /// Asserts that `cond` evaluated to a value whose truth equals
    /// `taken`, returning [`Feasibility::Contradiction`] iff the set
    /// thereby becomes provably unsatisfiable.
    ///
    /// On a contradiction the set may hold a partial update; callers
    /// are expected to [`rollback`](ConstraintSet::rollback) to a
    /// [`mark`](ConstraintSet::mark) taken before the call.
    pub fn assume(&mut self, cond: Sym, taken: bool) -> Feasibility {
        match cond.node() {
            // A constant condition is decided outright.
            SymNode::Int(v) => {
                if (*v != 0) == taken {
                    Feasibility::Feasible
                } else {
                    Feasibility::Contradiction
                }
            }
            // String literals are non-null, hence truthy.
            SymNode::Str(_) => {
                if taken {
                    Feasibility::Feasible
                } else {
                    Feasibility::Contradiction
                }
            }
            SymNode::Unary(UnOp::Not, a) => self.assume(*a, !taken),
            SymNode::Binary(op, a, b) => match (op, taken) {
                // `a && b` taken means both hold; `a || b` not taken
                // means neither holds. The disjunctive duals admit no
                // single fact and are skipped.
                (BinOp::And, true) => {
                    if self.assume(*a, true).is_contradiction() {
                        return Feasibility::Contradiction;
                    }
                    self.assume(*b, true)
                }
                (BinOp::Or, false) => {
                    if self.assume(*a, false).is_contradiction() {
                        return Feasibility::Contradiction;
                    }
                    self.assume(*b, false)
                }
                (BinOp::And, false) | (BinOp::Or, true) => Feasibility::Feasible,
                _ => self.assume_cmp(*op, *a, *b, taken),
            },
            // A bare stable value used as a truth value.
            _ => match key_of(cond) {
                Some(key) => self.with_facts(key, |f| {
                    if taken {
                        f.assert_ne(0)
                    } else {
                        f.assert_eq(0)
                    }
                }),
                None => Feasibility::Feasible,
            },
        }
    }

    /// Handles a (possibly negated) comparison between a stable value
    /// and an integer constant, or between two stable values;
    /// everything else contributes no facts.
    fn assume_cmp(&mut self, op: BinOp, a: Sym, b: Sym, taken: bool) -> Feasibility {
        // Two stable keys: a relational fact.
        if let (Some(ka), Some(kb)) = (key_of(a), key_of(b)) {
            // Fold the taken-arm negation into the operator.
            let op = if taken {
                op
            } else {
                match negate(op) {
                    Some(n) => n,
                    None => return Feasibility::Feasible,
                }
            };
            return match ord_mask::of(op) {
                Some(mask) => self.assume_rel(ka, kb, mask),
                None => Feasibility::Feasible,
            };
        }
        // Otherwise orient as `key OP constant`.
        let (key, op, k) = match (key_of(a), a.as_int(), key_of(b), b.as_int()) {
            (Some(key), _, _, Some(k)) => (key, op, k),
            (_, Some(k), Some(key), _) => match flip(op) {
                Some(flipped) => (key, flipped, k),
                None => return Feasibility::Feasible,
            },
            _ => return Feasibility::Feasible,
        };
        // Fold the taken-arm negation into the operator.
        let op = if taken {
            op
        } else {
            match negate(op) {
                Some(n) => n,
                None => return Feasibility::Feasible,
            }
        };
        self.with_facts(key, |f| match op {
            BinOp::Eq => f.assert_eq(k),
            BinOp::Ne => f.assert_ne(k),
            BinOp::Lt => f.assert_lt(k),
            BinOp::Le => f.assert_le(k),
            BinOp::Gt => f.assert_gt(k),
            BinOp::Ge => f.assert_ge(k),
            _ => Feasibility::Feasible,
        })
    }
}

/// Interned `V#n` spellings for small temporaries, so key resolution
/// allocates nothing on the hot path.
fn temp_key(n: u32) -> Istr {
    use std::sync::OnceLock;
    static SMALL: OnceLock<Vec<Istr>> = OnceLock::new();
    let table = SMALL.get_or_init(|| (0..64).map(|i| Istr::new(&format!("V#{i}"))).collect());
    match table.get(n as usize) {
        Some(&k) => k,
        None => Istr::new(&format!("V#{n}")),
    }
}

/// The constraint key of a stable symbolic value, if it has one.
/// `Input` names cannot contain `#`, so the `V#` temporary namespace
/// never collides with them.
fn key_of(sym: Sym) -> Option<Istr> {
    match sym.node() {
        SymNode::Input(name) => Some(*name),
        SymNode::Temp(n) => Some(temp_key(*n)),
        _ => None,
    }
}

/// Mirror-image of a comparison (`k OP x` → `x OP' k`).
fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Ne => BinOp::Ne,
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

/// Logical negation of a comparison.
fn negate(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Gt => BinOp::Le,
        BinOp::Le => BinOp::Gt,
        _ => return None,
    })
}

/// Convenience entry point: the verdict over a complete condition set
/// (each entry a condition value plus the arm that was taken).
pub fn path_feasibility(conds: &[(Sym, bool)]) -> Feasibility {
    let mut set = ConstraintSet::new();
    for &(cond, taken) in conds {
        if set.assume(cond, taken).is_contradiction() {
            return Feasibility::Contradiction;
        }
    }
    Feasibility::Feasible
}

/// One speculation frame of the oracle: every environment binding and
/// constraint added since the frame opened, so backtracking restores
/// both exactly.
#[derive(Debug)]
struct Frame {
    env_undo: Vec<(Istr, Option<Sym>)>,
    cons_mark: usize,
}

/// A natural loop as the oracle consumes it: the body for membership
/// tests, effect keys interned for environment comparison.
#[derive(Debug)]
struct OracleLoop {
    body: BTreeSet<BlockId>,
    may_write: BTreeSet<Istr>,
    counters: Vec<(Istr, CounterDir)>,
}

/// A [`PathOracle`] that vetoes provably infeasible decision arms.
///
/// The oracle mirrors the extraction evaluator's environment handling
/// (same lvalue keys, same constant folding, same call-temporary
/// convention) minus event recording, so each condition is judged on
/// the same symbolic value the extractor would later attach to the
/// path. State is fully speculative: every block entry and accepted
/// decision opens a [`Frame`] that is unwound when the DFS backtracks.
///
/// Decisions inside natural loops use the loop's effect summary
/// ([`summarize_loops`]): a condition that syntactically reads any
/// lvalue the surrounding loop may write is *transparent* — evaluated
/// for its environment effects but never constrained or vetoed.
/// Bounded unrolling deliberately emits concretely infeasible
/// loop-exit paths (`for (i = 0; i < 2; i++)` exits at the visit cap
/// with `i < 2` still folding true) as stand-ins for the deeper
/// iterations the cap cuts off; pruning those would leave a loop with
/// no paths at all. A condition reading only loop-*invariant* keys,
/// by contrast, has the same value on every iteration, so it asserts
/// and vetoes normally even inside the body. When a walked prefix
/// leaves a loop, every may-written key is havocked to a fresh
/// temporary (the missing iterations could have rebound it), with
/// monotone counters seeding a direction fact relating the havocked
/// value to the value the walked prefix reached.
///
/// Blanket transparency still applies to any block revisited on the
/// current prefix, covering irreducible cycles natural-loop detection
/// misses — and to every in-loop decision when summaries are disabled
/// ([`without_loop_summaries`](FeasibilityOracle::without_loop_summaries)).
pub struct FeasibilityOracle<'a> {
    ast: &'a Ast,
    env: HashMap<Istr, Sym>,
    frames: Vec<Frame>,
    cons: ConstraintSet,
    temp: u32,
    /// Natural-loop effect summaries, computed on first block entry.
    loops: Option<Vec<OracleLoop>>,
    /// Summary-aware asserting and loop-exit havoc; `false` restores
    /// the pre-summary blanket transparency.
    use_summaries: bool,
    /// Occurrences of each block on the current prefix.
    visits: HashMap<u32, usize>,
    /// The block prefix itself, for loop-exit detection.
    stack: Vec<BlockId>,
    /// Memoized lvalue keys (pure over the AST). A DFS re-enters the
    /// same blocks once per path prefix, so these hit constantly.
    lvalues: HashMap<ExprId, Option<Istr>>,
    /// Memoized per-expression syntactic read-key sets.
    reads: HashMap<ExprId, Vec<Istr>>,
    /// Memoized callee-name renderings.
    callees: HashMap<ExprId, Istr>,
}

impl<'a> FeasibilityOracle<'a> {
    /// An oracle for paths of functions in `ast`, with loop-summary
    /// reasoning enabled.
    pub fn new(ast: &'a Ast) -> Self {
        FeasibilityOracle {
            ast,
            env: HashMap::new(),
            frames: Vec::new(),
            cons: ConstraintSet::new(),
            temp: 0,
            loops: None,
            use_summaries: true,
            visits: HashMap::new(),
            stack: Vec::new(),
            lvalues: HashMap::new(),
            reads: HashMap::new(),
            callees: HashMap::new(),
        }
    }

    /// Disables loop-summary reasoning: every decision inside any
    /// natural-loop body is transparent and loop exits do not havoc.
    pub fn without_loop_summaries(mut self) -> Self {
        self.use_summaries = false;
        self
    }

    /// Whether a decision in `bb` over condition expression `cond`
    /// must not constrain or veto. Revisited blocks are always
    /// transparent (the irreducible-cycle fallback). In-loop
    /// decisions are transparent when summaries are off, or when the
    /// condition reads a key some surrounding loop may write — those
    /// conditions govern the unrolling approximation. In-loop
    /// conditions over invariant keys only, and all out-of-loop
    /// decisions, assert normally.
    fn transparent(&mut self, bb: BlockId, cond: ExprId) -> bool {
        if self.visits.get(&bb.0).copied().unwrap_or(0) > 1 {
            return true;
        }
        let in_loop =
            self.loops.as_ref().is_some_and(|ls| ls.iter().any(|l| l.body.contains(&bb)));
        if !in_loop {
            return false;
        }
        if !self.use_summaries {
            return true;
        }
        let keys = self.read_keys(cond);
        let loops = self.loops.as_ref().expect("in_loop checked above");
        loops
            .iter()
            .filter(|l| l.body.contains(&bb))
            .any(|l| keys.iter().any(|k| l.may_write.contains(k)))
    }

    /// The lvalue keys `e` syntactically reads, memoized.
    fn read_keys(&mut self, e: ExprId) -> Vec<Istr> {
        if let Some(k) = self.reads.get(&e) {
            return k.clone();
        }
        let ast = self.ast;
        let mut nodes = Vec::new();
        ast.walk_expr(e, &mut |id| nodes.push(id));
        let mut keys: Vec<Istr> = Vec::new();
        for id in nodes {
            if let Some(k) = self.lvalue_key(id) {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        self.reads.insert(e, keys.clone());
        keys
    }

    fn push_frame(&mut self) {
        self.frames.push(Frame { env_undo: Vec::new(), cons_mark: self.cons.mark() });
    }

    fn pop_frame(&mut self) {
        let frame = self.frames.pop().expect("balanced frame stack");
        for (key, prev) in frame.env_undo.into_iter().rev() {
            match prev {
                Some(v) => {
                    self.env.insert(key, v);
                }
                None => {
                    self.env.remove(&key);
                }
            }
        }
        self.cons.rollback(frame.cons_mark);
    }

    fn bind(&mut self, key: Istr, value: Sym) {
        let prev = self.env.insert(key, value);
        if let Some(frame) = self.frames.last_mut() {
            frame.env_undo.push((key, prev));
        }
    }

    fn lookup(&self, key: Istr) -> Sym {
        self.env.get(&key).copied().unwrap_or_else(|| Sym::input(key))
    }

    /// Canonical (interned) lvalue key — must match the extractor's
    /// keying. Memoized per expression.
    fn lvalue_key(&mut self, e: ExprId) -> Option<Istr> {
        if let Some(k) = self.lvalues.get(&e) {
            return *k;
        }
        let key = match &self.ast.expr(e).kind {
            ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index(..) => {
                Some(Istr::new(&expr_to_string(self.ast, e)))
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                self.lvalue_key(*inner).map(|k| Istr::new(&format!("*{k}")))
            }
            _ => None,
        };
        self.lvalues.insert(e, key);
        key
    }

    /// Call results are opaque: bound values become fresh temporaries,
    /// the extractor's `V#` convention.
    fn detemporalize_call(&mut self, value: Sym) -> Sym {
        if let SymNode::Call { .. } = value.node() {
            self.temp += 1;
            return Sym::temp(self.temp);
        }
        value
    }

    fn exec_stmt(&mut self, id: pallas_lang::StmtId) {
        let ast = self.ast;
        let stmt = ast.stmt(id);
        match &stmt.kind {
            StmtKind::Decl { name, init, .. } => match init {
                Some(e) => {
                    let value = self.eval(*e);
                    let value = self.detemporalize_call(value);
                    self.bind(Istr::new(name), value);
                }
                None => {
                    self.bind(Istr::new(name), Sym::unknown());
                }
            },
            StmtKind::Expr(e) => {
                self.eval(*e);
            }
            _ => {}
        }
    }

    /// The extraction evaluator minus event recording; see
    /// [`crate::extract`]. Divergence here would make the oracle judge
    /// a different condition value than the extractor later records,
    /// so every arm mirrors `Evaluator::eval` exactly.
    fn eval(&mut self, e: ExprId) -> Sym {
        let ast = self.ast;
        match &ast.expr(e).kind {
            ExprKind::Int(v) => Sym::int(*v),
            ExprKind::Str(s) => Sym::str_lit(s.as_str()),
            ExprKind::Ident(_) => {
                let key = self.lvalue_key(e).expect("identifiers are lvalues");
                self.lookup(key)
            }
            ExprKind::Unary(op, inner) => {
                let (op, inner) = (*op, *inner);
                if op.mutates() {
                    let value = self.eval(inner);
                    if let Some(key) = self.lvalue_key(inner) {
                        let delta = if matches!(op, UnOp::PreInc | UnOp::PostInc) { 1 } else { -1 };
                        let new = Sym::binary(BinOp::Add, value, Sym::int(delta));
                        self.bind(key, new);
                        return match op {
                            UnOp::PostInc | UnOp::PostDec => value,
                            _ => new,
                        };
                    }
                    return Sym::unknown();
                }
                if matches!(op, UnOp::Addr) {
                    self.eval(inner);
                    return Sym::unknown();
                }
                let v = self.eval(inner);
                if matches!(op, UnOp::Deref) {
                    return match self.lvalue_key(e) {
                        Some(key) => self.lookup(key),
                        None => Sym::unknown(),
                    };
                }
                Sym::unary(op, v)
            }
            ExprKind::Binary(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let va = self.eval(a);
                let vb = self.eval(b);
                Sym::binary(op, va, vb)
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let (op, lhs, rhs) = (*op, *lhs, *rhs);
                let rhs_value = self.eval(rhs);
                let key = match self.lvalue_key(lhs) {
                    Some(k) => k,
                    None => return Sym::unknown(),
                };
                let value = match op {
                    AssignOp::Assign => rhs_value,
                    AssignOp::Compound(bin) => {
                        let cur = self.lookup(key);
                        Sym::binary(bin, cur, rhs_value)
                    }
                };
                let value = self.detemporalize_call(value);
                self.bind(key, value);
                value
            }
            ExprKind::Ternary(c, t, el) => {
                let (c, t, el) = (*c, *t, *el);
                self.eval(c);
                let tv = self.eval(t);
                let ev = self.eval(el);
                if tv == ev {
                    tv
                } else {
                    Sym::unknown()
                }
            }
            ExprKind::Call { callee, args } => {
                let callee_name = match self.callees.get(callee) {
                    Some(&n) => n,
                    None => {
                        let n = Istr::new(&expr_to_string(ast, *callee));
                        self.callees.insert(*callee, n);
                        n
                    }
                };
                let mut arg_syms = Vec::with_capacity(args.len());
                for &a in args {
                    arg_syms.push(self.eval(a));
                }
                Sym::call(callee_name, arg_syms)
            }
            ExprKind::Member { base, .. } => {
                let base = *base;
                self.eval(base);
                match self.lvalue_key(e) {
                    Some(key) => self.lookup(key),
                    None => Sym::unknown(),
                }
            }
            ExprKind::Index(b, i) => {
                let (b, i) = (*b, *i);
                self.eval(b);
                self.eval(i);
                match self.lvalue_key(e) {
                    Some(key) => self.lookup(key),
                    None => Sym::unknown(),
                }
            }
            ExprKind::Cast(_, inner) => self.eval(*inner),
            ExprKind::SizeofType(ty) => Sym::input(format!("sizeof({ty})")),
            ExprKind::SizeofExpr(inner) => {
                self.eval(*inner);
                Sym::unknown()
            }
            ExprKind::Comma(a, b) => {
                let (a, b) = (*a, *b);
                self.eval(a);
                self.eval(b)
            }
        }
    }

    /// Havocs every key the loops left between `prev` and `bb` may
    /// have written: the walked prefix ran the body a bounded number
    /// of times, so post-loop state must not depend on those exact
    /// bindings. Each key gets a fresh temporary; monotone counters
    /// additionally seed a direction fact.
    fn havoc_loop_exits(&mut self, prev: BlockId, bb: BlockId) {
        let Some(loops) = &self.loops else { return };
        let mut writes: BTreeSet<Istr> = BTreeSet::new();
        let mut counters: Vec<(Istr, CounterDir)> = Vec::new();
        for l in loops {
            if l.body.contains(&prev) && !l.body.contains(&bb) {
                writes.extend(l.may_write.iter().copied());
                for &(k, d) in &l.counters {
                    if !counters.iter().any(|&(ck, _)| ck == k) {
                        counters.push((k, d));
                    }
                }
            }
        }
        for key in writes {
            let pre = self.lookup(key);
            self.temp += 1;
            let post = Sym::temp(self.temp);
            self.bind(key, post);
            if let Some(&(_, dir)) = counters.iter().find(|&&(k, _)| k == key) {
                self.seed_direction_fact(pre, post, dir);
            }
        }
    }

    /// Relates a havocked monotone counter to the value the walked
    /// prefix reached: the iterations the havoc stands in for can
    /// only move the counter further in its single update's
    /// direction, so `post >= pre` (increasing) or `post <= pre`
    /// (decreasing). Constant-step terms of the counter's own
    /// direction peel off `pre` (a weaker bound is still a bound);
    /// anything else contributes no fact.
    fn seed_direction_fact(&mut self, pre: Sym, post: Sym, dir: CounterDir) {
        let up = matches!(dir, CounterDir::Increasing);
        let mut base = pre;
        loop {
            match base.node() {
                SymNode::Int(_) | SymNode::Input(_) | SymNode::Temp(_) => break,
                SymNode::Binary(BinOp::Add, a, b) => {
                    if let Some(c) = b.as_int() {
                        if (c >= 0) == up {
                            base = *a;
                            continue;
                        }
                    }
                    if let Some(c) = a.as_int() {
                        if (c >= 0) == up {
                            base = *b;
                            continue;
                        }
                    }
                    return;
                }
                _ => return,
            }
        }
        let cmp = if up {
            Sym::binary_raw(BinOp::Ge, post, base)
        } else {
            Sym::binary_raw(BinOp::Le, post, base)
        };
        // `post` is a fresh temporary with no prior facts, so this
        // can only narrow, never contradict.
        let _ = self.cons.assume(cmp, true);
    }

    /// Asserts one decision's constraint; `false` means contradiction.
    fn decide(&mut self, cfg: &Cfg, d: &Decision) -> bool {
        // Transparent decisions still evaluate their condition (the
        // extractor does, and side effects like `if (x++)` must carry
        // into the subtree) but assert nothing and never veto.
        match d {
            Decision::Branch { cond, taken, .. } => {
                let transparent = self.transparent(d.block(), *cond);
                let sym = self.eval(*cond);
                if transparent {
                    return true;
                }
                !self.cons.assume(sym, *taken).is_contradiction()
            }
            Decision::Switch { scrutinee, case, block } => {
                let transparent = self.transparent(d.block(), *scrutinee);
                let s = self.eval(*scrutinee);
                if transparent {
                    return true;
                }
                match case {
                    // A matched arm pins the scrutinee to the case value.
                    Some(c) => {
                        let k = self.eval(*c);
                        let eq = Sym::binary(BinOp::Eq, s, k);
                        !self.cons.assume(eq, true).is_contradiction()
                    }
                    // The default arm excludes every constant case value.
                    None => {
                        if let Terminator::Switch { cases, .. } = &cfg.block(*block).term {
                            for &(value, _) in cases {
                                let k = self.eval(value);
                                let ne = Sym::binary(BinOp::Eq, s, k);
                                if self.cons.assume(ne, false).is_contradiction() {
                                    return false;
                                }
                            }
                        }
                        true
                    }
                }
            }
        }
    }
}

impl PathOracle for FeasibilityOracle<'_> {
    fn enter_block(&mut self, cfg: &Cfg, bb: BlockId) {
        if self.loops.is_none() {
            let loops = summarize_loops(self.ast, cfg)
                .into_iter()
                .map(|l| OracleLoop {
                    body: l.body,
                    may_write: l.may_write.iter().map(|s| Istr::new(s)).collect(),
                    counters: l.counters.iter().map(|(k, d)| (Istr::new(k), *d)).collect(),
                })
                .collect();
            self.loops = Some(loops);
        }
        *self.visits.entry(bb.0).or_insert(0) += 1;
        self.push_frame();
        // Havoc inside the new block's frame so backtracking out of
        // `bb` restores the pre-havoc environment and facts.
        if self.use_summaries {
            if let Some(&prev) = self.stack.last() {
                self.havoc_loop_exits(prev, bb);
            }
        }
        self.stack.push(bb);
        let block = cfg.block(bb);
        for &stmt in &block.stmts {
            self.exec_stmt(stmt);
        }
        for &(b, step) in &cfg.step_exprs {
            if b == bb {
                self.eval(step);
            }
        }
    }

    fn push_decision(&mut self, cfg: &Cfg, d: &Decision) -> bool {
        self.push_frame();
        if self.decide(cfg, d) {
            true
        } else {
            // Restore both the environment (condition side effects)
            // and the constraint set before declining the arm.
            self.pop_frame();
            false
        }
    }

    fn pop_decision(&mut self) {
        self.pop_frame();
    }

    fn leave_block(&mut self, _cfg: &Cfg, bb: BlockId) {
        if let Some(count) = self.visits.get_mut(&bb.0) {
            *count -= 1;
        }
        self.stack.pop();
        self.pop_frame();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: &str) -> Sym {
        Sym::input(n)
    }

    fn cmp(op: BinOp, a: Sym, k: i64) -> Sym {
        Sym::binary_raw(op, a, Sym::int(k))
    }

    #[test]
    fn empty_set_is_feasible() {
        assert_eq!(path_feasibility(&[]), Feasibility::Feasible);
    }

    #[test]
    fn constant_condition_contradicts_wrong_arm() {
        assert_eq!(path_feasibility(&[(Sym::int(0), true)]), Feasibility::Contradiction);
        assert_eq!(path_feasibility(&[(Sym::int(1), false)]), Feasibility::Contradiction);
        assert_eq!(path_feasibility(&[(Sym::int(7), true)]), Feasibility::Feasible);
        assert_eq!(path_feasibility(&[(Sym::int(0), false)]), Feasibility::Feasible);
    }

    #[test]
    fn eq_vs_ne_contradicts() {
        let conds = [(cmp(BinOp::Eq, input("x"), 3), true), (cmp(BinOp::Ne, input("x"), 3), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Same thing via arm polarity: `x == 3` taken then not taken.
        let conds = [(cmp(BinOp::Eq, input("x"), 3), true), (cmp(BinOp::Eq, input("x"), 3), false)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn two_distinct_equalities_contradict() {
        let conds = [(cmp(BinOp::Eq, input("x"), 1), true), (cmp(BinOp::Eq, input("x"), 2), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Distinct variables are independent.
        let conds = [(cmp(BinOp::Eq, input("x"), 1), true), (cmp(BinOp::Eq, input("y"), 2), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn disjoint_intervals_contradict() {
        let conds = [(cmp(BinOp::Lt, input("x"), 0), true), (cmp(BinOp::Gt, input("x"), 10), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(cmp(BinOp::Ge, input("x"), 5), true), (cmp(BinOp::Le, input("x"), 4), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Touching intervals are satisfiable (x == 5).
        let conds = [(cmp(BinOp::Ge, input("x"), 5), true), (cmp(BinOp::Le, input("x"), 5), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn equality_outside_interval_contradicts() {
        let conds = [(cmp(BinOp::Lt, input("x"), 0), true), (cmp(BinOp::Eq, input("x"), 3), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(cmp(BinOp::Eq, input("x"), 3), true), (cmp(BinOp::Gt, input("x"), 7), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn constant_on_the_left_is_oriented() {
        // `0 < x` then `x <= 0`.
        let conds = [
            (Sym::binary_raw(BinOp::Lt, Sym::int(0), input("x")), true),
            (cmp(BinOp::Le, input("x"), 0), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn bare_truth_values_constrain_to_zero_or_nonzero() {
        let conds = [(input("flag"), false), (cmp(BinOp::Eq, input("flag"), 1), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(input("flag"), true), (cmp(BinOp::Eq, input("flag"), 0), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(input("flag"), true), (cmp(BinOp::Eq, input("flag"), 1), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn negation_and_conjunction_decompose() {
        // `!(x)` taken == `x == 0`; then `x != 0` contradicts.
        let conds = [
            (Sym::unary_raw(UnOp::Not, input("x")), true),
            (cmp(BinOp::Ne, input("x"), 0), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // `a > 0 && a < 0` taken is contradictory on its own.
        let and = Sym::binary_raw(
            BinOp::And,
            cmp(BinOp::Gt, input("a"), 0),
            cmp(BinOp::Lt, input("a"), 0),
        );
        assert_eq!(path_feasibility(&[(and, true)]), Feasibility::Contradiction);
        // ...but not-taken tells us nothing certain.
        assert_eq!(path_feasibility(&[(and, false)]), Feasibility::Feasible);
        // `a || b` not taken pins both to zero.
        let or = Sym::binary_raw(BinOp::Or, input("a"), input("b"));
        let conds = [(or, false), (cmp(BinOp::Ne, input("a"), 0), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn temporaries_are_stable_values() {
        // `r = g(); if (r < 0) ... if (r >= 0)` — both conditions see
        // the same V#1.
        let conds =
            [(cmp(BinOp::Lt, Sym::temp(1), 0), true), (cmp(BinOp::Ge, Sym::temp(1), 0), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn opaque_conditions_contribute_nothing() {
        let call = Sym::call("f", vec![input("x")]);
        let conds = [
            (cmp(BinOp::Lt, call, 0), true),
            (cmp(BinOp::Ge, call, 0), true),
            (Sym::unknown(), true),
            (Sym::unknown(), false),
            (cmp(BinOp::BitAnd, input("m"), 16), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn i64_rim_strict_comparisons_are_unsatisfiable() {
        assert_eq!(
            path_feasibility(&[(cmp(BinOp::Lt, input("x"), i64::MIN), true)]),
            Feasibility::Contradiction
        );
        assert_eq!(
            path_feasibility(&[(cmp(BinOp::Gt, input("x"), i64::MAX), true)]),
            Feasibility::Contradiction
        );
        // Non-strict rim bounds are fine.
        assert_eq!(
            path_feasibility(&[(cmp(BinOp::Le, input("x"), i64::MIN), true)]),
            Feasibility::Feasible
        );
    }

    #[test]
    fn rollback_restores_prior_facts() {
        let mut set = ConstraintSet::new();
        assert!(!set.assume(cmp(BinOp::Eq, input("x"), 1), true).is_contradiction());
        let mark = set.mark();
        assert!(set.assume(cmp(BinOp::Eq, input("x"), 2), true).is_contradiction());
        set.rollback(mark);
        // `x == 1` is still in force; `x != 1` must now contradict.
        assert!(set.assume(cmp(BinOp::Ne, input("x"), 1), true).is_contradiction());
        set.rollback(mark);
        assert!(!set.assume(cmp(BinOp::Eq, input("x"), 1), true).is_contradiction());
    }

    #[test]
    fn interval_chain_narrows_to_contradiction() {
        let conds = [
            (cmp(BinOp::Ge, input("n"), 0), true),
            (cmp(BinOp::Le, input("n"), 10), true),
            (cmp(BinOp::Gt, input("n"), 4), true),
            (cmp(BinOp::Lt, input("n"), 5), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    fn rel(op: BinOp, a: Sym, b: Sym) -> Sym {
        Sym::binary_raw(op, a, b)
    }

    #[test]
    fn relational_cycle_contradicts() {
        // `x < y` and `y < x` cannot both hold.
        let conds =
            [(rel(BinOp::Lt, input("x"), input("y")), true), (rel(BinOp::Lt, input("y"), input("x")), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // `x < y` with `x > y` via the mirrored orientation.
        let conds =
            [(rel(BinOp::Lt, input("x"), input("y")), true), (rel(BinOp::Gt, input("x"), input("y")), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn antisymmetry_pins_equality() {
        // `x <= y`, `y <= x` forces `x == y`; `x != y` then contradicts.
        let conds = [
            (rel(BinOp::Le, input("x"), input("y")), true),
            (rel(BinOp::Le, input("y"), input("x")), true),
            (rel(BinOp::Ne, input("x"), input("y")), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Without the `!=`, the pair is satisfiable.
        let conds = [
            (rel(BinOp::Le, input("x"), input("y")), true),
            (rel(BinOp::Le, input("y"), input("x")), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn reflexive_strict_comparison_contradicts() {
        assert_eq!(
            path_feasibility(&[(rel(BinOp::Lt, input("x"), input("x")), true)]),
            Feasibility::Contradiction
        );
        assert_eq!(
            path_feasibility(&[(rel(BinOp::Ne, input("x"), input("x")), true)]),
            Feasibility::Contradiction
        );
        assert_eq!(
            path_feasibility(&[(rel(BinOp::Le, input("x"), input("x")), true)]),
            Feasibility::Feasible
        );
    }

    #[test]
    fn relational_eq_vs_ne_contradicts() {
        let conds = [
            (rel(BinOp::Eq, input("x"), input("y")), true),
            (rel(BinOp::Ne, input("x"), input("y")), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Arm polarity spells the same thing.
        let conds = [
            (rel(BinOp::Eq, input("x"), input("y")), true),
            (rel(BinOp::Eq, input("x"), input("y")), false),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn relational_facts_roll_back() {
        let mut set = ConstraintSet::new();
        let mark = set.mark();
        assert!(!set.assume(rel(BinOp::Lt, input("x"), input("y")), true).is_contradiction());
        assert!(set.assume(rel(BinOp::Gt, input("x"), input("y")), true).is_contradiction());
        set.rollback(mark);
        // After rollback `x > y` must be freely assumable again.
        assert!(!set.assume(rel(BinOp::Gt, input("x"), input("y")), true).is_contradiction());
    }

    #[test]
    fn ne_exhaustion_closes_narrow_intervals() {
        // `5 <= x <= 6` with both residents excluded is unsatisfiable —
        // the pre-fix check only caught the width-one (`lo == hi`) case.
        let conds = [
            (cmp(BinOp::Ge, input("x"), 5), true),
            (cmp(BinOp::Le, input("x"), 6), true),
            (cmp(BinOp::Ne, input("x"), 5), true),
            (cmp(BinOp::Ne, input("x"), 6), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Excluding only one resident leaves the other.
        let conds = [
            (cmp(BinOp::Ge, input("x"), 5), true),
            (cmp(BinOp::Le, input("x"), 6), true),
            (cmp(BinOp::Ne, input("x"), 5), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
        // Order independence: exclusions first, bounds second.
        let conds = [
            (cmp(BinOp::Ne, input("x"), 5), true),
            (cmp(BinOp::Ne, input("x"), 6), true),
            (cmp(BinOp::Ge, input("x"), 5), true),
            (cmp(BinOp::Le, input("x"), 6), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }
}
