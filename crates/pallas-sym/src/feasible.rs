//! Path-feasibility checking: a lightweight abstract domain over the
//! [`Sym`] conditions collected along a path.
//!
//! The paper's §5.3 accuracy discussion attributes most false
//! positives to warnings reported on paths whose branch conditions can
//! never hold together (`x == 0` taken on one branch, `x != 0` taken
//! later with `x` untouched). This module decides, as conditions
//! accumulate, whether the set is *provably unsatisfiable* — and only
//! then. The verdict is deliberately one-sided:
//!
//! * [`Feasibility::Contradiction`] is a proof: under the extractor's
//!   symbolic semantics no assignment of the path's inputs satisfies
//!   every accumulated condition. Sources of proof are exactly the
//!   ones a three-fact domain can discharge — a condition that folds
//!   to a constant and disagrees with the taken arm, `x == k` against
//!   `x != k` or `x == k2`, and disjoint interval bounds on the same
//!   stable value.
//! * [`Feasibility::Feasible`] means "no contradiction found", not
//!   "satisfiable" — anything the domain does not understand
//!   (call results compared twice under different temporaries,
//!   bitwise conditions, relations between two inputs) is simply
//!   ignored.
//!
//! Facts are keyed by *stable values*: `Input` (the entry value
//! of a variable, fixed for the whole path) and `Temp` (a call
//! result bound once at its assignment point). Everything else is
//! unkeyed and contributes no facts. Soundness is therefore relative
//! to the extractor's memory model — distinct lvalue keys are assumed
//! not to alias, exactly as [`extract`](crate::extract) itself
//! assumes when it builds the symbolic environment the checkers see.
//!
//! With hash-consed values, key resolution is O(1): an `Input`'s
//! interned name *is* the fact key, and temporaries hit a small memo
//! of interned `V#n` spellings.
//!
//! [`FeasibilityOracle`] packages the domain as a
//! [`pallas_cfg::PathOracle`]: it re-interprets block statements with
//! a side-effect-free mirror of the extraction evaluator so each
//! branch condition is seen exactly as the extractor would render it,
//! and vetoes decision arms whose added constraint is contradictory —
//! pruning the whole doomed subtree before the `max_steps` /
//! `max_paths` budgets are spent on it.

use crate::intern::Istr;
use crate::sym::{Sym, SymNode};
use pallas_cfg::{find_loops, BlockId, Cfg, Decision, PathOracle, Terminator};
use pallas_lang::ast::{AssignOp, Ast, BinOp, ExprId, ExprKind, StmtKind, UnOp};
use pallas_lang::expr_to_string;
use std::collections::{BTreeSet, HashMap};

/// Verdict over a set of path conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// No contradiction was found (the set may still be unsatisfiable
    /// in ways the domain cannot see).
    Feasible,
    /// The condition set is provably unsatisfiable.
    Contradiction,
}

impl Feasibility {
    /// True for [`Feasibility::Contradiction`].
    pub fn is_contradiction(self) -> bool {
        matches!(self, Feasibility::Contradiction)
    }
}

/// Per-value facts: an optional exact value, a disequality set, and an
/// inclusive interval.
#[derive(Debug, Clone, Default, PartialEq)]
struct Facts {
    eq: Option<i64>,
    ne: Vec<i64>,
    lo: Option<i64>,
    hi: Option<i64>,
}

impl Facts {
    fn assert_eq(&mut self, k: i64) -> Feasibility {
        if self.eq.is_some_and(|e| e != k)
            || self.ne.contains(&k)
            || self.lo.is_some_and(|lo| lo > k)
            || self.hi.is_some_and(|hi| hi < k)
        {
            return Feasibility::Contradiction;
        }
        self.eq = Some(k);
        Feasibility::Feasible
    }

    fn assert_ne(&mut self, k: i64) -> Feasibility {
        if self.eq == Some(k) || (self.lo == Some(k) && self.hi == Some(k)) {
            return Feasibility::Contradiction;
        }
        if !self.ne.contains(&k) {
            self.ne.push(k);
        }
        Feasibility::Feasible
    }

    /// `value >= k`.
    fn assert_ge(&mut self, k: i64) -> Feasibility {
        if let Some(e) = self.eq {
            return if e >= k { Feasibility::Feasible } else { Feasibility::Contradiction };
        }
        self.lo = Some(self.lo.map_or(k, |lo| lo.max(k)));
        self.bounds_consistent()
    }

    /// `value <= k`.
    fn assert_le(&mut self, k: i64) -> Feasibility {
        if let Some(e) = self.eq {
            return if e <= k { Feasibility::Feasible } else { Feasibility::Contradiction };
        }
        self.hi = Some(self.hi.map_or(k, |hi| hi.min(k)));
        self.bounds_consistent()
    }

    /// `value > k` / `value < k`, saturating at the i64 rim (where the
    /// strict comparison is unsatisfiable outright).
    fn assert_gt(&mut self, k: i64) -> Feasibility {
        match k.checked_add(1) {
            Some(k1) => self.assert_ge(k1),
            None => Feasibility::Contradiction,
        }
    }

    fn assert_lt(&mut self, k: i64) -> Feasibility {
        match k.checked_sub(1) {
            Some(k1) => self.assert_le(k1),
            None => Feasibility::Contradiction,
        }
    }

    fn bounds_consistent(&self) -> Feasibility {
        if let (Some(lo), Some(hi)) = (self.lo, self.hi) {
            if lo > hi || (lo == hi && self.ne.contains(&lo)) {
                return Feasibility::Contradiction;
            }
        }
        Feasibility::Feasible
    }
}

/// A set of accumulated path constraints with undo support, so a DFS
/// can speculatively add a decision's constraints and roll them back
/// when backtracking (or immediately, on a contradiction).
#[derive(Debug, Default)]
pub struct ConstraintSet {
    facts: HashMap<Istr, Facts>,
    undo: Vec<(Istr, Option<Facts>)>,
}

impl ConstraintSet {
    /// An empty, everything-is-feasible set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// An undo mark; [`rollback`](ConstraintSet::rollback) to it to
    /// discard every constraint added since.
    pub fn mark(&self) -> usize {
        self.undo.len()
    }

    /// Restores the set to the state it had at `mark`.
    pub fn rollback(&mut self, mark: usize) {
        while self.undo.len() > mark {
            let (key, prev) = self.undo.pop().expect("undo entry above mark");
            match prev {
                Some(facts) => {
                    self.facts.insert(key, facts);
                }
                None => {
                    self.facts.remove(&key);
                }
            }
        }
    }

    fn with_facts(
        &mut self,
        key: Istr,
        f: impl FnOnce(&mut Facts) -> Feasibility,
    ) -> Feasibility {
        self.undo.push((key, self.facts.get(&key).cloned()));
        f(self.facts.entry(key).or_default())
    }

    /// Asserts that `cond` evaluated to a value whose truth equals
    /// `taken`, returning [`Feasibility::Contradiction`] iff the set
    /// thereby becomes provably unsatisfiable.
    ///
    /// On a contradiction the set may hold a partial update; callers
    /// are expected to [`rollback`](ConstraintSet::rollback) to a
    /// [`mark`](ConstraintSet::mark) taken before the call.
    pub fn assume(&mut self, cond: Sym, taken: bool) -> Feasibility {
        match cond.node() {
            // A constant condition is decided outright.
            SymNode::Int(v) => {
                if (*v != 0) == taken {
                    Feasibility::Feasible
                } else {
                    Feasibility::Contradiction
                }
            }
            // String literals are non-null, hence truthy.
            SymNode::Str(_) => {
                if taken {
                    Feasibility::Feasible
                } else {
                    Feasibility::Contradiction
                }
            }
            SymNode::Unary(UnOp::Not, a) => self.assume(*a, !taken),
            SymNode::Binary(op, a, b) => match (op, taken) {
                // `a && b` taken means both hold; `a || b` not taken
                // means neither holds. The disjunctive duals admit no
                // single fact and are skipped.
                (BinOp::And, true) => {
                    if self.assume(*a, true).is_contradiction() {
                        return Feasibility::Contradiction;
                    }
                    self.assume(*b, true)
                }
                (BinOp::Or, false) => {
                    if self.assume(*a, false).is_contradiction() {
                        return Feasibility::Contradiction;
                    }
                    self.assume(*b, false)
                }
                (BinOp::And, false) | (BinOp::Or, true) => Feasibility::Feasible,
                _ => self.assume_cmp(*op, *a, *b, taken),
            },
            // A bare stable value used as a truth value.
            _ => match key_of(cond) {
                Some(key) => self.with_facts(key, |f| {
                    if taken {
                        f.assert_ne(0)
                    } else {
                        f.assert_eq(0)
                    }
                }),
                None => Feasibility::Feasible,
            },
        }
    }

    /// Handles a (possibly negated) comparison between a stable value
    /// and an integer constant; everything else contributes no facts.
    fn assume_cmp(&mut self, op: BinOp, a: Sym, b: Sym, taken: bool) -> Feasibility {
        // Orient as `key OP constant`.
        let (key, op, k) = match (key_of(a), a.as_int(), key_of(b), b.as_int()) {
            (Some(key), _, _, Some(k)) => (key, op, k),
            (_, Some(k), Some(key), _) => match flip(op) {
                Some(flipped) => (key, flipped, k),
                None => return Feasibility::Feasible,
            },
            _ => return Feasibility::Feasible,
        };
        // Fold the taken-arm negation into the operator.
        let op = if taken {
            op
        } else {
            match negate(op) {
                Some(n) => n,
                None => return Feasibility::Feasible,
            }
        };
        self.with_facts(key, |f| match op {
            BinOp::Eq => f.assert_eq(k),
            BinOp::Ne => f.assert_ne(k),
            BinOp::Lt => f.assert_lt(k),
            BinOp::Le => f.assert_le(k),
            BinOp::Gt => f.assert_gt(k),
            BinOp::Ge => f.assert_ge(k),
            _ => Feasibility::Feasible,
        })
    }
}

/// Interned `V#n` spellings for small temporaries, so key resolution
/// allocates nothing on the hot path.
fn temp_key(n: u32) -> Istr {
    use std::sync::OnceLock;
    static SMALL: OnceLock<Vec<Istr>> = OnceLock::new();
    let table = SMALL.get_or_init(|| (0..64).map(|i| Istr::new(&format!("V#{i}"))).collect());
    match table.get(n as usize) {
        Some(&k) => k,
        None => Istr::new(&format!("V#{n}")),
    }
}

/// The constraint key of a stable symbolic value, if it has one.
/// `Input` names cannot contain `#`, so the `V#` temporary namespace
/// never collides with them.
fn key_of(sym: Sym) -> Option<Istr> {
    match sym.node() {
        SymNode::Input(name) => Some(*name),
        SymNode::Temp(n) => Some(temp_key(*n)),
        _ => None,
    }
}

/// Mirror-image of a comparison (`k OP x` → `x OP' k`).
fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Ne => BinOp::Ne,
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

/// Logical negation of a comparison.
fn negate(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Gt => BinOp::Le,
        BinOp::Le => BinOp::Gt,
        _ => return None,
    })
}

/// Convenience entry point: the verdict over a complete condition set
/// (each entry a condition value plus the arm that was taken).
pub fn path_feasibility(conds: &[(Sym, bool)]) -> Feasibility {
    let mut set = ConstraintSet::new();
    for &(cond, taken) in conds {
        if set.assume(cond, taken).is_contradiction() {
            return Feasibility::Contradiction;
        }
    }
    Feasibility::Feasible
}

/// One speculation frame of the oracle: every environment binding and
/// constraint added since the frame opened, so backtracking restores
/// both exactly.
#[derive(Debug)]
struct Frame {
    env_undo: Vec<(Istr, Option<Sym>)>,
    cons_mark: usize,
}

/// A [`PathOracle`] that vetoes provably infeasible decision arms.
///
/// The oracle mirrors the extraction evaluator's environment handling
/// (same lvalue keys, same constant folding, same call-temporary
/// convention) minus event recording, so each condition is judged on
/// the same symbolic value the extractor would later attach to the
/// path. State is fully speculative: every block entry and accepted
/// decision opens a [`Frame`] that is unwound when the DFS backtracks.
///
/// Decisions inside natural loops are *transparent* — evaluated for
/// their environment effects but never constrained or vetoed. Bounded
/// unrolling deliberately emits concretely infeasible loop-exit paths
/// (`for (i = 0; i < 2; i++)` exits at the visit cap with `i < 2`
/// still folding true) as stand-ins for the deeper iterations the cap
/// cuts off; pruning those would leave a loop with no paths at all.
/// The same transparency applies to any block revisited on the current
/// prefix, covering irreducible cycles natural-loop detection misses.
pub struct FeasibilityOracle<'a> {
    ast: &'a Ast,
    env: HashMap<Istr, Sym>,
    frames: Vec<Frame>,
    cons: ConstraintSet,
    temp: u32,
    /// Union of all natural-loop bodies, computed on first block entry.
    loop_blocks: Option<BTreeSet<BlockId>>,
    /// Occurrences of each block on the current prefix.
    visits: HashMap<u32, usize>,
    /// Memoized lvalue keys (pure over the AST). A DFS re-enters the
    /// same blocks once per path prefix, so these hit constantly.
    lvalues: HashMap<ExprId, Option<Istr>>,
    /// Memoized callee-name renderings.
    callees: HashMap<ExprId, Istr>,
}

impl<'a> FeasibilityOracle<'a> {
    /// An oracle for paths of functions in `ast`.
    pub fn new(ast: &'a Ast) -> Self {
        FeasibilityOracle {
            ast,
            env: HashMap::new(),
            frames: Vec::new(),
            cons: ConstraintSet::new(),
            temp: 0,
            loop_blocks: None,
            visits: HashMap::new(),
            lvalues: HashMap::new(),
            callees: HashMap::new(),
        }
    }

    /// Whether decisions made in `bb` must not constrain or veto:
    /// the block sits in a loop (its conditions govern the unrolling
    /// approximation) or is revisited on the current prefix.
    fn transparent(&self, bb: BlockId) -> bool {
        self.loop_blocks.as_ref().is_some_and(|s| s.contains(&bb))
            || self.visits.get(&bb.0).copied().unwrap_or(0) > 1
    }

    fn push_frame(&mut self) {
        self.frames.push(Frame { env_undo: Vec::new(), cons_mark: self.cons.mark() });
    }

    fn pop_frame(&mut self) {
        let frame = self.frames.pop().expect("balanced frame stack");
        for (key, prev) in frame.env_undo.into_iter().rev() {
            match prev {
                Some(v) => {
                    self.env.insert(key, v);
                }
                None => {
                    self.env.remove(&key);
                }
            }
        }
        self.cons.rollback(frame.cons_mark);
    }

    fn bind(&mut self, key: Istr, value: Sym) {
        let prev = self.env.insert(key, value);
        if let Some(frame) = self.frames.last_mut() {
            frame.env_undo.push((key, prev));
        }
    }

    fn lookup(&self, key: Istr) -> Sym {
        self.env.get(&key).copied().unwrap_or_else(|| Sym::input(key))
    }

    /// Canonical (interned) lvalue key — must match the extractor's
    /// keying. Memoized per expression.
    fn lvalue_key(&mut self, e: ExprId) -> Option<Istr> {
        if let Some(k) = self.lvalues.get(&e) {
            return *k;
        }
        let key = match &self.ast.expr(e).kind {
            ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index(..) => {
                Some(Istr::new(&expr_to_string(self.ast, e)))
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                self.lvalue_key(*inner).map(|k| Istr::new(&format!("*{k}")))
            }
            _ => None,
        };
        self.lvalues.insert(e, key);
        key
    }

    /// Call results are opaque: bound values become fresh temporaries,
    /// the extractor's `V#` convention.
    fn detemporalize_call(&mut self, value: Sym) -> Sym {
        if let SymNode::Call { .. } = value.node() {
            self.temp += 1;
            return Sym::temp(self.temp);
        }
        value
    }

    fn exec_stmt(&mut self, id: pallas_lang::StmtId) {
        let ast = self.ast;
        let stmt = ast.stmt(id);
        match &stmt.kind {
            StmtKind::Decl { name, init, .. } => match init {
                Some(e) => {
                    let value = self.eval(*e);
                    let value = self.detemporalize_call(value);
                    self.bind(Istr::new(name), value);
                }
                None => {
                    self.bind(Istr::new(name), Sym::unknown());
                }
            },
            StmtKind::Expr(e) => {
                self.eval(*e);
            }
            _ => {}
        }
    }

    /// The extraction evaluator minus event recording; see
    /// [`crate::extract`]. Divergence here would make the oracle judge
    /// a different condition value than the extractor later records,
    /// so every arm mirrors `Evaluator::eval` exactly.
    fn eval(&mut self, e: ExprId) -> Sym {
        let ast = self.ast;
        match &ast.expr(e).kind {
            ExprKind::Int(v) => Sym::int(*v),
            ExprKind::Str(s) => Sym::str_lit(s.as_str()),
            ExprKind::Ident(_) => {
                let key = self.lvalue_key(e).expect("identifiers are lvalues");
                self.lookup(key)
            }
            ExprKind::Unary(op, inner) => {
                let (op, inner) = (*op, *inner);
                if op.mutates() {
                    let value = self.eval(inner);
                    if let Some(key) = self.lvalue_key(inner) {
                        let delta = if matches!(op, UnOp::PreInc | UnOp::PostInc) { 1 } else { -1 };
                        let new = Sym::binary(BinOp::Add, value, Sym::int(delta));
                        self.bind(key, new);
                        return match op {
                            UnOp::PostInc | UnOp::PostDec => value,
                            _ => new,
                        };
                    }
                    return Sym::unknown();
                }
                if matches!(op, UnOp::Addr) {
                    self.eval(inner);
                    return Sym::unknown();
                }
                let v = self.eval(inner);
                if matches!(op, UnOp::Deref) {
                    return match self.lvalue_key(e) {
                        Some(key) => self.lookup(key),
                        None => Sym::unknown(),
                    };
                }
                Sym::unary(op, v)
            }
            ExprKind::Binary(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let va = self.eval(a);
                let vb = self.eval(b);
                Sym::binary(op, va, vb)
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let (op, lhs, rhs) = (*op, *lhs, *rhs);
                let rhs_value = self.eval(rhs);
                let key = match self.lvalue_key(lhs) {
                    Some(k) => k,
                    None => return Sym::unknown(),
                };
                let value = match op {
                    AssignOp::Assign => rhs_value,
                    AssignOp::Compound(bin) => {
                        let cur = self.lookup(key);
                        Sym::binary(bin, cur, rhs_value)
                    }
                };
                let value = self.detemporalize_call(value);
                self.bind(key, value);
                value
            }
            ExprKind::Ternary(c, t, el) => {
                let (c, t, el) = (*c, *t, *el);
                self.eval(c);
                let tv = self.eval(t);
                let ev = self.eval(el);
                if tv == ev {
                    tv
                } else {
                    Sym::unknown()
                }
            }
            ExprKind::Call { callee, args } => {
                let callee_name = match self.callees.get(callee) {
                    Some(&n) => n,
                    None => {
                        let n = Istr::new(&expr_to_string(ast, *callee));
                        self.callees.insert(*callee, n);
                        n
                    }
                };
                let mut arg_syms = Vec::with_capacity(args.len());
                for &a in args {
                    arg_syms.push(self.eval(a));
                }
                Sym::call(callee_name, arg_syms)
            }
            ExprKind::Member { base, .. } => {
                let base = *base;
                self.eval(base);
                match self.lvalue_key(e) {
                    Some(key) => self.lookup(key),
                    None => Sym::unknown(),
                }
            }
            ExprKind::Index(b, i) => {
                let (b, i) = (*b, *i);
                self.eval(b);
                self.eval(i);
                match self.lvalue_key(e) {
                    Some(key) => self.lookup(key),
                    None => Sym::unknown(),
                }
            }
            ExprKind::Cast(_, inner) => self.eval(*inner),
            ExprKind::SizeofType(ty) => Sym::input(format!("sizeof({ty})")),
            ExprKind::SizeofExpr(inner) => {
                self.eval(*inner);
                Sym::unknown()
            }
            ExprKind::Comma(a, b) => {
                let (a, b) = (*a, *b);
                self.eval(a);
                self.eval(b)
            }
        }
    }

    /// Asserts one decision's constraint; `false` means contradiction.
    fn decide(&mut self, cfg: &Cfg, d: &Decision) -> bool {
        // Transparent decisions still evaluate their condition (the
        // extractor does, and side effects like `if (x++)` must carry
        // into the subtree) but assert nothing and never veto.
        let transparent = self.transparent(d.block());
        match d {
            Decision::Branch { cond, taken, .. } => {
                let sym = self.eval(*cond);
                if transparent {
                    return true;
                }
                !self.cons.assume(sym, *taken).is_contradiction()
            }
            Decision::Switch { scrutinee, case, block } => {
                let s = self.eval(*scrutinee);
                if transparent {
                    return true;
                }
                match case {
                    // A matched arm pins the scrutinee to the case value.
                    Some(c) => {
                        let k = self.eval(*c);
                        let eq = Sym::binary(BinOp::Eq, s, k);
                        !self.cons.assume(eq, true).is_contradiction()
                    }
                    // The default arm excludes every constant case value.
                    None => {
                        if let Terminator::Switch { cases, .. } = &cfg.block(*block).term {
                            for &(value, _) in cases {
                                let k = self.eval(value);
                                let ne = Sym::binary(BinOp::Eq, s, k);
                                if self.cons.assume(ne, false).is_contradiction() {
                                    return false;
                                }
                            }
                        }
                        true
                    }
                }
            }
        }
    }
}

impl PathOracle for FeasibilityOracle<'_> {
    fn enter_block(&mut self, cfg: &Cfg, bb: BlockId) {
        if self.loop_blocks.is_none() {
            let mut blocks = BTreeSet::new();
            for l in find_loops(cfg) {
                blocks.extend(l.body.iter().copied());
            }
            self.loop_blocks = Some(blocks);
        }
        *self.visits.entry(bb.0).or_insert(0) += 1;
        self.push_frame();
        let block = cfg.block(bb);
        for &stmt in &block.stmts {
            self.exec_stmt(stmt);
        }
        for &(b, step) in &cfg.step_exprs {
            if b == bb {
                self.eval(step);
            }
        }
    }

    fn push_decision(&mut self, cfg: &Cfg, d: &Decision) -> bool {
        self.push_frame();
        if self.decide(cfg, d) {
            true
        } else {
            // Restore both the environment (condition side effects)
            // and the constraint set before declining the arm.
            self.pop_frame();
            false
        }
    }

    fn pop_decision(&mut self) {
        self.pop_frame();
    }

    fn leave_block(&mut self, _cfg: &Cfg, bb: BlockId) {
        if let Some(count) = self.visits.get_mut(&bb.0) {
            *count -= 1;
        }
        self.pop_frame();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: &str) -> Sym {
        Sym::input(n)
    }

    fn cmp(op: BinOp, a: Sym, k: i64) -> Sym {
        Sym::binary_raw(op, a, Sym::int(k))
    }

    #[test]
    fn empty_set_is_feasible() {
        assert_eq!(path_feasibility(&[]), Feasibility::Feasible);
    }

    #[test]
    fn constant_condition_contradicts_wrong_arm() {
        assert_eq!(path_feasibility(&[(Sym::int(0), true)]), Feasibility::Contradiction);
        assert_eq!(path_feasibility(&[(Sym::int(1), false)]), Feasibility::Contradiction);
        assert_eq!(path_feasibility(&[(Sym::int(7), true)]), Feasibility::Feasible);
        assert_eq!(path_feasibility(&[(Sym::int(0), false)]), Feasibility::Feasible);
    }

    #[test]
    fn eq_vs_ne_contradicts() {
        let conds = [(cmp(BinOp::Eq, input("x"), 3), true), (cmp(BinOp::Ne, input("x"), 3), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Same thing via arm polarity: `x == 3` taken then not taken.
        let conds = [(cmp(BinOp::Eq, input("x"), 3), true), (cmp(BinOp::Eq, input("x"), 3), false)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn two_distinct_equalities_contradict() {
        let conds = [(cmp(BinOp::Eq, input("x"), 1), true), (cmp(BinOp::Eq, input("x"), 2), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Distinct variables are independent.
        let conds = [(cmp(BinOp::Eq, input("x"), 1), true), (cmp(BinOp::Eq, input("y"), 2), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn disjoint_intervals_contradict() {
        let conds = [(cmp(BinOp::Lt, input("x"), 0), true), (cmp(BinOp::Gt, input("x"), 10), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(cmp(BinOp::Ge, input("x"), 5), true), (cmp(BinOp::Le, input("x"), 4), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // Touching intervals are satisfiable (x == 5).
        let conds = [(cmp(BinOp::Ge, input("x"), 5), true), (cmp(BinOp::Le, input("x"), 5), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn equality_outside_interval_contradicts() {
        let conds = [(cmp(BinOp::Lt, input("x"), 0), true), (cmp(BinOp::Eq, input("x"), 3), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(cmp(BinOp::Eq, input("x"), 3), true), (cmp(BinOp::Gt, input("x"), 7), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn constant_on_the_left_is_oriented() {
        // `0 < x` then `x <= 0`.
        let conds = [
            (Sym::binary_raw(BinOp::Lt, Sym::int(0), input("x")), true),
            (cmp(BinOp::Le, input("x"), 0), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn bare_truth_values_constrain_to_zero_or_nonzero() {
        let conds = [(input("flag"), false), (cmp(BinOp::Eq, input("flag"), 1), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(input("flag"), true), (cmp(BinOp::Eq, input("flag"), 0), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        let conds = [(input("flag"), true), (cmp(BinOp::Eq, input("flag"), 1), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn negation_and_conjunction_decompose() {
        // `!(x)` taken == `x == 0`; then `x != 0` contradicts.
        let conds = [
            (Sym::unary_raw(UnOp::Not, input("x")), true),
            (cmp(BinOp::Ne, input("x"), 0), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
        // `a > 0 && a < 0` taken is contradictory on its own.
        let and = Sym::binary_raw(
            BinOp::And,
            cmp(BinOp::Gt, input("a"), 0),
            cmp(BinOp::Lt, input("a"), 0),
        );
        assert_eq!(path_feasibility(&[(and, true)]), Feasibility::Contradiction);
        // ...but not-taken tells us nothing certain.
        assert_eq!(path_feasibility(&[(and, false)]), Feasibility::Feasible);
        // `a || b` not taken pins both to zero.
        let or = Sym::binary_raw(BinOp::Or, input("a"), input("b"));
        let conds = [(or, false), (cmp(BinOp::Ne, input("a"), 0), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn temporaries_are_stable_values() {
        // `r = g(); if (r < 0) ... if (r >= 0)` — both conditions see
        // the same V#1.
        let conds =
            [(cmp(BinOp::Lt, Sym::temp(1), 0), true), (cmp(BinOp::Ge, Sym::temp(1), 0), true)];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }

    #[test]
    fn opaque_conditions_contribute_nothing() {
        let call = Sym::call("f", vec![input("x")]);
        let conds = [
            (cmp(BinOp::Lt, call, 0), true),
            (cmp(BinOp::Ge, call, 0), true),
            (Sym::unknown(), true),
            (Sym::unknown(), false),
            (cmp(BinOp::BitAnd, input("m"), 16), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Feasible);
    }

    #[test]
    fn i64_rim_strict_comparisons_are_unsatisfiable() {
        assert_eq!(
            path_feasibility(&[(cmp(BinOp::Lt, input("x"), i64::MIN), true)]),
            Feasibility::Contradiction
        );
        assert_eq!(
            path_feasibility(&[(cmp(BinOp::Gt, input("x"), i64::MAX), true)]),
            Feasibility::Contradiction
        );
        // Non-strict rim bounds are fine.
        assert_eq!(
            path_feasibility(&[(cmp(BinOp::Le, input("x"), i64::MIN), true)]),
            Feasibility::Feasible
        );
    }

    #[test]
    fn rollback_restores_prior_facts() {
        let mut set = ConstraintSet::new();
        assert!(!set.assume(cmp(BinOp::Eq, input("x"), 1), true).is_contradiction());
        let mark = set.mark();
        assert!(set.assume(cmp(BinOp::Eq, input("x"), 2), true).is_contradiction());
        set.rollback(mark);
        // `x == 1` is still in force; `x != 1` must now contradict.
        assert!(set.assume(cmp(BinOp::Ne, input("x"), 1), true).is_contradiction());
        set.rollback(mark);
        assert!(!set.assume(cmp(BinOp::Eq, input("x"), 1), true).is_contradiction());
    }

    #[test]
    fn interval_chain_narrows_to_contradiction() {
        let conds = [
            (cmp(BinOp::Ge, input("n"), 0), true),
            (cmp(BinOp::Le, input("n"), 10), true),
            (cmp(BinOp::Gt, input("n"), 4), true),
            (cmp(BinOp::Lt, input("n"), 5), true),
        ];
        assert_eq!(path_feasibility(&conds), Feasibility::Contradiction);
    }
}
