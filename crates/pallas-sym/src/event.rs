//! The path database: per-path timelines of semantic events.
//!
//! Each enumerated execution path becomes a [`PathRecord`] — an ordered
//! list of [`Event`]s (condition checks, state updates, calls,
//! declarations) plus the path's output. The twelve rule checkers run
//! entirely over this representation; they never look at the AST again.

use crate::sym::Sym;
use std::collections::HashMap;
use std::fmt;

/// One semantic event on a path's timeline.
///
/// `Hash`/`Eq` are structural: the extractor's summary-union dedup
/// keys on whole events (hashing a [`Sym`] is O(1) on its arena id).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// A flow-control condition was evaluated (branch, switch, or
    /// ternary).
    Cond {
        /// 1-based source line.
        line: u32,
        /// Rendered condition text.
        text: String,
        /// Symbolic rendering of the evaluated condition (Table 5's
        /// `S#/I#/V#/E#` notation).
        symbolic: String,
        /// Name atoms mentioned by the condition (identifiers, member
        /// paths, and field names).
        vars: Vec<String>,
        /// For branches: which arm the path took.
        taken: Option<bool>,
        /// Inlining depth (0 = the function's own code).
        depth: u8,
    },
    /// An lvalue was written.
    State {
        /// 1-based source line.
        line: u32,
        /// Canonical lvalue text (`gfp_mask`, `page->private`).
        lvalue: String,
        /// Symbolic value written.
        value: Sym,
        /// Rendered statement text.
        text: String,
        /// Name atoms read while computing the value.
        reads: Vec<String>,
        /// Inlining depth.
        depth: u8,
    },
    /// A function was called.
    Call {
        /// 1-based source line.
        line: u32,
        /// Callee name (or rendered callee expression).
        callee: String,
        /// Name atoms mentioned by the arguments.
        arg_vars: Vec<String>,
        /// Lvalue the result was assigned to, if any.
        assigned_to: Option<String>,
        /// Whether the call occurred inside a flow-control condition.
        in_condition: bool,
        /// Inlining depth.
        depth: u8,
    },
    /// A local variable was declared.
    Decl {
        /// 1-based source line.
        line: u32,
        /// Variable name.
        name: String,
        /// Whether the declaration had an initializer.
        has_init: bool,
        /// Inlining depth.
        depth: u8,
    },
}

impl Event {
    /// The source line of the event.
    pub fn line(&self) -> u32 {
        match self {
            Event::Cond { line, .. }
            | Event::State { line, .. }
            | Event::Call { line, .. }
            | Event::Decl { line, .. } => *line,
        }
    }

    /// The inlining depth of the event (0 = own code).
    pub fn depth(&self) -> u8 {
        match self {
            Event::Cond { depth, .. }
            | Event::State { depth, .. }
            | Event::Call { depth, .. }
            | Event::Decl { depth, .. } => *depth,
        }
    }

    /// All name atoms the event mentions (reads and writes).
    pub fn atoms(&self) -> Vec<&str> {
        match self {
            Event::Cond { vars, .. } => vars.iter().map(String::as_str).collect(),
            Event::State { lvalue, reads, .. } => {
                let mut v: Vec<&str> = reads.iter().map(String::as_str).collect();
                v.push(lvalue.as_str());
                v
            }
            Event::Call { arg_vars, callee, .. } => {
                let mut v: Vec<&str> = arg_vars.iter().map(String::as_str).collect();
                v.push(callee.as_str());
                v
            }
            Event::Decl { name, .. } => vec![name.as_str()],
        }
    }
}

/// The output of one path.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRecord {
    /// 1-based source line of the `return` (or end of function).
    pub line: u32,
    /// Rendered return expression (`""` for a bare return).
    pub text: String,
    /// Symbolic return value (`None` for a bare return).
    pub value: Option<Sym>,
    /// Name atoms mentioned by the return expression.
    pub vars: Vec<String>,
}

/// One extracted execution path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRecord {
    /// Index of this path within its function (enumeration order).
    pub index: usize,
    /// Ordered event timeline.
    pub events: Vec<Event>,
    /// Path output.
    pub output: OutputRecord,
}

impl PathRecord {
    /// Iterates over condition events at any depth.
    pub fn conditions(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| matches!(e, Event::Cond { .. }))
    }

    /// Iterates over state-update events.
    pub fn states(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| matches!(e, Event::State { .. }))
    }

    /// Iterates over call events.
    pub fn calls(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| matches!(e, Event::Call { .. }))
    }

    /// Whether any condition event (at any depth) mentions `atom`.
    pub fn checks_atom(&self, atom: &str) -> bool {
        self.conditions().any(|e| match e {
            Event::Cond { vars, .. } => vars.iter().any(|v| v == atom),
            _ => false,
        })
    }

    /// The first event index whose atoms mention `atom`, if any.
    pub fn first_mention(&self, atom: &str) -> Option<usize> {
        self.events.iter().position(|e| e.atoms().contains(&atom))
    }
}

/// All extracted paths of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionPaths {
    /// Function name.
    pub name: String,
    /// Rendered signature (Table 5's `Signature` row).
    pub signature: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// 1-based line of the function definition.
    pub line: u32,
    /// Extracted paths.
    pub records: Vec<PathRecord>,
    /// Whether enumeration hit a limit (the set under-approximates).
    pub truncated: bool,
    /// Decision arms the feasibility oracle proved contradictory — each
    /// one a doomed subtree path enumeration never entered. Always 0
    /// when pruning is disabled.
    pub pruned: usize,
}

impl FunctionPaths {
    /// Set of distinct constant return values across all paths.
    pub fn literal_returns(&self) -> Vec<i64> {
        let mut v: Vec<i64> = self
            .records
            .iter()
            .filter_map(|r| r.output.value.and_then(|s| s.as_int()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Set of distinct symbolic (named) return values across paths.
    pub fn named_returns(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .records
            .iter()
            .filter_map(|r| r.output.value.and_then(|s| s.as_input().map(str::to_string)))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// The path database for one merged translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathDb {
    /// Unit name (for reports).
    pub unit: String,
    /// Per-function path sets, in source order.
    pub functions: Vec<FunctionPaths>,
    by_name: HashMap<String, usize>,
}

impl PathDb {
    /// Creates an empty database for the named unit.
    pub fn new(unit: impl Into<String>) -> Self {
        PathDb { unit: unit.into(), functions: Vec::new(), by_name: HashMap::new() }
    }

    /// Adds a function's paths, indexing it by name.
    pub fn insert(&mut self, fp: FunctionPaths) {
        self.by_name.insert(fp.name.clone(), self.functions.len());
        self.functions.push(fp);
    }

    /// Looks up a function's paths by name.
    pub fn function(&self, name: &str) -> Option<&FunctionPaths> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }

    /// Total number of extracted paths across all functions.
    pub fn path_count(&self) -> usize {
        self.functions.iter().map(|f| f.records.len()).sum()
    }

    /// True if any function's enumeration hit a [`PathConfig`] limit,
    /// i.e. the database under-approximates the path set.
    ///
    /// [`PathConfig`]: pallas_cfg::PathConfig
    pub fn any_truncated(&self) -> bool {
        self.functions.iter().any(|f| f.truncated)
    }

    /// Total number of decision arms pruned as infeasible across all
    /// functions.
    pub fn pruned_paths(&self) -> usize {
        self.functions.iter().map(|f| f.pruned).sum()
    }

    /// Functions whose paths contain a call to `callee` at depth 0.
    pub fn callers_of(&self, callee: &str) -> Vec<&FunctionPaths> {
        self.functions
            .iter()
            .filter(|f| {
                f.name != callee
                    && f.records.iter().any(|r| {
                        r.calls().any(|c| {
                            matches!(c, Event::Call { callee: c2, depth: 0, .. } if c2 == callee)
                        })
                    })
            })
            .collect()
    }
}

impl fmt::Display for PathDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "path database for unit `{}`:", self.unit)?;
        for func in &self.functions {
            writeln!(
                f,
                "  {} — {} path(s){}",
                func.signature,
                func.records.len(),
                if func.truncated { " (truncated)" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(line: u32, lvalue: &str) -> Event {
        Event::State {
            line,
            lvalue: lvalue.into(),
            value: Sym::int(0),
            text: format!("{lvalue} = 0"),
            reads: vec![],
            depth: 0,
        }
    }

    #[test]
    fn path_record_queries() {
        let rec = PathRecord {
            index: 0,
            events: vec![
                Event::Cond {
                    line: 3,
                    text: "order == 0".into(),
                    symbolic: "(S#order) == (I#0)".into(),
                    vars: vec!["order".into()],
                    taken: Some(true),
                    depth: 0,
                },
                state(4, "page"),
            ],
            output: OutputRecord { line: 5, text: "page".into(), value: None, vars: vec![] },
        };
        assert!(rec.checks_atom("order"));
        assert!(!rec.checks_atom("page"));
        assert_eq!(rec.first_mention("page"), Some(1));
        assert_eq!(rec.conditions().count(), 1);
        assert_eq!(rec.states().count(), 1);
    }

    #[test]
    fn db_lookup_and_callers() {
        let mut db = PathDb::new("u");
        db.insert(FunctionPaths {
            name: "callee".into(),
            signature: "int callee()".into(),
            params: vec![],
            line: 1,
            records: vec![],
            truncated: false,
            pruned: 0,
        });
        db.insert(FunctionPaths {
            name: "caller".into(),
            signature: "int caller()".into(),
            params: vec![],
            line: 10,
            records: vec![PathRecord {
                index: 0,
                events: vec![Event::Call {
                    line: 11,
                    callee: "callee".into(),
                    arg_vars: vec![],
                    assigned_to: None,
                    in_condition: false,
                    depth: 0,
                }],
                output: OutputRecord { line: 12, text: String::new(), value: None, vars: vec![] },
            }],
            truncated: false,
            pruned: 0,
        });
        assert!(db.function("callee").is_some());
        assert!(db.function("nope").is_none());
        let callers = db.callers_of("callee");
        assert_eq!(callers.len(), 1);
        assert_eq!(callers[0].name, "caller");
        assert_eq!(db.path_count(), 1);
        assert!(!db.any_truncated());
    }

    #[test]
    fn any_truncated_reflects_function_records() {
        let mut db = PathDb::new("u");
        db.insert(FunctionPaths {
            name: "full".into(),
            signature: "int full()".into(),
            params: vec![],
            line: 1,
            records: vec![],
            truncated: false,
            pruned: 0,
        });
        assert!(!db.any_truncated());
        db.insert(FunctionPaths {
            name: "capped".into(),
            signature: "int capped()".into(),
            params: vec![],
            line: 9,
            records: vec![],
            truncated: true,
            pruned: 0,
        });
        assert!(db.any_truncated());
    }

    #[test]
    fn literal_and_named_returns() {
        let fp = FunctionPaths {
            name: "f".into(),
            signature: "int f()".into(),
            params: vec![],
            line: 1,
            records: vec![
                PathRecord {
                    index: 0,
                    events: vec![],
                    output: OutputRecord {
                        line: 2,
                        text: "0".into(),
                        value: Some(Sym::int(0)),
                        vars: vec![],
                    },
                },
                PathRecord {
                    index: 1,
                    events: vec![],
                    output: OutputRecord {
                        line: 3,
                        text: "err".into(),
                        value: Some(Sym::input("err")),
                        vars: vec!["err".into()],
                    },
                },
            ],
            truncated: false,
            pruned: 0,
        };
        assert_eq!(fp.literal_returns(), vec![0]);
        assert_eq!(fp.named_returns(), vec!["err"]);
    }

    #[test]
    fn event_accessors() {
        let e = state(7, "x");
        assert_eq!(e.line(), 7);
        assert_eq!(e.depth(), 0);
        assert!(e.atoms().contains(&"x"));
    }
}
