//! Symbolic values.
//!
//! The extractor evaluates path statements over symbolic values in the
//! notation of the paper's Table 5: `S#` marks a symbolic expression
//! (an input whose value is unknown statically), `I#` an integer
//! constant, `V#` a temporary, and `E#` the result of a call.

use pallas_lang::ast::{BinOp, UnOp};
use std::fmt;

/// A symbolic value computed along one execution path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sym {
    /// `S#name`: the unknown entry value of a variable or lvalue path.
    Input(String),
    /// `I#v`: a known integer constant.
    Int(i64),
    /// A string literal.
    Str(String),
    /// `V#n`: a temporary introduced for a call result or unknown.
    Temp(u32),
    /// `E#callee(...)`: the result of calling `callee`.
    Call {
        /// Callee function name (or rendered callee expression).
        callee: String,
        /// Symbolic arguments.
        args: Vec<Sym>,
    },
    /// A unary operation over a symbolic operand.
    Unary(UnOp, Box<Sym>),
    /// A binary operation over symbolic operands.
    Binary(BinOp, Box<Sym>, Box<Sym>),
    /// A value the evaluator cannot usefully track (ternaries, sizeof,
    /// address-taken values).
    Unknown,
}

/// Node budget for constructed symbolic expressions. Self-referential
/// updates along an unrolled loop path (`x = x * x + x` executed many
/// times) otherwise roughly double the tree per assignment, and every
/// `State` event clones the current value — the fuzzer found a deep
/// generated unit whose symbolic state reached gigabytes and stalled
/// the extractor in the allocator. A result that would exceed the
/// budget is widened to [`Sym::Unknown`], the usual sound
/// over-approximation; every constructor keeps the invariant that a
/// built value has at most this many nodes.
const MAX_SYM_NODES: usize = 256;

impl Sym {
    /// Constant-folds integer operands where possible, otherwise builds
    /// a symbolic binary node (widened to `Unknown` over the node
    /// budget).
    pub fn binary(op: BinOp, a: Sym, b: Sym) -> Sym {
        if let (Sym::Int(x), Sym::Int(y)) = (&a, &b) {
            if let Some(v) = fold(op, *x, *y) {
                return Sym::Int(v);
            }
        }
        let mut remaining = MAX_SYM_NODES;
        if !(a.count_into(&mut remaining) && b.count_into(&mut remaining)) {
            return Sym::Unknown;
        }
        Sym::Binary(op, Box::new(a), Box::new(b))
    }

    /// Constant-folds a unary operation where possible (widened to
    /// `Unknown` over the node budget).
    pub fn unary(op: UnOp, a: Sym) -> Sym {
        if let Sym::Int(x) = &a {
            match op {
                UnOp::Neg => return Sym::Int(-x),
                UnOp::Not => return Sym::Int(i64::from(*x == 0)),
                UnOp::BitNot => return Sym::Int(!x),
                _ => {}
            }
        }
        let mut remaining = MAX_SYM_NODES;
        if !a.count_into(&mut remaining) {
            return Sym::Unknown;
        }
        Sym::Unary(op, Box::new(a))
    }

    /// Counts this value's nodes against `remaining`, decrementing as
    /// it walks; returns `false` as soon as the budget runs out, so the
    /// walk is O(budget) no matter the tree size.
    fn count_into(&self, remaining: &mut usize) -> bool {
        if *remaining == 0 {
            return false;
        }
        *remaining -= 1;
        match self {
            Sym::Call { args, .. } => args.iter().all(|a| a.count_into(remaining)),
            Sym::Unary(_, a) => a.count_into(remaining),
            Sym::Binary(_, a, b) => a.count_into(remaining) && b.count_into(remaining),
            _ => true,
        }
    }

    /// The concrete integer value, if this symbol is a constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Sym::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The input name, if this symbol is an untouched input.
    pub fn as_input(&self) -> Option<&str> {
        match self {
            Sym::Input(n) => Some(n),
            _ => None,
        }
    }

    /// Whether the symbol mentions the given input name anywhere.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Sym::Input(n) => n == name,
            Sym::Call { args, .. } => args.iter().any(|a| a.mentions(name)),
            Sym::Unary(_, a) => a.mentions(name),
            Sym::Binary(_, a, b) => a.mentions(name) || b.mentions(name),
            _ => false,
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Input(n) => write!(f, "(S#{n})"),
            Sym::Int(v) => write!(f, "(I#{v})"),
            Sym::Str(s) => write!(f, "{s:?}"),
            Sym::Temp(n) => write!(f, "(V#{n})"),
            Sym::Call { callee, args } => {
                write!(f, "(E#{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("))")
            }
            Sym::Unary(op, a) => write!(f, "{}{a}", op.as_str()),
            // Parenthesized so structurally distinct trees render
            // distinctly: without the parens `a + (b * c)` and
            // `(a + b) * c` would both print `... + ... * ...`,
            // ambiguous in NDJSON output and a digest-collision hazard
            // for the fuzz oracles.
            Sym::Binary(op, a, b) => write!(f, "({a} {} {b})", op.as_str()),
            Sym::Unknown => f.write_str("(?)"),
        }
    }
}

fn fold(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        // A shift count outside [0, 63] is undefined behaviour in C;
        // `wrapping_shl(y as u32)` would silently mask it mod 64 (so
        // `1 << 64` folds to `1` and negative counts fold to garbage).
        // Stay symbolic instead, mirroring division by zero.
        BinOp::Shl => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shl(y as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shr(y as u32)
        }
        BinOp::Lt => i64::from(x < y),
        BinOp::Gt => i64::from(x > y),
        BinOp::Le => i64::from(x <= y),
        BinOp::Ge => i64::from(x >= y),
        BinOp::Eq => i64::from(x == y),
        BinOp::Ne => i64::from(x != y),
        BinOp::BitAnd => x & y,
        BinOp::BitXor => x ^ y,
        BinOp::BitOr => x | y,
        BinOp::And => i64::from(x != 0 && y != 0),
        BinOp::Or => i64::from(x != 0 || y != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        assert_eq!(Sym::binary(BinOp::Add, Sym::Int(2), Sym::Int(3)), Sym::Int(5));
        assert_eq!(Sym::binary(BinOp::Eq, Sym::Int(2), Sym::Int(2)), Sym::Int(1));
        assert_eq!(Sym::unary(UnOp::Not, Sym::Int(0)), Sym::Int(1));
        assert_eq!(Sym::unary(UnOp::Neg, Sym::Int(7)), Sym::Int(-7));
    }

    #[test]
    fn division_by_zero_stays_symbolic() {
        let s = Sym::binary(BinOp::Div, Sym::Int(1), Sym::Int(0));
        assert!(matches!(s, Sym::Binary(..)));
    }

    #[test]
    fn symbolic_operands_do_not_fold() {
        let s = Sym::binary(BinOp::BitAnd, Sym::Input("gfp_mask".into()), Sym::Int(16));
        assert_eq!(s.to_string(), "((S#gfp_mask) & (I#16))");
    }

    #[test]
    fn out_of_range_shift_counts_stay_symbolic() {
        // `1 << 64` must not fold (the hardware masks the count mod 64,
        // which would yield 1); same for negative counts.
        let s = Sym::binary(BinOp::Shl, Sym::Int(1), Sym::Int(64));
        assert!(matches!(s, Sym::Binary(..)), "1 << 64 must stay symbolic, got {s}");
        let s = Sym::binary(BinOp::Shl, Sym::Int(1), Sym::Int(-1));
        assert!(matches!(s, Sym::Binary(..)), "1 << -1 must stay symbolic, got {s}");
        let s = Sym::binary(BinOp::Shr, Sym::Int(1), Sym::Int(64));
        assert!(matches!(s, Sym::Binary(..)), "1 >> 64 must stay symbolic, got {s}");
        let s = Sym::binary(BinOp::Shr, Sym::Int(1), Sym::Int(i64::MIN));
        assert!(matches!(s, Sym::Binary(..)), "negative shift count must stay symbolic");
        // The boundary count 63 still folds (wrapping into the sign bit).
        assert_eq!(Sym::binary(BinOp::Shl, Sym::Int(1), Sym::Int(63)), Sym::Int(i64::MIN));
        assert_eq!(Sym::binary(BinOp::Shl, Sym::Int(1), Sym::Int(3)), Sym::Int(8));
        assert_eq!(Sym::binary(BinOp::Shr, Sym::Int(16), Sym::Int(63)), Sym::Int(0));
    }

    #[test]
    fn display_parenthesizes_binary_nodes_unambiguously() {
        let a = Sym::Input("a".into());
        let b = Sym::Input("b".into());
        let c = Sym::Input("c".into());
        // a + (b * c) vs (a + b) * c must render distinctly.
        let left = Sym::binary(
            BinOp::Add,
            a.clone(),
            Sym::binary(BinOp::Mul, b.clone(), c.clone()),
        );
        let right = Sym::binary(BinOp::Mul, Sym::binary(BinOp::Add, a, b), c);
        assert_eq!(left.to_string(), "((S#a) + ((S#b) * (S#c)))");
        assert_eq!(right.to_string(), "(((S#a) + (S#b)) * (S#c))");
        assert_ne!(left.to_string(), right.to_string());
        // Unary over a binary is distinct from binary over a unary.
        let neg_sum = Sym::unary(UnOp::Neg, Sym::binary(BinOp::Add, Sym::Input("a".into()), Sym::Input("b".into())));
        let sum_of_neg = Sym::binary(BinOp::Add, Sym::unary(UnOp::Neg, Sym::Input("a".into())), Sym::Input("b".into()));
        assert_ne!(neg_sum.to_string(), sum_of_neg.to_string());
    }

    #[test]
    fn mentions_traverses_structure() {
        let s = Sym::binary(
            BinOp::Add,
            Sym::Call { callee: "f".into(), args: vec![Sym::Input("x".into())] },
            Sym::Int(1),
        );
        assert!(s.mentions("x"));
        assert!(!s.mentions("y"));
    }

    #[test]
    fn table5_notation() {
        assert_eq!(Sym::Input("gfp_mask".into()).to_string(), "(S#gfp_mask)");
        assert_eq!(Sym::Int(16).to_string(), "(I#16)");
        assert_eq!(Sym::Temp(1).to_string(), "(V#1)");
        let call = Sym::Call { callee: "memalloc_noio_flags".into(), args: vec![Sym::Input("gfp_mask".into())] };
        assert_eq!(call.to_string(), "(E#memalloc_noio_flags((S#gfp_mask)))");
    }

    #[test]
    fn oversized_trees_stay_within_node_budget() {
        // `x = x * x + x` style growth: without the node budget this
        // doubles per step and reaches gigabytes within ~40 steps.
        // With it, oversized results widen to Unknown (and may regrow
        // from there), so every constructed value stays small.
        let mut v = Sym::Input("x".into());
        let mut widened = false;
        for _ in 0..1000 {
            let sq = Sym::binary(BinOp::Mul, v.clone(), v.clone());
            v = Sym::binary(BinOp::Add, sq, v);
            widened |= v == Sym::Unknown;
            let mut remaining = MAX_SYM_NODES + 1;
            assert!(v.count_into(&mut remaining), "value exceeded the node budget");
        }
        assert!(widened, "the growth chain must hit the budget at least once");
        // Small combinations stay structural.
        let s = Sym::binary(BinOp::Add, Sym::Input("a".into()), Sym::Input("b".into()));
        assert!(matches!(s, Sym::Binary(..)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Sym::Int(3).as_int(), Some(3));
        assert_eq!(Sym::Input("a".into()).as_int(), None);
        assert_eq!(Sym::Input("a".into()).as_input(), Some("a"));
    }
}
