//! Symbolic values.
//!
//! The extractor evaluates path statements over symbolic values in the
//! notation of the paper's Table 5: `S#` marks a symbolic expression
//! (an input whose value is unknown statically), `I#` an integer
//! constant, `V#` a temporary, and `E#` the result of a call.
//!
//! # Hash-consed representation
//!
//! A [`Sym`] is a `Copy` handle (one pointer) into a process-global
//! hash-consing arena. Structurally equal values intern to the *same*
//! node, so:
//!
//! - equality is a pointer comparison instead of a tree walk;
//! - the node count that feeds the widening budget is a memoized
//!   per-node `size` field instead of an O(n) traversal on every
//!   constructor call;
//! - cloning a value into an event, an environment binding, or a cache
//!   copies 8 bytes instead of re-boxing a tree.
//!
//! The arena is global (not per-extraction) because symbolic values
//! outlive any single extraction: they sit in the engine's bounded
//! unit cache, in the persistent store's decoded records, and cross
//! worker threads in the daemon. Arena memory grows with the number of
//! *distinct* nodes ever built, which hash-consing keeps proportional
//! to the source under analysis rather than to the number of paths
//! exercised. Pattern-match through [`Sym::node`], which returns the
//! underlying [`SymNode`].

use crate::intern::Istr;
use pallas_lang::ast::{BinOp, UnOp};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The structure of one symbolic node. Obtained from [`Sym::node`];
/// children are themselves interned [`Sym`] handles.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum SymNode {
    /// `S#name`: the unknown entry value of a variable or lvalue path.
    Input(Istr),
    /// `I#v`: a known integer constant.
    Int(i64),
    /// A string literal.
    Str(Istr),
    /// `V#n`: a temporary introduced for a call result or unknown.
    Temp(u32),
    /// `E#callee(...)`: the result of calling `callee`.
    Call {
        /// Callee function name (or rendered callee expression).
        callee: Istr,
        /// Symbolic arguments.
        args: Vec<Sym>,
    },
    /// A unary operation over a symbolic operand.
    Unary(UnOp, Sym),
    /// A binary operation over symbolic operands.
    Binary(BinOp, Sym, Sym),
    /// A value the evaluator cannot usefully track (ternaries, sizeof,
    /// address-taken values).
    Unknown,
}

/// An interned node: the structure plus its memoized total node count
/// and a small dense id assigned in interning order.
struct HNode {
    node: SymNode,
    size: u32,
    id: u32,
}

/// A symbolic value computed along one execution path: a `Copy` handle
/// to a hash-consed node. Structural equality coincides with pointer
/// equality because equal structures intern to the same node.
#[derive(Clone, Copy)]
pub struct Sym(&'static HNode);

/// Node budget for constructed symbolic expressions. Self-referential
/// updates along an unrolled loop path (`x = x * x + x` executed many
/// times) otherwise roughly double the tree per assignment, and every
/// `State` event captures the current value — the fuzzer found a deep
/// generated unit whose symbolic state reached gigabytes and stalled
/// the extractor in the allocator. A result that would exceed the
/// budget is widened to [`Sym::unknown`], the usual sound
/// over-approximation. With hash-consing the check is O(1): a binary
/// result widens iff its operands' memoized sizes sum past the budget,
/// exactly the condition the old O(budget) counting walk enforced.
pub const MAX_SYM_NODES: usize = 256;

const SMALL_INT_MAX: i64 = 128;

fn arena() -> &'static Mutex<HashMap<SymNode, Sym>> {
    static ARENA: OnceLock<Mutex<HashMap<SymNode, Sym>>> = OnceLock::new();
    ARENA.get_or_init(|| Mutex::new(HashMap::new()))
}

fn intern(node: SymNode) -> Sym {
    let size = match &node {
        SymNode::Call { args, .. } => args
            .iter()
            .fold(1u32, |acc, a| acc.saturating_add(a.0.size)),
        SymNode::Unary(_, a) => 1u32.saturating_add(a.0.size),
        SymNode::Binary(_, a, b) => 1u32
            .saturating_add(a.0.size)
            .saturating_add(b.0.size),
        _ => 1,
    };
    let mut map = arena().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&found) = map.get(&node) {
        return found;
    }
    let id = map.len() as u32;
    let leaked: &'static HNode = Box::leak(Box::new(HNode {
        node: node.clone(),
        size,
        id,
    }));
    map.insert(node, Sym(leaked));
    Sym(leaked)
}

/// Number of distinct nodes interned so far. The arena only grows, so
/// this is also the peak node count — reported by `repro --sym-bench`
/// and guarded by the CI regression step.
pub fn arena_node_count() -> usize {
    arena().lock().unwrap_or_else(|e| e.into_inner()).len()
}

impl Sym {
    /// `S#name`: an input value.
    pub fn input(name: impl Into<Istr>) -> Sym {
        intern(SymNode::Input(name.into()))
    }

    /// `I#v`: an integer constant. Small non-negative constants hit a
    /// pre-interned table.
    pub fn int(v: i64) -> Sym {
        if (0..=SMALL_INT_MAX).contains(&v) {
            static SMALL: OnceLock<Vec<Sym>> = OnceLock::new();
            let table = SMALL.get_or_init(|| {
                (0..=SMALL_INT_MAX).map(|i| intern(SymNode::Int(i))).collect()
            });
            return table[v as usize];
        }
        intern(SymNode::Int(v))
    }

    /// A string literal.
    pub fn str_lit(s: impl Into<Istr>) -> Sym {
        intern(SymNode::Str(s.into()))
    }

    /// `V#n`: a temporary.
    pub fn temp(n: u32) -> Sym {
        intern(SymNode::Temp(n))
    }

    /// `E#callee(args...)`: a call result. Mirrors the pre-arena
    /// literal `Sym::Call { .. }` construction: no folding and no
    /// budget widening (the budget applies where trees *grow*, in
    /// [`Sym::binary`]/[`Sym::unary`]).
    pub fn call(callee: impl Into<Istr>, args: Vec<Sym>) -> Sym {
        intern(SymNode::Call { callee: callee.into(), args })
    }

    /// The widened "don't know" value.
    pub fn unknown() -> Sym {
        static UNKNOWN: OnceLock<Sym> = OnceLock::new();
        *UNKNOWN.get_or_init(|| intern(SymNode::Unknown))
    }

    /// Constant-folds integer operands where possible, otherwise builds
    /// a symbolic binary node (widened to unknown over the node
    /// budget).
    pub fn binary(op: BinOp, a: Sym, b: Sym) -> Sym {
        if let (SymNode::Int(x), SymNode::Int(y)) = (a.node(), b.node()) {
            if let Some(v) = fold(op, *x, *y) {
                return Sym::int(v);
            }
        }
        if a.0.size as usize + b.0.size as usize > MAX_SYM_NODES {
            return Sym::unknown();
        }
        intern(SymNode::Binary(op, a, b))
    }

    /// Constant-folds a unary operation where possible (widened to
    /// unknown over the node budget).
    pub fn unary(op: UnOp, a: Sym) -> Sym {
        if let SymNode::Int(x) = a.node() {
            match op {
                UnOp::Neg => return Sym::int(-x),
                UnOp::Not => return Sym::int(i64::from(*x == 0)),
                UnOp::BitNot => return Sym::int(!x),
                _ => {}
            }
        }
        if a.0.size as usize > MAX_SYM_NODES {
            return Sym::unknown();
        }
        intern(SymNode::Unary(op, a))
    }

    /// Interns a binary node verbatim — no folding, no widening.
    /// Mirrors the pre-arena literal `Sym::Binary(..)` construction;
    /// used by the store codec (a decoded node must round-trip to the
    /// byte-identical structure that was written) and by tests that pin
    /// specific shapes.
    pub fn binary_raw(op: BinOp, a: Sym, b: Sym) -> Sym {
        intern(SymNode::Binary(op, a, b))
    }

    /// Interns a unary node verbatim — no folding, no widening. See
    /// [`Sym::binary_raw`].
    pub fn unary_raw(op: UnOp, a: Sym) -> Sym {
        intern(SymNode::Unary(op, a))
    }

    /// The underlying node, for pattern matching.
    pub fn node(self) -> &'static SymNode {
        &self.0.node
    }

    /// Dense arena id (interning order). Stable within a process run.
    pub fn id(self) -> u32 {
        self.0.id
    }

    /// Memoized total node count of this value's tree, counting shared
    /// subtrees once per occurrence (i.e. the size the old boxed tree
    /// would have had).
    pub fn size(self) -> u32 {
        self.0.size
    }

    /// The concrete integer value, if this symbol is a constant.
    pub fn as_int(self) -> Option<i64> {
        match self.node() {
            SymNode::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The input name, if this symbol is an untouched input.
    pub fn as_input(self) -> Option<&'static str> {
        match self.node() {
            SymNode::Input(n) => Some(n.as_str()),
            _ => None,
        }
    }

    /// Whether the symbol mentions the given input name anywhere.
    pub fn mentions(self, name: &str) -> bool {
        match self.node() {
            SymNode::Input(n) => *n == *name,
            SymNode::Call { args, .. } => args.iter().any(|a| a.mentions(name)),
            SymNode::Unary(_, a) => a.mentions(name),
            SymNode::Binary(_, a, b) => a.mentions(name) || b.mentions(name),
            _ => false,
        }
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Sym {}

// Hash by arena id: consistent with pointer equality, one instruction,
// and dense. Ids depend on interning order, so they are stable within
// a process but not across runs — nothing output-facing iterates a
// `Sym`-keyed hash map (outputs key on rendered strings or ordered
// maps).
impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.id.hash(state);
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            SymNode::Input(n) => write!(f, "(S#{n})"),
            SymNode::Int(v) => write!(f, "(I#{v})"),
            SymNode::Str(s) => write!(f, "{s:?}"),
            SymNode::Temp(n) => write!(f, "(V#{n})"),
            SymNode::Call { callee, args } => {
                write!(f, "(E#{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("))")
            }
            SymNode::Unary(op, a) => write!(f, "{}{a}", op.as_str()),
            // Parenthesized so structurally distinct trees render
            // distinctly: without the parens `a + (b * c)` and
            // `(a + b) * c` would both print `... + ... * ...`,
            // ambiguous in NDJSON output and a digest-collision hazard
            // for the fuzz oracles.
            SymNode::Binary(op, a, b) => write!(f, "({a} {} {b})", op.as_str()),
            SymNode::Unknown => f.write_str("(?)"),
        }
    }
}

// Renders exactly like the pre-arena derived `Debug` (e.g.
// `Binary(Add, Input("x"), Int(1))`): the extractor's summary dedup
// keys on `format!("{event:?}")`, and diagnostic snapshots pin these
// strings.
impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            SymNode::Input(n) => f.debug_tuple("Input").field(n).finish(),
            SymNode::Int(v) => f.debug_tuple("Int").field(v).finish(),
            SymNode::Str(s) => f.debug_tuple("Str").field(s).finish(),
            SymNode::Temp(n) => f.debug_tuple("Temp").field(n).finish(),
            SymNode::Call { callee, args } => f
                .debug_struct("Call")
                .field("callee", callee)
                .field("args", args)
                .finish(),
            SymNode::Unary(op, a) => f.debug_tuple("Unary").field(op).field(a).finish(),
            SymNode::Binary(op, a, b) => {
                f.debug_tuple("Binary").field(op).field(a).field(b).finish()
            }
            SymNode::Unknown => f.write_str("Unknown"),
        }
    }
}

impl fmt::Debug for SymNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate through an interned handle-shaped view so a node
        // prints identically whether reached via `Sym` or directly.
        match self {
            SymNode::Input(n) => f.debug_tuple("Input").field(n).finish(),
            SymNode::Int(v) => f.debug_tuple("Int").field(v).finish(),
            SymNode::Str(s) => f.debug_tuple("Str").field(s).finish(),
            SymNode::Temp(n) => f.debug_tuple("Temp").field(n).finish(),
            SymNode::Call { callee, args } => f
                .debug_struct("Call")
                .field("callee", callee)
                .field("args", args)
                .finish(),
            SymNode::Unary(op, a) => f.debug_tuple("Unary").field(op).field(a).finish(),
            SymNode::Binary(op, a, b) => {
                f.debug_tuple("Binary").field(op).field(a).field(b).finish()
            }
            SymNode::Unknown => f.write_str("Unknown"),
        }
    }
}

fn fold(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        // A shift count outside [0, 63] is undefined behaviour in C;
        // `wrapping_shl(y as u32)` would silently mask it mod 64 (so
        // `1 << 64` folds to `1` and negative counts fold to garbage).
        // Stay symbolic instead, mirroring division by zero.
        BinOp::Shl => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shl(y as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shr(y as u32)
        }
        BinOp::Lt => i64::from(x < y),
        BinOp::Gt => i64::from(x > y),
        BinOp::Le => i64::from(x <= y),
        BinOp::Ge => i64::from(x >= y),
        BinOp::Eq => i64::from(x == y),
        BinOp::Ne => i64::from(x != y),
        BinOp::BitAnd => x & y,
        BinOp::BitXor => x ^ y,
        BinOp::BitOr => x | y,
        BinOp::And => i64::from(x != 0 && y != 0),
        BinOp::Or => i64::from(x != 0 || y != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        assert_eq!(Sym::binary(BinOp::Add, Sym::int(2), Sym::int(3)), Sym::int(5));
        assert_eq!(Sym::binary(BinOp::Eq, Sym::int(2), Sym::int(2)), Sym::int(1));
        assert_eq!(Sym::unary(UnOp::Not, Sym::int(0)), Sym::int(1));
        assert_eq!(Sym::unary(UnOp::Neg, Sym::int(7)), Sym::int(-7));
    }

    #[test]
    fn division_by_zero_stays_symbolic() {
        let s = Sym::binary(BinOp::Div, Sym::int(1), Sym::int(0));
        assert!(matches!(s.node(), SymNode::Binary(..)));
    }

    #[test]
    fn symbolic_operands_do_not_fold() {
        let s = Sym::binary(BinOp::BitAnd, Sym::input("gfp_mask"), Sym::int(16));
        assert_eq!(s.to_string(), "((S#gfp_mask) & (I#16))");
    }

    #[test]
    fn out_of_range_shift_counts_stay_symbolic() {
        // `1 << 64` must not fold (the hardware masks the count mod 64,
        // which would yield 1); same for negative counts.
        let s = Sym::binary(BinOp::Shl, Sym::int(1), Sym::int(64));
        assert!(matches!(s.node(), SymNode::Binary(..)), "1 << 64 must stay symbolic, got {s}");
        let s = Sym::binary(BinOp::Shl, Sym::int(1), Sym::int(-1));
        assert!(matches!(s.node(), SymNode::Binary(..)), "1 << -1 must stay symbolic, got {s}");
        let s = Sym::binary(BinOp::Shr, Sym::int(1), Sym::int(64));
        assert!(matches!(s.node(), SymNode::Binary(..)), "1 >> 64 must stay symbolic, got {s}");
        let s = Sym::binary(BinOp::Shr, Sym::int(1), Sym::int(i64::MIN));
        assert!(matches!(s.node(), SymNode::Binary(..)), "negative shift count must stay symbolic");
        // The boundary count 63 still folds (wrapping into the sign bit).
        assert_eq!(Sym::binary(BinOp::Shl, Sym::int(1), Sym::int(63)), Sym::int(i64::MIN));
        assert_eq!(Sym::binary(BinOp::Shl, Sym::int(1), Sym::int(3)), Sym::int(8));
        assert_eq!(Sym::binary(BinOp::Shr, Sym::int(16), Sym::int(63)), Sym::int(0));
    }

    #[test]
    fn display_parenthesizes_binary_nodes_unambiguously() {
        let a = Sym::input("a");
        let b = Sym::input("b");
        let c = Sym::input("c");
        // a + (b * c) vs (a + b) * c must render distinctly.
        let left = Sym::binary(BinOp::Add, a, Sym::binary(BinOp::Mul, b, c));
        let right = Sym::binary(BinOp::Mul, Sym::binary(BinOp::Add, a, b), c);
        assert_eq!(left.to_string(), "((S#a) + ((S#b) * (S#c)))");
        assert_eq!(right.to_string(), "(((S#a) + (S#b)) * (S#c))");
        assert_ne!(left.to_string(), right.to_string());
        // Unary over a binary is distinct from binary over a unary.
        let neg_sum = Sym::unary(UnOp::Neg, Sym::binary(BinOp::Add, a, b));
        let sum_of_neg = Sym::binary(BinOp::Add, Sym::unary(UnOp::Neg, a), b);
        assert_ne!(neg_sum.to_string(), sum_of_neg.to_string());
    }

    #[test]
    fn mentions_traverses_structure() {
        let s = Sym::binary(
            BinOp::Add,
            Sym::call("f", vec![Sym::input("x")]),
            Sym::int(1),
        );
        assert!(s.mentions("x"));
        assert!(!s.mentions("y"));
    }

    #[test]
    fn table5_notation() {
        assert_eq!(Sym::input("gfp_mask").to_string(), "(S#gfp_mask)");
        assert_eq!(Sym::int(16).to_string(), "(I#16)");
        assert_eq!(Sym::temp(1).to_string(), "(V#1)");
        let call = Sym::call("memalloc_noio_flags", vec![Sym::input("gfp_mask")]);
        assert_eq!(call.to_string(), "(E#memalloc_noio_flags((S#gfp_mask)))");
    }

    #[test]
    fn oversized_trees_stay_within_node_budget() {
        // `x = x * x + x` style growth: without the node budget this
        // doubles per step and reaches gigabytes within ~40 steps.
        // With it, oversized results widen to unknown (and may regrow
        // from there), so every constructed value stays small.
        let mut v = Sym::input("x");
        let mut widened = false;
        for _ in 0..1000 {
            let sq = Sym::binary(BinOp::Mul, v, v);
            v = Sym::binary(BinOp::Add, sq, v);
            widened |= v == Sym::unknown();
            assert!(
                v.size() as usize <= MAX_SYM_NODES + 1,
                "value exceeded the node budget: size {}",
                v.size()
            );
        }
        assert!(widened, "the growth chain must hit the budget at least once");
        // Small combinations stay structural.
        let s = Sym::binary(BinOp::Add, Sym::input("a"), Sym::input("b"));
        assert!(matches!(s.node(), SymNode::Binary(..)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Sym::int(3).as_int(), Some(3));
        assert_eq!(Sym::input("a").as_int(), None);
        assert_eq!(Sym::input("a").as_input(), Some("a"));
    }

    #[test]
    fn structurally_equal_values_intern_to_one_node() {
        let a = Sym::binary(BinOp::Add, Sym::input("x"), Sym::int(1));
        let b = Sym::binary(BinOp::Add, Sym::input("x"), Sym::int(1));
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.node(), b.node()));
        // Distinct structures get distinct nodes.
        let c = Sym::binary(BinOp::Add, Sym::input("x"), Sym::int(2));
        assert_ne!(a, c);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn sizes_are_memoized_per_node() {
        let x = Sym::input("x");
        assert_eq!(x.size(), 1);
        let e = Sym::binary(BinOp::Add, x, Sym::int(1));
        assert_eq!(e.size(), 3);
        // Sharing: `e + e` counts the shared subtree once per
        // occurrence, matching the old boxed-tree node count.
        let ee = Sym::binary(BinOp::Mul, e, e);
        assert_eq!(ee.size(), 7);
        let call = Sym::call("f", vec![e, x]);
        assert_eq!(call.size(), 5);
    }

    #[test]
    fn debug_matches_the_pre_arena_derived_format() {
        let e = Sym::binary(BinOp::Add, Sym::input("x"), Sym::int(1));
        assert_eq!(format!("{e:?}"), "Binary(Add, Input(\"x\"), Int(1))");
        let c = Sym::call("f", vec![Sym::temp(2), Sym::str_lit("s")]);
        assert_eq!(format!("{c:?}"), "Call { callee: \"f\", args: [Temp(2), Str(\"s\")] }");
        let u = Sym::unary(UnOp::Neg, Sym::input("a"));
        assert_eq!(format!("{u:?}"), "Unary(Neg, Input(\"a\"))");
        assert_eq!(format!("{:?}", Sym::unknown()), "Unknown");
    }
}
