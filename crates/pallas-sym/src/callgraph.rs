//! Call-graph queries over the path database.
//!
//! The fault-handling false-positive analysis (§5.3) and the inlining
//! ablation both reason about *how far below* a fast path its fault
//! handling sits; the call graph makes that depth queryable, and the
//! CLI uses it to summarize a unit's structure.

use crate::event::{Event, PathDb};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A static call graph: function name → set of direct callees (only
/// same-unit functions with extracted bodies appear as nodes, but edge
/// targets include external callees).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the call graph from depth-0 call events.
    pub fn build(db: &PathDb) -> Self {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for func in &db.functions {
            let entry = edges.entry(func.name.clone()).or_default();
            for rec in &func.records {
                for e in rec.calls() {
                    if let Event::Call { callee, depth: 0, .. } = e {
                        if !entry.contains(callee.as_str()) {
                            entry.insert(callee.clone());
                        }
                    }
                }
            }
        }
        CallGraph { edges }
    }

    /// Direct callees of `function` (empty if unknown).
    pub fn callees(&self, function: &str) -> Vec<&str> {
        self.edges
            .get(function)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Direct callers of `function` within the unit.
    pub fn callers(&self, function: &str) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|(_, callees)| callees.contains(function))
            .map(|(caller, _)| caller.as_str())
            .collect()
    }

    /// Minimum call depth from `from` to `to` (0 if equal, `None` if
    /// unreachable). External callees terminate exploration.
    pub fn call_depth(&self, from: &str, to: &str) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((from.to_string(), 0usize));
        seen.insert(from.to_string());
        while let Some((cur, d)) = queue.pop_front() {
            for callee in self.callees(&cur) {
                if callee == to {
                    return Some(d + 1);
                }
                if seen.insert(callee.to_string()) {
                    queue.push_back((callee.to_string(), d + 1));
                }
            }
        }
        None
    }

    /// All functions transitively reachable from `from` (excluding
    /// `from` itself unless recursive).
    pub fn reachable(&self, from: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut queue: VecDeque<&str> = self.callees(from).into_iter().collect();
        while let Some(cur) = queue.pop_front() {
            if out.insert(cur.to_string()) {
                for c in self.callees(cur) {
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// Leaf functions: defined in the unit, calling nothing.
    pub fn leaves(&self) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|(_, callees)| callees.is_empty())
            .map(|(f, _)| f.as_str())
            .collect()
    }

    /// Number of functions with outgoing-edge entries (unit functions).
    pub fn node_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractConfig};
    use pallas_lang::parse;

    fn graph_of(src: &str) -> CallGraph {
        let ast = parse(src).unwrap();
        let db = extract("cg", &ast, src, &ExtractConfig::default());
        CallGraph::build(&db)
    }

    const CHAIN: &str = "\
int external_log(int x);
int level2(int x) { external_log(x); return 0; }
int level1(int x) { return level2(x); }
int top(int x) { level1(x); return 0; }
int leaf(int x) { return x; }";

    #[test]
    fn edges_and_callers() {
        let g = graph_of(CHAIN);
        assert_eq!(g.callees("top"), vec!["level1"]);
        assert_eq!(g.callees("level1"), vec!["level2"]);
        assert_eq!(g.callers("level2"), vec!["level1"]);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn call_depths() {
        let g = graph_of(CHAIN);
        assert_eq!(g.call_depth("top", "top"), Some(0));
        assert_eq!(g.call_depth("top", "level1"), Some(1));
        assert_eq!(g.call_depth("top", "level2"), Some(2));
        assert_eq!(g.call_depth("top", "external_log"), Some(3));
        assert_eq!(g.call_depth("top", "leaf"), None);
        assert_eq!(g.call_depth("leaf", "top"), None);
    }

    #[test]
    fn reachability_and_leaves() {
        let g = graph_of(CHAIN);
        let r = g.reachable("top");
        assert!(r.contains("level1") && r.contains("level2") && r.contains("external_log"));
        assert!(!r.contains("leaf"));
        assert_eq!(g.leaves(), vec!["leaf"]);
    }

    #[test]
    fn recursion_terminates() {
        let g = graph_of("int f(int x) { if (x) return f(x - 1); return 0; }");
        assert_eq!(g.call_depth("f", "f"), Some(0));
        assert!(g.reachable("f").contains("f"));
    }

    #[test]
    fn fault_handling_depth_matches_fp_story() {
        // The §5.3 FH false positive: handling sits at call depth 2,
        // beyond the default inlining depth of 1.
        let g = graph_of(CHAIN);
        let depth = g.call_depth("top", "level2").unwrap();
        assert!(depth > ExtractConfig::default().inline_depth as usize);
    }
}
