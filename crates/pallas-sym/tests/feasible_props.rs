//! Property tests for the path-feasibility engine's one-sided
//! soundness contract: a condition sequence that is *satisfied* by a
//! concrete assignment (each condition's `taken` flag matches its
//! truth value under that assignment) must never be judged a
//! contradiction. The engine may miss contradictions (`Feasible` is
//! "no proof found"), but a false `Contradiction` would prune a real
//! path and silently hide bugs from every checker.

use pallas_lang::ast::{BinOp, UnOp};
use pallas_sym::{path_feasibility, Feasibility, Sym};
use proptest::prelude::*;

/// A leaf comparison `p<var> OP k`.
#[derive(Debug, Clone, Copy)]
struct Cmp {
    var: usize,
    op: BinOp,
    k: i64,
    /// Render as `k OP p<var>` instead, exercising orientation.
    flipped: bool,
}

/// One path condition over the four-variable alphabet.
#[derive(Debug, Clone, Copy)]
enum Cond {
    /// `p OP k` (or flipped).
    Leaf(Cmp),
    /// `!(p OP k)`.
    Not(Cmp),
    /// `(a) && (b)`.
    AndOp(Cmp, Cmp),
    /// `(a) || (b)`.
    OrOp(Cmp, Cmp),
    /// Bare variable truthiness: `p`.
    Bare(usize),
    /// An opaque arithmetic condition `p + k` the domain cannot key.
    Arith(usize, i64),
}

fn var(i: usize) -> Sym {
    Sym::input(format!("p{i}"))
}

fn cmp_sym(c: Cmp) -> Sym {
    if c.flipped {
        Sym::binary(c.op, Sym::int(c.k), var(c.var))
    } else {
        Sym::binary(c.op, var(c.var), Sym::int(c.k))
    }
}

fn cmp_truth(c: Cmp, env: &[i64; 4]) -> bool {
    let (a, b) =
        if c.flipped { (c.k, env[c.var]) } else { (env[c.var], c.k) };
    match c.op {
        BinOp::Lt => a < b,
        BinOp::Gt => a > b,
        BinOp::Le => a <= b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("only comparisons are generated"),
    }
}

fn cond_sym(c: &Cond) -> Sym {
    match *c {
        Cond::Leaf(l) => cmp_sym(l),
        Cond::Not(l) => Sym::unary(UnOp::Not, cmp_sym(l)),
        Cond::AndOp(a, b) => Sym::binary(BinOp::And, cmp_sym(a), cmp_sym(b)),
        Cond::OrOp(a, b) => Sym::binary(BinOp::Or, cmp_sym(a), cmp_sym(b)),
        Cond::Bare(v) => var(v),
        Cond::Arith(v, k) => Sym::binary(BinOp::Add, var(v), Sym::int(k)),
    }
}

fn cond_truth(c: &Cond, env: &[i64; 4]) -> bool {
    match *c {
        Cond::Leaf(l) => cmp_truth(l, env),
        Cond::Not(l) => !cmp_truth(l, env),
        Cond::AndOp(a, b) => cmp_truth(a, env) && cmp_truth(b, env),
        Cond::OrOp(a, b) => cmp_truth(a, env) || cmp_truth(b, env),
        Cond::Bare(v) => env[v] != 0,
        Cond::Arith(v, k) => env[v] + k != 0,
    }
}

fn arb_cmp() -> impl Strategy<Value = Cmp> {
    (0usize..4, 0u8..6, -8i64..8, any::<bool>()).prop_map(|(var, op, k, flipped)| Cmp {
        var,
        op: [BinOp::Lt, BinOp::Gt, BinOp::Le, BinOp::Ge, BinOp::Eq, BinOp::Ne][op as usize],
        k,
        flipped,
    })
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        arb_cmp().prop_map(Cond::Leaf),
        arb_cmp().prop_map(Cond::Not),
        (arb_cmp(), arb_cmp()).prop_map(|(a, b)| Cond::AndOp(a, b)),
        (arb_cmp(), arb_cmp()).prop_map(|(a, b)| Cond::OrOp(a, b)),
        (0usize..4).prop_map(Cond::Bare),
        (0usize..4, -8i64..8).prop_map(|(v, k)| Cond::Arith(v, k)),
    ]
}

proptest! {
    /// Soundness: a path consistent with a witness assignment is never
    /// a contradiction, regardless of how many conditions pile up on
    /// the same variables.
    #[test]
    fn satisfied_paths_are_never_contradictions(
        env in (-8i64..8, -8i64..8, -8i64..8, -8i64..8),
        conds in proptest::collection::vec(arb_cond(), 0..24),
    ) {
        let env = [env.0, env.1, env.2, env.3];
        let path: Vec<(Sym, bool)> =
            conds.iter().map(|c| (cond_sym(c), cond_truth(c, &env))).collect();
        prop_assert_eq!(
            path_feasibility(&path),
            Feasibility::Feasible,
            "witness {:?} satisfies the path, yet it was pruned: {:?}",
            env,
            conds
        );
    }

    /// Exactness on single-variable comparison sequences. Restricted
    /// to one variable and plain (possibly negated, possibly flipped)
    /// comparisons against small constants, the interval + disequality
    /// domain is complete, not just sound: the verdict must agree both
    /// ways with a brute-force witness search. The small domain is
    /// sufficient — every bound is derived from a constant in [-8, 8),
    /// so a nonempty satisfying set always contains a point in
    /// [-10, 10]. This is the regression net for the eq-vs-interval
    /// bug where `x >= 1 && x <= 2 && x != 1 && x != 2` (and any other
    /// fully ne-exhausted interval wider than a single point) was
    /// judged feasible.
    #[test]
    fn single_variable_verdicts_match_brute_force(
        legs in proptest::collection::vec(
            (arb_cmp(), any::<bool>(), any::<bool>()), 1..12),
    ) {
        let path: Vec<(Sym, bool)> = legs
            .iter()
            .map(|&(mut c, negated, taken)| {
                c.var = 0;
                let s = if negated {
                    Sym::unary(UnOp::Not, cmp_sym(c))
                } else {
                    cmp_sym(c)
                };
                (s, taken)
            })
            .collect();
        let witness = (-10i64..=10).any(|v| {
            let env = [v, 0, 0, 0];
            legs.iter().all(|&(mut c, negated, taken)| {
                c.var = 0;
                (cmp_truth(c, &env) != negated) == taken
            })
        });
        let expected =
            if witness { Feasibility::Feasible } else { Feasibility::Contradiction };
        prop_assert_eq!(
            path_feasibility(&path),
            expected,
            "witness-in-[-10,10] = {} disagrees with the engine on: {:?}",
            witness,
            legs
        );
    }

    /// The verdict is a pure function of the condition sequence.
    #[test]
    fn verdict_is_deterministic(
        taken in proptest::collection::vec(any::<bool>(), 0..24),
        conds in proptest::collection::vec(arb_cond(), 0..24),
    ) {
        let path: Vec<(Sym, bool)> = conds
            .iter()
            .zip(taken.iter().chain(std::iter::repeat(&true)))
            .map(|(c, t)| (cond_sym(c), *t))
            .collect();
        prop_assert_eq!(path_feasibility(&path), path_feasibility(&path));
    }
}

/// Keeps the soundness property honest: the engine does prove *some*
/// contradictions, so `Feasible` above is not vacuous.
#[test]
fn engine_is_not_vacuously_feasible() {
    let eq = Sym::binary(BinOp::Eq, var(0), Sym::int(3));
    let ne = Sym::binary(BinOp::Ne, var(0), Sym::int(3));
    assert_eq!(
        path_feasibility(&[(eq, true), (ne, true)]),
        Feasibility::Contradiction
    );
}
