//! Regression pin for the feasibility oracle's irreducible-cycle
//! fallback.
//!
//! Natural-loop detection only sees reducible cycles (a back edge
//! whose header dominates its latch). Structured control flow always
//! produces reducible CFGs, so the only way to build an irreducible
//! cycle in this language is a `goto` from outside a loop into its
//! body: the body block gains a second entry that bypasses the
//! header, the header stops dominating the latch, and `find_loops`
//! reports nothing. The loop-summary machinery therefore never sees
//! the cycle — the oracle must fall back to per-path revisit
//! transparency (any block already on the current prefix asserts
//! nothing), which is what keeps changing variables from producing
//! false contradictions across iterations.

use pallas_cfg::{
    build_cfg, enumerate_paths, enumerate_paths_with, find_loops, summarize_loops, PathConfig,
};
use pallas_lang::parse;
use pallas_sym::FeasibilityOracle;

/// A `while` loop entered both through its header and through a
/// `goto` into the middle of its body. The goto guard (`g`), the
/// in-cycle condition (`x == 0`) and the loop bound (`i < n`) are
/// over mutually independent variables — `g` in particular must not
/// constrain `n`, or exiting the loop right after the goto becomes
/// genuinely infeasible — and `x` changes every iteration, so *every*
/// enumerated path has a concrete witness: the oracle must not prune
/// anything.
const TWO_ENTRY_CYCLE: &str = "\
int sink(int v);
int walk(int x, int n, int g) {
  int i = 0;
  if (g) goto mid;
  while (i < n) {
    i = i + 1;
    mid:
    if (x == 0) {
      sink(i);
    }
    x = x + 1;
  }
  return x;
}
";

#[test]
fn irreducible_cycle_is_invisible_to_loop_detection() {
    let ast = parse(TWO_ENTRY_CYCLE).expect("parses");
    let f = ast.functions().next().expect("one function");
    let cfg = build_cfg(&ast, &f);
    assert!(
        find_loops(&cfg).is_empty(),
        "goto-into-body should make the cycle irreducible, but natural loops were found"
    );
    assert!(summarize_loops(&ast, &cfg).is_empty(), "no loops means no summaries");
}

#[test]
fn oracle_stays_transparent_through_an_irreducible_cycle() {
    let ast = parse(TWO_ENTRY_CYCLE).expect("parses");
    let f = ast.functions().next().expect("one function");
    let cfg = build_cfg(&ast, &f);
    // `truncated` is necessarily set here — the infinite family of
    // further unrollings dies at `max_visits` — but that cut is
    // prefix-local and identical in both runs; only the path budget
    // would skew the comparison.
    let config = PathConfig::default();
    let full = enumerate_paths(&cfg, &config);
    let mut oracle = FeasibilityOracle::new(&ast);
    let pruned = enumerate_paths_with(&cfg, &config, &mut oracle);
    assert!(full.paths.len() < config.max_paths, "path budget too small for the fixture");
    assert!(full.paths.len() > 1, "fixture should enumerate several paths");
    assert_eq!(
        pruned.paths, full.paths,
        "every path here has a concrete witness; the oracle falsely pruned one"
    );
    assert_eq!(pruned.pruned, 0);
}

/// First visits inside an irreducible cycle still assert: revisit
/// transparency is per-path, not per-cycle. A goto path that carries
/// `x > 4` into the cycle makes the `x == 0` then-arm genuinely dead
/// on its first visit, and the oracle must still veto it.
#[test]
fn first_visit_decisions_in_an_irreducible_cycle_still_prune() {
    let src = "\
int sink(int v);
int walk(int x, int n) {
  int i = 0;
  if (x > 4) goto mid;
  while (i < n) {
    i = i + 1;
    mid:
    if (x == 0) {
      sink(i);
    }
    x = x + 1;
  }
  return x;
}
";
    let ast = parse(src).expect("parses");
    let f = ast.functions().next().expect("one function");
    let cfg = build_cfg(&ast, &f);
    assert!(find_loops(&cfg).is_empty(), "cycle must be irreducible");
    let config = PathConfig::default();
    let full = enumerate_paths(&cfg, &config);
    let mut oracle = FeasibilityOracle::new(&ast);
    let pruned = enumerate_paths_with(&cfg, &config, &mut oracle);
    assert!(full.paths.len() < config.max_paths, "path budget too small for the fixture");
    assert!(pruned.pruned > 0, "the goto-reachable `x == 0` arm contradicts `x > 4`");
    // Soundness: whatever survives is a subset of the full enumeration.
    for p in &pruned.paths {
        assert!(full.paths.contains(p), "pruning invented a path: {p:?}");
    }
    assert!(pruned.paths.len() < full.paths.len());
}
