//! Degenerate-input robustness: shapes the fuzzer's generator emits
//! at its extremes — empty bodies, goto-only loops, unreachable
//! switch arms — must extract gracefully (possibly to zero paths),
//! never panic.

use pallas_lang::parse;
use pallas_sym::{extract, ExtractConfig, PathDb};

fn db_of(src: &str) -> PathDb {
    let ast = parse(src).unwrap();
    extract("degen", &ast, src, &ExtractConfig::default())
}

#[test]
fn empty_function_extracts_one_implicit_return_path() {
    let db = db_of("int empty_fn(void) { }");
    let f = db.function("empty_fn").unwrap();
    assert_eq!(f.records.len(), 1);
    assert!(f.records[0].output.value.is_none(), "implicit return has no value");
}

#[test]
fn void_function_with_only_side_effects() {
    let db = db_of("int log_it(int n);\nvoid tick(int n) { log_it(n); }");
    let f = db.function("tick").unwrap();
    assert_eq!(f.records.len(), 1);
}

#[test]
fn goto_only_body_yields_no_complete_paths() {
    // `loop: goto loop;` never reaches a return: the visit cap kills
    // every unrolling, so the function legitimately has zero paths.
    let db = db_of("int spin(void) { loop: goto loop; }");
    let f = db.function("spin").unwrap();
    assert!(f.records.is_empty(), "no entry-to-return path exists");
}

#[test]
fn goto_skipping_into_a_loop_extracts() {
    let db = db_of(
        "int weird(int x) {\n\
           goto out;\n\
           while (x) { out: x--; }\n\
           return x;\n\
         }",
    );
    let f = db.function("weird").unwrap();
    assert!(!f.records.is_empty());
}

#[test]
fn unreachable_statements_before_first_case_are_skipped() {
    // C allows statements between `switch (x) {` and the first
    // `case`; they are unreachable and must not derail extraction.
    let db = db_of(
        "int sw(int x) {\n\
           switch (x) {\n\
             x = 9;\n\
             case 0: return 1;\n\
             default: return 0;\n\
           }\n\
         }",
    );
    let f = db.function("sw").unwrap();
    assert_eq!(f.records.len(), 2, "case 0 and default");
}

#[test]
fn empty_switch_falls_through() {
    let db = db_of("int es(int x) { switch (x) { } return 1; }");
    let f = db.function("es").unwrap();
    assert!(!f.records.is_empty());
    assert!(f.records.iter().all(|r| r.output.value.is_some()));
}

#[test]
fn code_after_return_is_ignored() {
    let db = db_of(
        "int tail(int x) {\n\
           return x;\n\
           x = 1;\n\
           goto out;\n\
         out:\n\
           return 0;\n\
         }",
    );
    let f = db.function("tail").unwrap();
    assert_eq!(f.records.len(), 1, "only the live return survives");
}

#[test]
fn self_recursive_function_does_not_hang_inlining() {
    // Summary inlining must not follow the recursive edge forever.
    let db = db_of("int rec(int x) { if (x) return rec(x - 1); return 0; }");
    let f = db.function("rec").unwrap();
    assert_eq!(f.records.len(), 2);
}

#[test]
fn function_with_params_but_empty_body() {
    let db = db_of("int noop(int a, int b, int c) { }");
    let f = db.function("noop").unwrap();
    assert_eq!(f.records.len(), 1);
    assert!(f.records[0].states().next().is_none(), "no state events");
}
