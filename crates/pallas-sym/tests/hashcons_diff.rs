//! Differential battery: hash-consed [`Sym`] vs the pre-arena boxed
//! tree, replayed over 256 seeded construction programs.
//!
//! [`RefSym`] below is an independent reimplementation of the old
//! representation — an owned tree with per-call constant folding, an
//! O(n) node-counting walk, and the same 256-node widening budget. Each
//! seed drives an identical random sequence of constructor calls
//! through both implementations and asserts, after every step, that
//! they agree on:
//!
//! - `Display` and `Debug` rendering (the strings NDJSON, Table 5, and
//!   the summary-dedup keys are built from);
//! - the memoized size vs the counted size (the widening input);
//! - *when* widening fires (an oversized result collapses to unknown in
//!   both, at the same step);
//! - equality: two handles are pointer-equal iff the reference trees
//!   are structurally equal (no behavioral hash-consing collisions).
//!
//! A second battery extracts seeded source variants and checks that
//! every symbolic value reachable from the path database survives a
//! round trip through the reference tree and back into the arena as
//! the *same* node, and that re-extraction reproduces the event
//! multiset exactly (interning is invisible to extraction).

use pallas_lang::ast::{BinOp, UnOp};
use pallas_lang::parse;
use pallas_sym::{extract, Event, ExtractConfig, Sym, SymNode};
use std::fmt;

// ---------------------------------------------------------------------------
// Reference implementation: the pre-arena boxed tree.
// ---------------------------------------------------------------------------

/// Node budget, mirrored from `pallas_sym::sym::MAX_SYM_NODES`.
const BUDGET: usize = 256;

#[derive(Clone, PartialEq, Eq, Debug)]
enum RefSym {
    Input(String),
    Int(i64),
    Str(String),
    Temp(u32),
    Call { callee: String, args: Vec<RefSym> },
    Unary(UnOp, Box<RefSym>),
    Binary(BinOp, Box<RefSym>, Box<RefSym>),
    Unknown,
}

impl RefSym {
    /// The old O(n) counting walk: every node once per occurrence.
    fn count(&self) -> usize {
        match self {
            RefSym::Call { args, .. } => 1 + args.iter().map(RefSym::count).sum::<usize>(),
            RefSym::Unary(_, a) => 1 + a.count(),
            RefSym::Binary(_, a, b) => 1 + a.count() + b.count(),
            _ => 1,
        }
    }

    fn binary(op: BinOp, a: RefSym, b: RefSym) -> RefSym {
        if let (RefSym::Int(x), RefSym::Int(y)) = (&a, &b) {
            if let Some(v) = ref_fold(op, *x, *y) {
                return RefSym::Int(v);
            }
        }
        if a.count() + b.count() > BUDGET {
            return RefSym::Unknown;
        }
        RefSym::Binary(op, Box::new(a), Box::new(b))
    }

    fn unary(op: UnOp, a: RefSym) -> RefSym {
        if let RefSym::Int(x) = &a {
            match op {
                UnOp::Neg => return RefSym::Int(-x),
                UnOp::Not => return RefSym::Int(i64::from(*x == 0)),
                UnOp::BitNot => return RefSym::Int(!x),
                _ => {}
            }
        }
        if a.count() > BUDGET {
            return RefSym::Unknown;
        }
        RefSym::Unary(op, Box::new(a))
    }
}

/// Independent copy of the constant-folding table (division and
/// remainder by zero stay symbolic; shift counts outside `[0, 64)`
/// stay symbolic because the hardware would mask them).
fn ref_fold(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::Shl => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shl(y as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shr(y as u32)
        }
        BinOp::Lt => i64::from(x < y),
        BinOp::Gt => i64::from(x > y),
        BinOp::Le => i64::from(x <= y),
        BinOp::Ge => i64::from(x >= y),
        BinOp::Eq => i64::from(x == y),
        BinOp::Ne => i64::from(x != y),
        BinOp::BitAnd => x & y,
        BinOp::BitXor => x ^ y,
        BinOp::BitOr => x | y,
        BinOp::And => i64::from(x != 0 && y != 0),
        BinOp::Or => i64::from(x != 0 || y != 0),
    })
}

impl fmt::Display for RefSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefSym::Input(n) => write!(f, "(S#{n})"),
            RefSym::Int(v) => write!(f, "(I#{v})"),
            RefSym::Str(s) => write!(f, "{s:?}"),
            RefSym::Temp(n) => write!(f, "(V#{n})"),
            RefSym::Call { callee, args } => {
                write!(f, "(E#{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("))")
            }
            RefSym::Unary(op, a) => write!(f, "{}{a}", op.as_str()),
            RefSym::Binary(op, a, b) => write!(f, "({a} {} {b})", op.as_str()),
            RefSym::Unknown => f.write_str("(?)"),
        }
    }
}

/// Projects an interned handle back into a reference tree.
fn sym_to_ref(s: Sym) -> RefSym {
    match s.node() {
        SymNode::Input(n) => RefSym::Input(n.to_string()),
        SymNode::Int(v) => RefSym::Int(*v),
        SymNode::Str(t) => RefSym::Str(t.to_string()),
        SymNode::Temp(n) => RefSym::Temp(*n),
        SymNode::Call { callee, args } => RefSym::Call {
            callee: callee.to_string(),
            args: args.iter().map(|a| sym_to_ref(*a)).collect(),
        },
        SymNode::Unary(op, a) => RefSym::Unary(*op, Box::new(sym_to_ref(*a))),
        SymNode::Binary(op, a, b) => {
            RefSym::Binary(*op, Box::new(sym_to_ref(*a)), Box::new(sym_to_ref(*b)))
        }
        SymNode::Unknown => RefSym::Unknown,
    }
}

/// Re-interns a reference tree verbatim (raw constructors: no folding,
/// no widening — the tree already carries whatever shape the original
/// construction produced).
fn ref_to_sym_raw(r: &RefSym) -> Sym {
    match r {
        RefSym::Input(n) => Sym::input(n.as_str()),
        RefSym::Int(v) => Sym::int(*v),
        RefSym::Str(s) => Sym::str_lit(s.as_str()),
        RefSym::Temp(n) => Sym::temp(*n),
        RefSym::Call { callee, args } => {
            Sym::call(callee.as_str(), args.iter().map(ref_to_sym_raw).collect())
        }
        RefSym::Unary(op, a) => Sym::unary_raw(*op, ref_to_sym_raw(a)),
        RefSym::Binary(op, a, b) => {
            Sym::binary_raw(*op, ref_to_sym_raw(a), ref_to_sym_raw(b))
        }
        RefSym::Unknown => Sym::unknown(),
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64), self-contained.
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const BIN_OPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::BitAnd,
    BinOp::BitXor,
    BinOp::BitOr,
    BinOp::And,
    BinOp::Or,
];

/// The unary operators the evaluator actually builds nodes for, plus
/// the ones it folds — widened operators like `&x` never reach
/// `Sym::unary` in the extractor, but the constructor must still agree
/// with the reference on them.
const UN_OPS: [UnOp; 4] = [UnOp::Neg, UnOp::Not, UnOp::BitNot, UnOp::Deref];

const NAMES: [&str; 6] = ["gfp_mask", "order", "page", "flags", "zone", "nid"];
const CALLEES: [&str; 5] =
    ["memalloc_noio_flags", "get_page_from_freelist", "prep_page", "zone_watermark_ok", "kmalloc"];

/// One step of the construction program: applies the same randomly
/// chosen constructor to both implementations and pushes the results.
fn step(rng: &mut Rng, refs: &mut Vec<RefSym>, syms: &mut Vec<Sym>) {
    debug_assert_eq!(refs.len(), syms.len());
    let pick = |rng: &mut Rng, len: usize| rng.below(len);
    match rng.below(10) {
        // Fresh leaves keep the pool from collapsing into unknowns.
        0 => {
            let n = NAMES[rng.below(NAMES.len())];
            refs.push(RefSym::Input(n.to_string()));
            syms.push(Sym::input(n));
        }
        1 => {
            // Mix small (pre-interned table), large, and negative ints.
            let v = match rng.below(4) {
                0 => rng.below(129) as i64,
                1 => -(rng.below(1000) as i64),
                2 => i64::MAX - rng.below(10) as i64,
                _ => rng.next() as i64,
            };
            refs.push(RefSym::Int(v));
            syms.push(Sym::int(v));
        }
        2 => {
            let n = rng.below(32) as u32;
            refs.push(RefSym::Temp(n));
            syms.push(Sym::temp(n));
        }
        3 => {
            let s = NAMES[rng.below(NAMES.len())];
            refs.push(RefSym::Str(s.to_string()));
            syms.push(Sym::str_lit(s));
        }
        4 => {
            refs.push(RefSym::Unknown);
            syms.push(Sym::unknown());
        }
        5..=7 => {
            let op = BIN_OPS[rng.below(BIN_OPS.len())];
            let (i, j) = (pick(rng, refs.len()), pick(rng, refs.len()));
            refs.push(RefSym::binary(op, refs[i].clone(), refs[j].clone()));
            syms.push(Sym::binary(op, syms[i], syms[j]));
        }
        8 => {
            let op = UN_OPS[rng.below(UN_OPS.len())];
            let i = pick(rng, refs.len());
            refs.push(RefSym::unary(op, refs[i].clone()));
            syms.push(Sym::unary(op, syms[i]));
        }
        _ => {
            let callee = CALLEES[rng.below(CALLEES.len())];
            let argc = rng.below(4);
            let idx: Vec<usize> = (0..argc).map(|_| pick(rng, refs.len())).collect();
            refs.push(RefSym::Call {
                callee: callee.to_string(),
                args: idx.iter().map(|&i| refs[i].clone()).collect(),
            });
            syms.push(Sym::call(callee, idx.iter().map(|&i| syms[i]).collect()));
        }
    }
}

#[test]
fn arena_matches_reference_trees_over_256_seeds() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1));
        let mut refs: Vec<RefSym> = Vec::new();
        let mut syms: Vec<Sym> = Vec::new();
        // Seed the pool so the first composite steps have operands.
        refs.push(RefSym::Input("x".into()));
        syms.push(Sym::input("x"));
        for stepno in 0..160 {
            step(&mut rng, &mut refs, &mut syms);
            let (r, s) = (refs.last().unwrap(), *syms.last().unwrap());
            assert_eq!(
                r.to_string(),
                s.to_string(),
                "seed {seed} step {stepno}: Display diverged"
            );
            assert_eq!(
                format!("{r:?}"),
                format!("{s:?}"),
                "seed {seed} step {stepno}: Debug diverged"
            );
            // Memoized size == counted size: the widening inputs agree,
            // so widening fires at exactly the same constructions (also
            // checked directly: unknown iff unknown).
            assert_eq!(
                r.count(),
                s.size() as usize,
                "seed {seed} step {stepno}: size diverged for `{s}`"
            );
            assert_eq!(
                matches!(r, RefSym::Unknown),
                s == Sym::unknown(),
                "seed {seed} step {stepno}: widening diverged"
            );
        }
        // Equality coherence across the whole pool: handles are equal
        // iff the reference trees are structurally equal. A hash-cons
        // collision (two structures on one node) or a missed dedup
        // (one structure on two nodes) both fail here.
        for _ in 0..64 {
            let i = rng.below(refs.len());
            let j = rng.below(refs.len());
            assert_eq!(
                refs[i] == refs[j],
                syms[i] == syms[j],
                "seed {seed}: equality diverged between #{i} `{}` and #{j} `{}`",
                refs[i],
                refs[j]
            );
        }
    }
}

#[test]
fn widening_threshold_matches_the_reference_exactly() {
    // Drive a `x = x * x + x` growth chain through both implementations
    // in lockstep; the step index where each first widens must match,
    // as must every intermediate rendering.
    let mut r = RefSym::Input("x".into());
    let mut s = Sym::input("x");
    let mut first_widen = None;
    for i in 0..64 {
        let rsq = RefSym::binary(BinOp::Mul, r.clone(), r.clone());
        r = RefSym::binary(BinOp::Add, rsq, r);
        let ssq = Sym::binary(BinOp::Mul, s, s);
        s = Sym::binary(BinOp::Add, ssq, s);
        assert_eq!(r.to_string(), s.to_string(), "step {i}");
        assert_eq!(
            matches!(r, RefSym::Unknown),
            s == Sym::unknown(),
            "step {i}: widening diverged"
        );
        if first_widen.is_none() && s == Sym::unknown() {
            first_widen = Some(i);
        }
    }
    assert!(first_widen.is_some(), "the chain must widen within 64 doublings");
}

// ---------------------------------------------------------------------------
// Extraction battery: every Sym the extractor produces round-trips
// through a reference tree back to the identical arena node, and
// extraction itself is reproducible event-for-event.
// ---------------------------------------------------------------------------

/// A seeded source-variant generator over templates the grammar is
/// known to accept: arithmetic rewrites, flag masks, helper calls, and
/// branches, parameterized by the seed.
fn variant_source(seed: u64) -> String {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let op = ["+", "-", "*", "&", "|", "^"][rng.below(6)];
    let k1 = rng.below(512);
    let k2 = rng.below(64);
    let name = NAMES[rng.below(NAMES.len())];
    let helper = CALLEES[rng.below(CALLEES.len())];
    format!(
        "int {helper}(int m);\n\
         int helper_{seed}(int v) {{ return v {op} {k2}; }}\n\
         int fast_{seed}(int {name}, int order) {{\n\
           int t = {name} {op} {k1};\n\
           if (order > {k2}) {{\n\
             t = {helper}(t);\n\
             {name} = t {op} {name};\n\
           }} else {{\n\
             t = helper_{seed}(t);\n\
           }}\n\
           if (t) return 1;\n\
           return 0;\n\
         }}\n"
    )
}

/// All symbolic values reachable from a path database.
fn db_syms(db: &pallas_sym::PathDb) -> Vec<Sym> {
    let mut out = Vec::new();
    for f in &db.functions {
        for rec in &f.records {
            for ev in &rec.events {
                if let Event::State { value, .. } = ev {
                    out.push(*value);
                }
            }
            if let Some(v) = rec.output.value {
                out.push(v);
            }
        }
    }
    out
}

/// The event-multiset projection of a database: every event's Debug
/// rendering plus the per-path output, sorted.
fn event_multiset(db: &pallas_sym::PathDb) -> Vec<String> {
    let mut out = Vec::new();
    for f in &db.functions {
        for rec in &f.records {
            for ev in &rec.events {
                out.push(format!("{}:{}:{ev:?}", f.name, rec.index));
            }
            out.push(format!("{}:{}:out:{:?}", f.name, rec.index, rec.output));
        }
    }
    out.sort();
    out
}

#[test]
fn extracted_syms_round_trip_through_reference_trees() {
    let mut total = 0usize;
    for seed in 0..256u64 {
        let src = variant_source(seed);
        let ast = parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let db = extract("diff", &ast, &src, &ExtractConfig::default());
        for s in db_syms(&db) {
            let r = sym_to_ref(s);
            assert_eq!(r.to_string(), s.to_string(), "seed {seed}: projection changed rendering");
            let back = ref_to_sym_raw(&r);
            // Same *node*, not merely an equal value: interning is
            // canonical for every shape extraction produces.
            assert!(
                std::ptr::eq(s.node(), back.node()),
                "seed {seed}: `{s}` re-interned to a different node"
            );
            total += 1;
        }
        // Extraction is reproducible: a second run over a fresh AST
        // yields the identical event multiset (per-run interning state
        // never leaks into recorded events).
        let ast2 = parse(&src).unwrap();
        let db2 = extract("diff", &ast2, &src, &ExtractConfig::default());
        assert_eq!(
            event_multiset(&db),
            event_multiset(&db2),
            "seed {seed}: re-extraction changed the event multiset"
        );
    }
    assert!(total > 1000, "battery too weak: only {total} symbolic values exercised");
}
