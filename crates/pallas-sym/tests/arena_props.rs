//! Property tests for the hash-consing arena's core contracts:
//!
//! 1. *Canonicality* — structurally equal values intern to the same
//!    node (pointer equality coincides with structural equality).
//! 2. *No collisions* — structurally distinct values never share a
//!    node, whatever interning order the process happened to use.
//! 3. *Budget fidelity* — the memoized per-node size equals an
//!    independent counting walk, and the checked constructors widen at
//!    exactly the threshold the old O(n) `count_into` walk enforced.
//! 4. *Order independence* — Display, Debug, folding, and the final
//!    handle are invariant under the order in which subtrees were
//!    interned (including interleaving with unrelated constructions).

use pallas_lang::ast::{BinOp, UnOp};
use pallas_sym::{Sym, SymNode, MAX_SYM_NODES};
use proptest::prelude::*;

/// A plain-data description of a symbolic value. Indices select from
/// fixed pools so shrinking stays effective.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Desc {
    Input(u8),
    Int(i64),
    Str(u8),
    Temp(u8),
    Call(u8, Vec<Desc>),
    Unary(u8, Box<Desc>),
    Binary(u8, Box<Desc>, Box<Desc>),
    Unknown,
}

const NAMES: [&str; 5] = ["gfp_mask", "order", "flags", "page", "zone"];
const CALLEES: [&str; 3] = ["noio", "prep_page", "kmalloc"];
const BIN_OPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::BitAnd,
    BinOp::BitXor,
    BinOp::BitOr,
    BinOp::And,
    BinOp::Or,
];
const UN_OPS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::BitNot];

fn desc_strategy() -> impl Strategy<Value = Desc> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(Desc::Input),
        any::<i64>().prop_map(Desc::Int),
        (-4i64..300).prop_map(Desc::Int), // weight the fold/small-int range
        (0u8..5).prop_map(Desc::Str),
        (0u8..8).prop_map(Desc::Temp),
        Just(Desc::Unknown),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (0u8..18, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Desc::Binary(op, Box::new(a), Box::new(b))),
            (0u8..3, inner.clone()).prop_map(|(op, a)| Desc::Unary(op, Box::new(a))),
            (0u8..3, proptest::collection::vec(inner, 0..3))
                .prop_map(|(c, args)| Desc::Call(c, args)),
        ]
    })
}

/// Interns a description verbatim (raw constructors preserve the
/// description's structure exactly — the 1:1 mapping the collision
/// property relies on).
fn build_raw(d: &Desc) -> Sym {
    match d {
        Desc::Input(i) => Sym::input(NAMES[*i as usize]),
        Desc::Int(v) => Sym::int(*v),
        Desc::Str(i) => Sym::str_lit(NAMES[*i as usize]),
        Desc::Temp(n) => Sym::temp(u32::from(*n)),
        Desc::Call(c, args) => {
            Sym::call(CALLEES[*c as usize], args.iter().map(build_raw).collect())
        }
        Desc::Unary(op, a) => Sym::unary_raw(UN_OPS[*op as usize], build_raw(a)),
        Desc::Binary(op, a, b) => {
            Sym::binary_raw(BIN_OPS[*op as usize], build_raw(a), build_raw(b))
        }
        Desc::Unknown => Sym::unknown(),
    }
}

/// Like [`build_raw`] but interns children right-to-left, so the
/// arena assigns ids in a different order for fresh structures.
fn build_raw_reversed(d: &Desc) -> Sym {
    match d {
        Desc::Call(c, args) => {
            let built: Vec<Sym> = args.iter().rev().map(build_raw_reversed).collect();
            Sym::call(CALLEES[*c as usize], built.into_iter().rev().collect())
        }
        Desc::Binary(op, a, b) => {
            let sb = build_raw_reversed(b);
            let sa = build_raw_reversed(a);
            Sym::binary_raw(BIN_OPS[*op as usize], sa, sb)
        }
        Desc::Unary(op, a) => Sym::unary_raw(UN_OPS[*op as usize], build_raw_reversed(a)),
        _ => build_raw(d),
    }
}

/// Independent O(n) node count — the walk the pre-arena `count_into`
/// budget check performed on every constructor call.
fn walk_count(s: Sym) -> usize {
    match s.node() {
        SymNode::Call { args, .. } => 1 + args.iter().map(|a| walk_count(*a)).sum::<usize>(),
        SymNode::Unary(_, a) => 1 + walk_count(*a),
        SymNode::Binary(_, a, b) => 1 + walk_count(*a) + walk_count(*b),
        _ => 1,
    }
}

/// A left-leaning non-foldable chain of `n` distinct-ish leaves, built
/// through the *raw* constructor so its size can exceed the budget
/// (raw interning is exempt; only checked construction widens).
fn chain(n: usize, salt: u32) -> Sym {
    let mut s = Sym::temp(salt);
    for i in 0..n {
        s = Sym::binary_raw(BinOp::Add, s, Sym::temp(salt.wrapping_add(1 + i as u32)));
    }
    s
}

proptest! {
    /// Canonicality: building the same description twice — in the same
    /// or reversed child order — lands on one node with one id.
    #[test]
    fn equal_structures_intern_to_the_same_node(d in desc_strategy()) {
        let a = build_raw(&d);
        let b = build_raw(&d);
        prop_assert!(std::ptr::eq(a.node(), b.node()), "{d:?} interned twice");
        prop_assert_eq!(a.id(), b.id());
        let c = build_raw_reversed(&d);
        prop_assert!(std::ptr::eq(a.node(), c.node()), "{d:?} order-dependent");
    }

    /// No behavioral collisions: distinct structures never merge, and
    /// equal structures never split, across independently drawn pairs.
    #[test]
    fn handle_equality_is_structural_equality(a in desc_strategy(), b in desc_strategy()) {
        let sa = build_raw(&a);
        let sb = build_raw(&b);
        prop_assert_eq!(
            a == b,
            sa == sb,
            "descriptions {:?} vs {:?} built `{}` vs `{}`", a, b, sa, sb
        );
        // Hash must agree with equality (Sym hashes by arena id).
        if sa == sb {
            prop_assert_eq!(sa.id(), sb.id());
        } else {
            prop_assert!(sa.id() != sb.id(), "distinct nodes share id {}", sa.id());
        }
    }

    /// The memoized size is exactly the old counting walk's answer.
    #[test]
    fn memoized_size_equals_the_counting_walk(d in desc_strategy()) {
        let s = build_raw(&d);
        prop_assert_eq!(s.size() as usize, walk_count(s), "size diverged for `{}`", s);
    }

    /// Checked binary construction folds, widens, or stays structural
    /// under exactly the conditions the pre-arena constructor used:
    /// fold when both operands are foldable ints, widen when the
    /// operands' *counted* sizes sum past `MAX_SYM_NODES`, intern
    /// otherwise.
    #[test]
    fn binary_widens_at_exactly_the_counted_budget(
        op_i in 0usize..18,
        la in 1usize..220,
        lb in 1usize..220,
    ) {
        let op = BIN_OPS[op_i];
        let a = chain(la, 1000);
        let b = chain(lb, 5000);
        let (ca, cb) = (walk_count(a), walk_count(b));
        let out = Sym::binary(op, a, b);
        if ca + cb > MAX_SYM_NODES {
            prop_assert_eq!(out, Sym::unknown(), "count {}+{} must widen", ca, cb);
        } else {
            prop_assert!(
                matches!(out.node(), SymNode::Binary(o, x, y)
                    if *o == op && *x == a && *y == b),
                "count {}+{} must stay structural, got `{}`", ca, cb, out
            );
            prop_assert_eq!(out.size() as usize, 1 + ca + cb);
        }
    }

    /// Same threshold contract for checked unary construction.
    #[test]
    fn unary_widens_at_exactly_the_counted_budget(
        op_i in 0usize..3,
        len in 1usize..300,
    ) {
        let op = UN_OPS[op_i];
        let a = chain(len, 9000);
        let ca = walk_count(a);
        let out = Sym::unary(op, a);
        if ca > MAX_SYM_NODES {
            prop_assert_eq!(out, Sym::unknown(), "count {} must widen", ca);
        } else {
            prop_assert!(
                matches!(out.node(), SymNode::Unary(o, x) if *o == op && *x == a),
                "count {} must stay structural, got `{}`", ca, out
            );
            prop_assert_eq!(out.size() as usize, 1 + ca);
        }
    }

    /// Constant folding through the checked constructor is a pure
    /// function of the operand values — interning order and arena
    /// population never change a fold result.
    #[test]
    fn folding_is_order_independent(x in -1000i64..1000, y in -1000i64..1000, op_i in 0usize..18) {
        let op = BIN_OPS[op_i];
        let first = Sym::binary(op, Sym::int(x), Sym::int(y));
        // Interleave unrelated constructions to perturb arena state.
        let _noise = Sym::call("noio", vec![Sym::int(x ^ y), Sym::temp(7)]);
        let second = Sym::binary(op, Sym::int(x), Sym::int(y));
        prop_assert_eq!(first, second);
        prop_assert_eq!(first.to_string(), second.to_string());
    }

    /// Display and Debug are functions of structure alone: the same
    /// description renders identically whichever build order interned
    /// it, and renders differently from any distinct description
    /// (Display is injective over the shapes extraction produces — the
    /// NDJSON digest depends on this).
    #[test]
    fn rendering_is_structural_and_order_independent(a in desc_strategy(), b in desc_strategy()) {
        let sa = build_raw(&a);
        let sa_rev = build_raw_reversed(&a);
        prop_assert_eq!(sa.to_string(), sa_rev.to_string());
        prop_assert_eq!(format!("{sa:?}"), format!("{sa_rev:?}"));
        let sb = build_raw(&b);
        if sa != sb {
            prop_assert!(
                format!("{sa:?}") != format!("{sb:?}"),
                "distinct nodes `{}` vs `{}` share a Debug rendering", sa, sb
            );
        }
    }
}
