//! Edge-case tests for the symbolic evaluator: aliasing-ish writes,
//! nested calls, casts, comma expressions, and environment behaviour
//! across branch joins.

use pallas_lang::parse;
use pallas_sym::{extract, Event, ExtractConfig, PathDb, Sym};

fn db_of(src: &str) -> PathDb {
    let ast = parse(src).unwrap();
    extract("edge", &ast, src, &ExtractConfig::default())
}

fn states_of<'a>(db: &'a PathDb, f: &str, path: usize) -> Vec<(&'a str, Sym)> {
    db.function(f).unwrap().records[path]
        .states()
        .map(|e| match e {
            Event::State { lvalue, value, .. } => (lvalue.as_str(), *value),
            _ => unreachable!(),
        })
        .collect()
}

#[test]
fn deref_write_tracked_as_star_lvalue() {
    let db = db_of("int f(int *p) { *p = 7; return *p; }");
    let states = states_of(&db, "f", 0);
    assert_eq!(states.len(), 1);
    assert_eq!(states[0].0, "*p");
    assert_eq!(states[0].1, Sym::int(7));
    // The read back through the same lvalue sees the written value.
    let f = db.function("f").unwrap();
    assert_eq!(f.records[0].output.value, Some(Sym::int(7)));
}

#[test]
fn nested_call_arguments_evaluated_inside_out() {
    let db = db_of(
        "int inner(int a);\nint outer(int b);\n\
         int f(int x) { return outer(inner(x)); }",
    );
    let f = db.function("f").unwrap();
    let callees: Vec<&str> = f.records[0]
        .calls()
        .map(|e| match e {
            Event::Call { callee, .. } => callee.as_str(),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(callees, vec!["inner", "outer"], "inner evaluated first");
}

#[test]
fn call_result_assignment_points_at_outermost_call() {
    let db = db_of(
        "int inner(int a);\nint outer(int b);\n\
         int f(int x) { int r = outer(inner(x)); return r; }",
    );
    let f = db.function("f").unwrap();
    let assigned: Vec<(&str, Option<&str>)> = f.records[0]
        .calls()
        .map(|e| match e {
            Event::Call { callee, assigned_to, .. } => {
                (callee.as_str(), assigned_to.as_deref())
            }
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(assigned, vec![("inner", None), ("outer", Some("r"))]);
}

#[test]
fn casts_are_transparent_to_values() {
    let db = db_of(
        "typedef unsigned int u32_t;\n\
         int f(void) { int x = (int)(u32_t)5; return x + 1; }",
    );
    assert_eq!(db.function("f").unwrap().records[0].output.value, Some(Sym::int(6)));
}

#[test]
fn comma_expression_evaluates_both_sides() {
    let db = db_of("int g(int v);\nint f(int a) { int x = (g(a), 3); return x; }");
    let f = db.function("f").unwrap();
    assert_eq!(f.records[0].calls().count(), 1, "left side effect kept");
    assert_eq!(f.records[0].output.value, Some(Sym::int(3)));
}

#[test]
fn string_arguments_do_not_pollute_atoms() {
    let db = db_of(r#"int printk(const char *fmt, ...); int f(int n) { printk("n=%d\n", n); return 0; }"#);
    let f = db.function("f").unwrap();
    let call = f.records[0].calls().next().unwrap();
    match call {
        Event::Call { arg_vars, .. } => {
            assert_eq!(arg_vars, &vec!["n".to_string()], "{arg_vars:?}");
        }
        _ => unreachable!(),
    }
}

#[test]
fn branch_environments_do_not_leak_across_paths() {
    let src = "\
int f(int c) {
  int x = 1;
  if (c)
    x = 2;
  return x;
}";
    let db = db_of(src);
    let f = db.function("f").unwrap();
    let mut returns: Vec<i64> = f
        .records
        .iter()
        .filter_map(|r| r.output.value.and_then(|s| s.as_int()))
        .collect();
    returns.sort_unstable();
    assert_eq!(returns, vec![1, 2], "each path sees its own final x");
}

#[test]
fn member_chain_values_keyed_by_full_path() {
    let db = db_of(
        "struct b { int c; };\nstruct a { struct b *inner; };\n\
         int f(struct a *p) { p->inner->c = 4; return p->inner->c; }",
    );
    let f = db.function("f").unwrap();
    assert_eq!(f.records[0].output.value, Some(Sym::int(4)));
    let states = states_of(&db, "f", 0);
    assert_eq!(states[0].0, "p->inner->c");
}

#[test]
fn array_element_values_keyed_by_index_text() {
    let db = db_of("int f(int *a, int i) { a[0] = 9; return a[0] + a[1]; }");
    let f = db.function("f").unwrap();
    // a[0] is known, a[1] symbolic → sum stays symbolic but mentions a[1].
    let out = f.records[0].output.value.unwrap();
    assert!(out.mentions("a[1]"), "{out}");
    assert!(!out.mentions("a[0]"), "a[0] folded to 9: {out}");
}

#[test]
fn shadowing_decl_resets_value() {
    // The evaluator keys by name; a redeclaration (C scoping) simply
    // rebinds, which is the correct timeline view for the checkers.
    let db = db_of("int f(void) { int x = 1; { int x2 = x + 1; x = x2; } return x; }");
    assert_eq!(db.function("f").unwrap().records[0].output.value, Some(Sym::int(2)));
}

#[test]
fn negative_hex_and_char_constants_fold() {
    let db = db_of("int f(void) { return -0x10 + 'A'; }");
    assert_eq!(
        db.function("f").unwrap().records[0].output.value,
        Some(Sym::int(-16 + 65))
    );
}

#[test]
fn unknown_function_pointerish_callee_rendered() {
    // Calling through a member: callee is the rendered expression.
    let db = db_of(
        "struct ops { int run; };\n\
         int f(struct ops *o) { return o->run; }",
    );
    // Just reading a member named like a function is a plain read.
    let f = db.function("f").unwrap();
    assert_eq!(f.records[0].calls().count(), 0);
    assert_eq!(
        f.records[0].output.value,
        Some(Sym::input("o->run"))
    );
}

#[test]
fn truncation_reported_for_deep_recursion_shapes() {
    let src = "\
int f(int n) {
  int acc = 0;
  while (n > 0) {
    acc += n;
    n--;
  }
  return acc;
}";
    let db = db_of(src);
    let f = db.function("f").unwrap();
    assert!(f.truncated, "loop unrolling is bounded");
    assert!(!f.records.is_empty());
}
