//! Fast-path vs slow-path feature comparison.

use pallas_sym::{Event, FunctionPaths, PathDb};
use std::collections::BTreeSet;
use std::fmt;

/// The feature sets of one function, aggregated over all its paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathFeatures {
    /// Name atoms read anywhere.
    pub reads: BTreeSet<String>,
    /// Lvalues written.
    pub writes: BTreeSet<String>,
    /// Functions called.
    pub calls: BTreeSet<String>,
    /// Condition texts checked.
    pub conditions: BTreeSet<String>,
    /// Literal return values.
    pub returns: BTreeSet<i64>,
}

impl PathFeatures {
    /// Collects the features of a function from its extracted paths.
    /// Only depth-0 events count (the function's own code).
    pub fn collect(func: &FunctionPaths) -> Self {
        let mut f = PathFeatures::default();
        for rec in &func.records {
            for e in &rec.events {
                if e.depth() != 0 {
                    continue;
                }
                match e {
                    Event::Cond { text, vars, .. } => {
                        f.conditions.insert(text.clone());
                        f.reads.extend(vars.iter().cloned());
                    }
                    Event::State { lvalue, reads, .. } => {
                        f.writes.insert(lvalue.clone());
                        f.reads.extend(reads.iter().cloned());
                    }
                    Event::Call { callee, arg_vars, .. } => {
                        f.calls.insert(callee.clone());
                        f.reads.extend(arg_vars.iter().cloned());
                    }
                    Event::Decl { .. } => {}
                }
            }
            f.reads.extend(rec.output.vars.iter().cloned());
        }
        f.returns.extend(func.literal_returns());
        f
    }
}

/// The comparison of a fast path against its slow path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Fast-path function name.
    pub fast: String,
    /// Slow-path function name.
    pub slow: String,
    /// Variables both paths touch — immutability / correlation
    /// candidates for the spec.
    pub shared_variables: BTreeSet<String>,
    /// Conditions the slow path checks but the fast path skips —
    /// trigger-condition candidates.
    pub dropped_conditions: BTreeSet<String>,
    /// Conditions only the fast path checks (usually the trigger).
    pub added_conditions: BTreeSet<String>,
    /// Calls the fast path skips (budgeting, locking, validation).
    pub dropped_calls: BTreeSet<String>,
    /// Calls only the fast path makes.
    pub added_calls: BTreeSet<String>,
    /// Lvalues only the slow path writes.
    pub dropped_writes: BTreeSet<String>,
    /// Literal returns of the fast path missing from the slow path —
    /// direct Rule 3.2 candidates.
    pub mismatched_returns: BTreeSet<i64>,
}

impl DiffReport {
    /// A score of how aggressively the fast path specializes: the
    /// number of dropped conditions, calls, and writes.
    pub fn specialization_degree(&self) -> usize {
        self.dropped_conditions.len() + self.dropped_calls.len() + self.dropped_writes.len()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "diff: fast `{}` vs slow `{}`", self.fast, self.slow)?;
        let section = |f: &mut fmt::Formatter<'_>, title: &str, items: &BTreeSet<String>| {
            if items.is_empty() {
                return Ok(());
            }
            writeln!(f, "  {title}:")?;
            for i in items {
                writeln!(f, "    {i}")?;
            }
            Ok(())
        };
        section(f, "shared variables", &self.shared_variables)?;
        section(f, "conditions dropped by fast path", &self.dropped_conditions)?;
        section(f, "conditions added by fast path", &self.added_conditions)?;
        section(f, "calls dropped by fast path", &self.dropped_calls)?;
        section(f, "calls added by fast path", &self.added_calls)?;
        section(f, "writes dropped by fast path", &self.dropped_writes)?;
        if !self.mismatched_returns.is_empty() {
            writeln!(f, "  fast-path returns not produced by slow path:")?;
            for r in &self.mismatched_returns {
                writeln!(f, "    {r}")?;
            }
        }
        Ok(())
    }
}

/// Compares the named fast and slow paths. Returns `None` if either
/// function is absent from the database.
pub fn diff_paths(db: &PathDb, fast: &str, slow: &str) -> Option<DiffReport> {
    let ff = PathFeatures::collect(db.function(fast)?);
    let sf = PathFeatures::collect(db.function(slow)?);
    Some(DiffReport {
        fast: fast.to_string(),
        slow: slow.to_string(),
        shared_variables: ff.reads.intersection(&sf.reads).cloned().collect(),
        dropped_conditions: sf.conditions.difference(&ff.conditions).cloned().collect(),
        added_conditions: ff.conditions.difference(&sf.conditions).cloned().collect(),
        dropped_calls: sf.calls.difference(&ff.calls).cloned().collect(),
        added_calls: ff.calls.difference(&sf.calls).cloned().collect(),
        dropped_writes: sf.writes.difference(&ff.writes).cloned().collect(),
        mismatched_returns: ff.returns.difference(&sf.returns).copied().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_lang::parse;
    use pallas_sym::{extract, ExtractConfig};

    fn diff_of(src: &str, fast: &str, slow: &str) -> DiffReport {
        let ast = parse(src).unwrap();
        let db = extract("test", &ast, src, &ExtractConfig::default());
        diff_paths(&db, fast, slow).expect("both functions exist")
    }

    const UBIFS_LIKE: &str = "\
int budget_space(int inode);
int write_page(int page);
int release_budget(int inode);
int ubifs_write_slow(int inode, int page) {
  int err = budget_space(inode);
  if (err)
    return err;
  write_page(page);
  release_budget(inode);
  return 0;
}
int ubifs_write_fast(int inode, int page, int free_space) {
  if (free_space > 0) {
    write_page(page);
    return 0;
  }
  return -1;
}";

    #[test]
    fn dropped_calls_identified() {
        let d = diff_of(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(d.dropped_calls.contains("budget_space"));
        assert!(d.dropped_calls.contains("release_budget"));
        assert!(!d.dropped_calls.contains("write_page"));
    }

    #[test]
    fn added_trigger_condition_identified() {
        let d = diff_of(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(d.added_conditions.iter().any(|c| c.contains("free_space")));
    }

    #[test]
    fn shared_variables_cover_common_state() {
        let d = diff_of(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(d.shared_variables.contains("page"));
    }

    #[test]
    fn mismatched_returns_surface() {
        let d = diff_of(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        // fast returns -1, slow returns 0 or symbolic err.
        assert!(d.mismatched_returns.contains(&-1));
    }

    #[test]
    fn identical_functions_diff_clean() {
        let src = "\
int a(int x) { if (x) return 1; return 0; }
int b(int x) { if (x) return 1; return 0; }";
        let d = diff_of(src, "a", "b");
        assert!(d.dropped_conditions.is_empty());
        assert!(d.dropped_calls.is_empty());
        assert!(d.mismatched_returns.is_empty());
        assert_eq!(d.specialization_degree(), 0);
    }

    #[test]
    fn missing_function_yields_none() {
        let src = "int a(int x) { return x; }";
        let ast = parse(src).unwrap();
        let db = extract("test", &ast, src, &ExtractConfig::default());
        assert!(diff_paths(&db, "a", "nope").is_none());
        assert!(diff_paths(&db, "nope", "a").is_none());
    }

    #[test]
    fn display_renders_sections() {
        let d = diff_of(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        let s = d.to_string();
        assert!(s.contains("calls dropped by fast path"));
        assert!(s.contains("budget_space"));
    }

    #[test]
    fn specialization_degree_counts_drops() {
        let d = diff_of(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(d.specialization_degree() >= 3);
    }
}
