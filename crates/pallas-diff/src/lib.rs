//! # pallas-diff
//!
//! The fast-path vs slow-path code comparison tool from the paper's
//! methodology (§3.1): "we built a tool with the Clang C/C++ compiler
//! front-end to compare the code difference between a fast path and
//! slow path on the same functionality to narrow down our focus on
//! specific data structures, variables, and functions."
//!
//! Given two functions of a unit, [`diff_paths`] compares the sets of
//! variables read, lvalues written, functions called, and conditions
//! checked, and reports what the fast path dropped, added, or kept.
//! The Pallas study pipeline uses the report to seed the semantic spec
//! (the shared variables are immutability/correlation candidates; the
//! dropped conditions are trigger-condition candidates).
//!
//! ```
//! use pallas_diff::diff_paths;
//! use pallas_lang::parse;
//! use pallas_sym::{extract, ExtractConfig};
//!
//! # fn main() -> Result<(), pallas_lang::ParseError> {
//! let src = "int slow(int budget, int page) { if (budget < 0) return -1; return page; }\n\
//!            int fast(int budget, int page) { return page; }";
//! let ast = parse(src)?;
//! let db = extract("demo", &ast, src, &ExtractConfig::default());
//! let report = diff_paths(&db, "fast", "slow").expect("both functions exist");
//! assert!(report.dropped_conditions.iter().any(|c| c.contains("budget")));
//! # Ok(())
//! # }
//! ```


pub mod diff;
pub mod infer;

pub use diff::{diff_paths, DiffReport, PathFeatures};
pub use infer::{infer_spec, InferredSpec};
