//! Automatic semantic-spec inference — the paper's stated future work
//! (§4: "We wish to leave the automated approach for extracting
//! semantic information as the future work").
//!
//! Given a fast path and its slow path, [`infer_spec`] proposes a
//! [`FastPathSpec`] from the structural evidence the diff tool already
//! computes:
//!
//! * **immutable candidates** — shared inputs both paths read and
//!   neither writes (inputs that behave as fixed state);
//! * **trigger-condition candidates** — variables appearing only in
//!   the fast path's extra conditions (the trigger) and variables in
//!   conditions the fast path dropped (checks it may need);
//! * **`match_slow_return`** — proposed when both paths return
//!   comparable literal sets;
//! * **`check_return`** — proposed when some caller in the unit
//!   already checks the fast path's return (the others should too);
//! * **fault candidates** — error-shaped identifiers (negative enum
//!   constants, `E*` codes, `*err*`/`*fail*` names) the slow path
//!   consults in flow control but the fast path never does.
//!
//! Inference is deliberately a *proposal generator*: every candidate
//! carries the evidence that produced it, and the intended workflow is
//! `pallas infer` → developer prunes → `pallas check`.

use crate::diff::PathFeatures;
use pallas_lang::{Ast, Item};
use pallas_spec::FastPathSpec;
use pallas_sym::{Event, PathDb};
use std::collections::BTreeSet;
use std::fmt;

/// One inferred fact with its supporting evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// The spec line proposed (e.g. `immutable gfp_mask;`).
    pub fact: String,
    /// Why it was proposed.
    pub reason: String,
}

/// The result of spec inference: a ready-to-check spec plus per-fact
/// evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredSpec {
    /// The proposed specification.
    pub spec: FastPathSpec,
    /// Evidence for each proposed fact, in proposal order.
    pub evidence: Vec<Evidence>,
}

impl fmt::Display for InferredSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# inferred spec (review before use)")?;
        write!(f, "{}", self.spec)?;
        writeln!(f, "# evidence:")?;
        for e in &self.evidence {
            writeln!(f, "#   {} — {}", e.fact.trim_end_matches(';'), e.reason)?;
        }
        Ok(())
    }
}

/// Infers a semantic spec for `fast` by contrasting it with `slow`.
/// Returns `None` if either function is missing from the database.
pub fn infer_spec(db: &PathDb, ast: &Ast, fast: &str, slow: &str) -> Option<InferredSpec> {
    let ff = db.function(fast)?;
    let sf = db.function(slow)?;
    let fast_features = PathFeatures::collect(ff);
    let slow_features = PathFeatures::collect(sf);

    let mut spec = FastPathSpec::new(format!("{}(inferred)", db.unit))
        .with_fastpath(fast)
        .with_slowpath(slow);
    let mut evidence = Vec::new();

    // Immutable candidates: parameters of the fast path that both
    // paths read but neither writes. Restricting to parameters keeps
    // the proposal list short and high-precision.
    let written: BTreeSet<&String> =
        fast_features.writes.iter().chain(slow_features.writes.iter()).collect();
    for param in &ff.params {
        if param.is_empty() || written.iter().any(|w| w.as_str() == param) {
            continue;
        }
        if fast_features.reads.contains(param) && slow_features.reads.contains(param) {
            spec = spec.with_immutable(param.clone());
            evidence.push(Evidence {
                fact: format!("immutable {param};"),
                reason: "read by both paths, written by neither".into(),
            });
        }
    }

    // Trigger candidates: variables in conditions only the fast path
    // checks (its trigger) and variables in conditions it dropped.
    let mut trigger_vars = BTreeSet::new();
    for rec in &ff.records {
        for e in rec.conditions() {
            if let Event::Cond { text, vars, depth: 0, .. } = e {
                if !slow_features.conditions.contains(text) {
                    trigger_vars.extend(vars.iter().cloned());
                }
            }
        }
    }
    // Keep only bare identifiers (skip member-path atoms) for a clean
    // proposal.
    let trigger: Vec<String> = trigger_vars
        .into_iter()
        .filter(|v| !v.contains("->") && !v.contains('.') && !v.contains('['))
        .collect();
    if !trigger.is_empty() {
        let refs: Vec<&str> = trigger.iter().map(String::as_str).collect();
        spec = spec.with_cond("trigger", &refs);
        evidence.push(Evidence {
            fact: format!("cond trigger: {};", trigger.join(", ")),
            reason: "checked by the fast path but not by the slow path".into(),
        });
    }

    // Return agreement: propose match_slow_return when both paths
    // produce literal returns.
    if !fast_features.returns.is_empty() && !slow_features.returns.is_empty() {
        spec = spec.with_match_slow_return();
        let agree = fast_features.returns.is_subset(&slow_features.returns);
        evidence.push(Evidence {
            fact: "match_slow_return;".into(),
            reason: if agree {
                "both paths return comparable literal sets (currently agreeing)".into()
            } else {
                format!(
                    "literal returns currently disagree: fast {:?} vs slow {:?}",
                    fast_features.returns, slow_features.returns
                )
            },
        });
    }

    // check_return: if any caller already branches on the result, the
    // return value is meaningful and every caller should check it.
    let callers = db.callers_of(fast);
    let any_checked = callers.iter().any(|caller| {
        caller.records.iter().any(|rec| {
            rec.events.iter().enumerate().any(|(i, e)| match e {
                Event::Call { callee, assigned_to, in_condition, .. } if callee == fast => {
                    *in_condition
                        || assigned_to.as_ref().is_some_and(|var| {
                            rec.events[i + 1..].iter().any(|later| match later {
                                Event::Cond { vars, .. } => vars.iter().any(|v| v == var),
                                _ => false,
                            })
                        })
                }
                _ => false,
            })
        })
    });
    if any_checked {
        spec = spec.with_check_return();
        evidence.push(Evidence {
            fact: "check_return;".into(),
            reason: "at least one caller already checks the fast path's return".into(),
        });
    }

    // Fault candidates: error-shaped names the slow path checks in
    // flow control that the fast path never does.
    let fast_checked: BTreeSet<String> = ff
        .records
        .iter()
        .flat_map(|r| r.conditions())
        .flat_map(|e| match e {
            Event::Cond { vars, .. } => vars.clone(),
            _ => Vec::new(),
        })
        .collect();
    let mut faults = BTreeSet::new();
    for rec in &sf.records {
        for e in rec.conditions() {
            if let Event::Cond { vars, .. } = e {
                for v in vars {
                    if looks_like_fault(v, ast) && !fast_checked.contains(v) {
                        faults.insert(v.clone());
                    }
                }
            }
        }
    }
    for fault in faults {
        evidence.push(Evidence {
            fact: format!("fault {fault};"),
            reason: "error-shaped state handled by the slow path only".into(),
        });
        spec = spec.with_fault(fault);
    }

    Some(InferredSpec { spec, evidence })
}

/// Heuristic for error-shaped identifiers: classic `E*` error-code
/// names, names mentioning err/fail/fault, or enum constants with
/// negative values.
fn looks_like_fault(name: &str, ast: &Ast) -> bool {
    if name.contains("->") || name.contains('.') {
        return false;
    }
    let lower = name.to_lowercase();
    if lower.contains("err") || lower.contains("fail") || lower.contains("fault") {
        return true;
    }
    if name.len() >= 3
        && name.starts_with('E')
        && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
    {
        return true;
    }
    if let Some(v) = ast.enum_value(name) {
        return v < 0;
    }
    // Globals initialized to negative error codes.
    ast.items.iter().any(|i| matches!(i, Item::Global { name: n, .. } if n == name && lower.contains("state")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_lang::parse;
    use pallas_sym::{extract, ExtractConfig};

    fn infer(src: &str, fast: &str, slow: &str) -> InferredSpec {
        let ast = parse(src).unwrap();
        let db = extract("infer-test", &ast, src, &ExtractConfig::default());
        infer_spec(&db, &ast, fast, slow).expect("functions exist")
    }

    const UBIFS_LIKE: &str = "\
int budget_space(int inode);
int write_page(int page);
int ubifs_write_slow(int inode, int page, int io_err) {
  int err = budget_space(inode);
  if (err)
    return -1;
  if (io_err)
    return -5;
  write_page(page);
  return 0;
}
int ubifs_write_fast(int inode, int page, int io_err, int free_space) {
  if (free_space > 0) {
    write_page(page);
    return 0;
  }
  return -1;
}
int caller(int inode, int page, int io_err, int free_space) {
  int r = ubifs_write_fast(inode, page, io_err, free_space);
  if (r < 0)
    return r;
  return 0;
}";

    #[test]
    fn infers_immutable_shared_inputs() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(
            inferred.spec.immutable.contains(&"page".to_string()),
            "{:?}",
            inferred.spec.immutable
        );
        // `inode` is a parameter of both but the fast path never reads
        // it, so it is (correctly) not proposed.
        assert!(!inferred.spec.immutable.contains(&"inode".to_string()));
    }

    #[test]
    fn infers_trigger_condition() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        let trigger = inferred.spec.cond("trigger").expect("trigger proposed");
        assert!(trigger.vars.contains(&"free_space".to_string()), "{trigger:?}");
    }

    #[test]
    fn infers_match_slow_return_with_disagreement_evidence() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(inferred.spec.match_slow_return);
    }

    #[test]
    fn infers_check_return_from_checking_caller() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(inferred.spec.check_return);
    }

    #[test]
    fn infers_fault_from_error_shaped_slow_check() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(
            inferred.spec.faults.contains(&"io_err".to_string()),
            "{:?}",
            inferred.spec.faults
        );
    }

    #[test]
    fn inferred_spec_round_trips_through_parser() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        // The Display form (minus evidence comments) must be parseable.
        let text = inferred.spec.to_string();
        let parsed = pallas_spec::parse_spec(&text).unwrap();
        assert_eq!(parsed.fastpath, inferred.spec.fastpath);
    }

    #[test]
    fn inferred_spec_finds_injected_bugs() {
        // Running the checker with the *inferred* spec still catches
        // the mismatched fast return (-1 not in slow's set? slow has
        // -1; fast's 0/-1 ⊆ slow's {-1,-5,0}) — but the missing io_err
        // fault handling is caught.
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        let ast = parse(UBIFS_LIKE).unwrap();
        let db = extract("infer-test", &ast, UBIFS_LIKE, &ExtractConfig::default());
        let warnings = pallas_checkers::run_all(&pallas_checkers::CheckContext {
            db: &db,
            spec: &inferred.spec,
            ast: &ast,
        });
        assert!(
            warnings
                .iter()
                .any(|w| w.rule == pallas_checkers::Rule::FaultMissing
                    && w.message.contains("io_err")),
            "{warnings:#?}"
        );
    }

    #[test]
    fn evidence_accompanies_every_family() {
        let inferred = infer(UBIFS_LIKE, "ubifs_write_fast", "ubifs_write_slow");
        assert!(inferred.evidence.len() >= 4, "{:#?}", inferred.evidence);
        let text = inferred.to_string();
        assert!(text.contains("# evidence:"));
        assert!(text.contains("fastpath ubifs_write_fast;"));
    }

    #[test]
    fn missing_functions_yield_none() {
        let src = "int f(void) { return 0; }";
        let ast = parse(src).unwrap();
        let db = extract("t", &ast, src, &ExtractConfig::default());
        assert!(infer_spec(&db, &ast, "f", "missing").is_none());
    }

    #[test]
    fn fault_heuristic_shapes() {
        let ast = parse("enum e { ENOMEM = -12, OK = 0 };").unwrap();
        assert!(looks_like_fault("io_err", &ast));
        assert!(looks_like_fault("write_failed", &ast));
        assert!(looks_like_fault("EIO", &ast));
        assert!(looks_like_fault("ENOMEM", &ast));
        assert!(!looks_like_fault("OK", &ast));
        assert!(!looks_like_fault("page", &ast));
        assert!(!looks_like_fault("p->err_field", &ast));
    }
}
