//! # pallas-fuzz
//!
//! Differential fuzzing for the Pallas pipeline. Three pieces:
//!
//! * [`gen`] — a seeded, deterministic generator of C-subset
//!   workflow units *plus matching spec annotations*, with size and
//!   depth knobs ([`gen::GenConfig`]).
//! * [`oracle`] — metamorphic and differential cross-checks: the
//!   facade, a cold and a warm engine, and (optionally) the daemon —
//!   over its Unix and TCP transports and through its request
//!   coalescing path — must produce byte-identical NDJSON,
//!   malformed daemon frames must get clean errors, and
//!   semantics-preserving rewrites ([`rewrite`]) must leave the
//!   finding set invariant.
//! * [`reduce`] — a delta-debugging reducer that shrinks any
//!   crashing or diverging unit to a minimal repro while its failure
//!   signature is preserved.
//!
//! [`run_fuzz`] ties them together: it iterates derived seeds,
//! accumulates an FNV-1a digest over the baseline NDJSON of clean
//! iterations (so two runs with the same seed must print the same
//! digest), and collects failures — minimizing them and writing
//! repro files to a `found/` directory when asked.

pub mod gen;
pub mod oracle;
pub mod reduce;
pub mod rewrite;

pub use gen::{generate, generate_with, GenConfig, GenUnit};
pub use oracle::{run_oracles, DaemonClients, Oracle, OracleFailure};
pub use reduce::{reduce_unit, signature};

use pallas_core::SourceUnit;
use pallas_service::{Bind, Client, Server, ServiceConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Derives the generator seed for iteration `i` of a run (SplitMix64
/// over the base seed and index, so runs are replayable per
/// iteration via `--unit-seed`).
pub fn iteration_seed(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; each iteration derives its own generator seed.
    pub seed: u64,
    /// Number of iterations.
    pub iters: u64,
    /// Run exactly this generator seed (once) instead of deriving
    /// seeds from `seed` — the replay knob for found failures.
    pub unit_seed: Option<u64>,
    /// Generator knobs.
    pub gen: GenConfig,
    /// Cross-check every unit against an in-process daemon.
    pub daemon: bool,
    /// Minimize failures with the reducer.
    pub reduce: bool,
    /// Where to write minimized repros (`None` disables writing).
    pub found_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 200,
            unit_seed: None,
            gen: GenConfig::default(),
            daemon: true,
            reduce: false,
            found_dir: None,
        }
    }
}

/// One failing iteration.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// Generator seed of the failing unit (replay with `--unit-seed`).
    pub unit_seed: u64,
    /// Failure signature: an oracle tag or `panic:<message>`.
    pub signature: String,
    /// Human-readable detail.
    pub detail: String,
    /// The failing unit as generated.
    pub unit: SourceUnit,
    /// The minimized unit, when reduction ran.
    pub minimized: Option<SourceUnit>,
    /// Files written under `found/`, if any.
    pub written: Vec<PathBuf>,
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// FNV-1a digest over the baseline NDJSON of clean iterations.
    /// Deterministic for a given (seed, iters, knobs, daemon) tuple.
    pub digest: u64,
    /// All failures, in iteration order.
    pub failures: Vec<FoundFailure>,
}

/// Runs the fuzz loop. `progress` receives one short line per failure
/// (and nothing else), so callers can stream findings.
pub fn run_fuzz(cfg: &FuzzConfig, progress: &mut dyn FnMut(&str)) -> FuzzReport {
    // Silence the default panic hook for the duration of the run:
    // caught panics are failures to triage, not noise to print.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let daemon = if cfg.daemon { DaemonGuard::start() } else { None };
    let mut clients = daemon.as_ref().and_then(DaemonGuard::clients);

    let mut digest = FNV_OFFSET;
    let mut failures = Vec::new();
    let iters = if cfg.unit_seed.is_some() { 1 } else { cfg.iters };

    for i in 0..iters {
        let unit_seed = cfg.unit_seed.unwrap_or_else(|| iteration_seed(cfg.seed, i));
        let g = generate_with(unit_seed, &cfg.gen);
        let unit = g.unit.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_oracles(&unit, clients.as_mut())));
        let (sig, detail) = match outcome {
            Ok(Ok(ndjson)) => {
                digest = fnv1a(digest, ndjson.as_bytes());
                continue;
            }
            Ok(Err(f)) => (f.oracle.tag().to_string(), f.detail),
            Err(payload) => {
                let msg = reduce::normalize_panic(&payload);
                (format!("panic:{msg}"), msg)
            }
        };
        progress(&format!("seed {unit_seed}: {sig}: {detail}"));
        let minimized = if cfg.reduce { Some(reduce_unit(&g.unit, &sig)) } else { None };
        let written = match &cfg.found_dir {
            Some(dir) => {
                write_found(dir, unit_seed, &sig, minimized.as_ref().unwrap_or(&g.unit), &detail)
            }
            None => Vec::new(),
        };
        failures.push(FoundFailure {
            unit_seed,
            signature: sig,
            detail,
            unit: g.unit,
            minimized,
            written,
        });
    }

    if let Some(mut c) = clients.take() {
        let _ = c.unix.shutdown();
    }
    if let Some(d) = daemon {
        d.finish();
    }
    std::panic::set_hook(prev_hook);

    FuzzReport { iters, digest, failures }
}

/// Writes a minimized repro (source, spec, and a note with the replay
/// command) under `dir`. Best-effort: IO errors are swallowed — the
/// failure is still reported in the [`FuzzReport`].
fn write_found(
    dir: &std::path::Path,
    unit_seed: u64,
    sig: &str,
    unit: &SourceUnit,
    detail: &str,
) -> Vec<PathBuf> {
    let tag: String = sig
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
        .take(40)
        .collect();
    let stem = format!("seed-{unit_seed}-{tag}");
    if std::fs::create_dir_all(dir).is_err() {
        return Vec::new();
    }
    let mut written = Vec::new();
    let src = unit.files.first().map(|(_, s)| s.as_str()).unwrap_or("");
    let c_path = dir.join(format!("{stem}.c"));
    if std::fs::write(&c_path, src).is_ok() {
        written.push(c_path);
    }
    let spec_path = dir.join(format!("{stem}.spec"));
    if std::fs::write(&spec_path, &unit.spec_text).is_ok() {
        written.push(spec_path);
    }
    let note = format!(
        "signature: {sig}\ndetail: {detail}\nreplay: pallas fuzz --unit-seed {unit_seed}\n"
    );
    let note_path = dir.join(format!("{stem}.txt"));
    if std::fs::write(&note_path, note).is_ok() {
        written.push(note_path);
    }
    written
}

/// An in-process daemon on a private temp socket plus a loopback TCP
/// listener, so the daemon oracle can compare both transports.
struct DaemonGuard {
    socket: PathBuf,
    handle: pallas_service::ServerHandle,
}

impl DaemonGuard {
    fn start() -> Option<DaemonGuard> {
        let socket = std::env::temp_dir().join(format!(
            "pallas-fuzz-{}-{:x}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0)
        ));
        let _ = std::fs::remove_file(&socket);
        let bind = Bind::unix(&socket).with_tcp("127.0.0.1:0");
        match Server::start_with(bind, ServiceConfig::default()) {
            Ok(handle) => Some(DaemonGuard { socket, handle }),
            Err(_) => None,
        }
    }

    /// Connects one client per bound transport. TCP is best-effort
    /// (the oracle degrades to Unix-only if loopback is unavailable),
    /// but without the Unix connection the daemon battery is skipped
    /// entirely.
    fn clients(&self) -> Option<DaemonClients> {
        let unix = Client::connect(&self.socket).ok()?;
        let tcp = self.handle.tcp_addr().and_then(|addr| Client::connect_tcp(addr).ok());
        Some(DaemonClients { unix, tcp })
    }

    fn finish(self) {
        let _ = self.handle.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_across_runs() {
        let cfg = FuzzConfig {
            seed: 5,
            iters: 6,
            daemon: false,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg, &mut |_| {});
        let b = run_fuzz(&cfg, &mut |_| {});
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.failures.len(), 0, "{:?}", a.failures);
        assert_eq!(b.iters, 6);
    }

    #[test]
    fn daemon_battery_covers_transports_coalescing_and_malformed_frames() {
        // With the daemon on (the default), every iteration checks
        // NDJSON identity over Unix and TCP, rides the coalescing
        // path, and fires malformed frames derived from its own
        // request line at the framing layer.
        let cfg = FuzzConfig { seed: 9, iters: 3, ..FuzzConfig::default() };
        let r = run_fuzz(&cfg, &mut |_| {});
        assert_eq!(r.iters, 3);
        assert_eq!(r.failures.len(), 0, "{:?}", r.failures);
    }

    #[test]
    fn unit_seed_replays_one_iteration() {
        let cfg = FuzzConfig {
            unit_seed: Some(17),
            iters: 100, // ignored under unit_seed
            daemon: false,
            ..FuzzConfig::default()
        };
        let r = run_fuzz(&cfg, &mut |_| {});
        assert_eq!(r.iters, 1);
    }

    #[test]
    fn iteration_seed_spreads() {
        let a = iteration_seed(42, 0);
        let b = iteration_seed(42, 1);
        let c = iteration_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") per the published test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63dc4c8601ec8c);
    }
}
