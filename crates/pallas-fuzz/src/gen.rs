//! Seeded, deterministic generator of C-subset workflow units plus
//! matching spec annotations.
//!
//! The generator builds an [`Ast`] directly through the arena API —
//! covering the constructs `pallas-lang` claims to handle (structs,
//! flag masks, `if`/`else`, `switch`, the three loop forms, `goto`,
//! calls) — then pretty-prints it with `unit_to_source` and pairs it
//! with a [`FastPathSpec`] that references the generated names. Both
//! sides are functions of the seed alone: the same seed always yields
//! byte-identical source and spec text, which is what makes fuzz runs
//! replayable and lets CI compare digests across runs.
//!
//! Beyond the Table 1 families, seeds can declare an acquire/release
//! pair and an expensive helper (`pair`/`expensive` spec facts), with
//! the fast path seeded in leaking, stray, and balanced arrangements,
//! so the extension rules 6.1/6.2/7.1 see generated traffic too.

use pallas_core::SourceUnit;
use pallas_lang::ast::{
    AssignOp, Ast, BinOp, ExprId, ExprKind, Field, Function, FunctionSig, Item, Param, StmtId,
    StmtKind, StructDef, TypeRef, UnOp,
};
use pallas_lang::pretty::unit_to_source;
use pallas_lang::span::Span;
use pallas_spec::{FastPathSpec, RetValue};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Size and depth knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of helper prototypes emitted.
    pub max_helpers: usize,
    /// Maximum number of struct definitions emitted.
    pub max_structs: usize,
    /// Maximum statements per block.
    pub max_block_len: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Percentage points of the statement roll dedicated to loops
    /// (clamped to 40). The default 10 reproduces the historical
    /// distribution byte-for-byte; higher values trade `switch` /
    /// `return` / block mass for loop-heavy shapes, which is what the
    /// havoc-soundness and prune-subset oracles want to stress.
    pub loop_density: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_helpers: 3, max_structs: 2, max_block_len: 4, max_depth: 3, loop_density: 10 }
    }
}

/// A generated unit: the AST the generator built, its printed source,
/// the matching spec, and the [`SourceUnit`] handed to the pipeline.
#[derive(Debug, Clone)]
pub struct GenUnit {
    /// The seed this unit was generated from.
    pub seed: u64,
    /// The arena AST as built (spans are all `Span::point(0)`).
    pub ast: Ast,
    /// `unit_to_source(&ast)` — what the pipeline actually parses.
    pub source: String,
    /// The matching spec.
    pub spec: FastPathSpec,
    /// Ready-to-check unit named `fuzz/seed-<seed>` with file `gen.c`.
    pub unit: SourceUnit,
}

// Name pools. Kept disjoint from each other and free of the `_t`
// suffix (the parser treats `*_t` identifiers as type names) and of
// the `_rn` / `fz_` substrings reserved by the metamorphic rewrites.
const VAR_POOL: &[&str] =
    &["gfp_mask", "order", "flags", "mode", "len", "nid", "seq", "budget", "refs"];
const STRUCT_POOL: &[&str] = &["page", "zone_ref", "pcp_cache", "rx_desc"];
const FIELD_POOL: &[&str] = &["private", "watermark", "gen", "count", "prio"];
const HELPER_POOL: &[&str] = &["noio_flags", "zone_watermark_ok", "prep_new", "stat_inc"];
const BASE_POOL: &[&str] = &["alloc_pages", "tcp_rcv", "get_page", "queue_xmit"];
/// Acquire/release pairs for the resource-pairing rules (6.1/6.2).
const PAIR_POOL: &[(&str, &str)] = &[("acquire_buf", "release_buf"), ("pin_ref", "unpin_ref")];

#[derive(Clone)]
struct Var {
    name: String,
    /// Index into `structs` when this is a pointer to a generated struct.
    struct_idx: Option<usize>,
}

struct Gen<'a> {
    rng: StdRng,
    ast: Ast,
    cfg: &'a GenConfig,
    structs: Vec<(String, Vec<String>)>,
    helpers: Vec<String>,
    /// Acquire/release pairs declared by the spec (at most one).
    pairs: Vec<(String, String)>,
    /// Helpers declared expensive by the spec (at most one).
    expensive: Vec<String>,
    /// Variables in scope while generating the current function.
    vars: Vec<Var>,
    uses_goto: bool,
    next_local: usize,
}

fn sp() -> Span {
    Span::point(0)
}

/// Generates the unit for `seed` under the default configuration.
pub fn generate(seed: u64) -> GenUnit {
    generate_with(seed, &GenConfig::default())
}

/// Generates the unit for `seed` under an explicit configuration.
pub fn generate_with(seed: u64, cfg: &GenConfig) -> GenUnit {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        ast: Ast::new(),
        cfg,
        structs: Vec::new(),
        helpers: Vec::new(),
        pairs: Vec::new(),
        expensive: Vec::new(),
        vars: Vec::new(),
        uses_goto: false,
        next_local: 0,
    };
    let spec = g.build();
    let source = unit_to_source(&g.ast);
    let name = format!("fuzz/seed-{seed}");
    let unit = SourceUnit::new(&name)
        .with_file("gen.c", &source)
        .with_spec(spec.to_string());
    GenUnit { seed, ast: g.ast, source, spec, unit }
}

impl Gen<'_> {
    fn build(&mut self) -> FastPathSpec {
        self.ast
            .items
            .push(Item::Typedef { ty: TypeRef::named("unsigned int"), name: "gfp_t".into() });

        let n_structs = self.rng.gen_range(0..=self.cfg.max_structs.min(STRUCT_POOL.len()));
        for sname in STRUCT_POOL.iter().take(n_structs) {
            let n_fields = self.rng.gen_range(2..=3usize);
            let fields: Vec<String> =
                FIELD_POOL.iter().take(n_fields).map(|f| f.to_string()).collect();
            self.structs.push((sname.to_string(), fields.clone()));
            self.ast.items.push(Item::Struct(StructDef {
                name: sname.to_string(),
                fields: fields
                    .iter()
                    .map(|f| Field { ty: TypeRef::named("int"), name: f.clone() })
                    .collect(),
                is_union: false,
                span: sp(),
            }));
        }

        let n_helpers = self.rng.gen_range(1..=self.cfg.max_helpers.min(HELPER_POOL.len()));
        for h in HELPER_POOL.iter().take(n_helpers) {
            self.helpers.push(h.to_string());
            self.ast.items.push(Item::Proto(FunctionSig {
                name: h.to_string(),
                ret: TypeRef::named("int"),
                params: vec![
                    Param { ty: TypeRef::named("int"), name: "a".into() },
                    Param { ty: TypeRef::named("int"), name: "b".into() },
                ],
                variadic: false,
            }));
        }

        // Resource-pair and expensive-helper shapes for the extension
        // rules. The pair's prototypes join the helper pool so random
        // calls land anywhere `gen_call` fires; `emit_fast` then seeds
        // acquire/release calls at the function's edges so balanced,
        // leaking, and stray arrangements all occur across seeds.
        if self.rng.gen_bool(0.35) {
            let (acq, rel) = PAIR_POOL[self.rng.gen_range(0..PAIR_POOL.len())];
            for name in [acq, rel] {
                self.helpers.push(name.to_string());
                self.ast.items.push(Item::Proto(FunctionSig {
                    name: name.to_string(),
                    ret: TypeRef::named("int"),
                    params: vec![Param { ty: TypeRef::named("int"), name: "a".into() }],
                    variadic: false,
                }));
            }
            self.pairs.push((acq.to_string(), rel.to_string()));
        }
        if self.rng.gen_bool(0.3) {
            let h = self.helpers[self.rng.gen_range(0..self.helpers.len())].clone();
            self.expensive.push(h);
        }

        if self.rng.gen_bool(0.3) {
            let zero = self.int(0);
            self.ast.items.push(Item::Global {
                ty: TypeRef::named("int"),
                name: "total_count".into(),
                init: Some(zero),
                span: sp(),
            });
        }

        let base = BASE_POOL[self.rng.gen_range(0..BASE_POOL.len())];
        let fast_name = format!("{base}_fast");
        let slow_name = format!("{base}_slow");
        let caller_name = format!("{base}_caller");

        // Fast-path parameters, shared by the slow path.
        let n_params = self.rng.gen_range(1..=3usize);
        let mut params = Vec::new();
        for pname in VAR_POOL.iter().take(n_params) {
            let name = pname.to_string();
            let struct_ptr = !self.structs.is_empty() && self.rng.gen_bool(0.25);
            if struct_ptr {
                let si = self.rng.gen_range(0..self.structs.len());
                params.push((
                    Param {
                        ty: TypeRef::named(format!("struct {}", self.structs[si].0)).pointer_to(),
                        name: name.clone(),
                    },
                    Var { name, struct_idx: Some(si) },
                ));
            } else {
                let ty = if self.rng.gen_bool(0.2) { "gfp_t" } else { "int" };
                params.push((Param { ty: TypeRef::named(ty), name: name.clone() }, Var {
                    name,
                    struct_idx: None,
                }));
            }
        }

        let has_slow = self.rng.gen_bool(0.6);
        if has_slow {
            self.emit_slow(&slow_name, &params);
        }
        self.emit_fast(&fast_name, &params);
        let has_caller = self.rng.gen_bool(0.5);
        if has_caller {
            self.emit_caller(&caller_name, &fast_name, params.len());
        }

        self.build_spec(&fast_name, &slow_name, &caller_name, &params, has_slow, has_caller)
    }

    /// Slow path: a short chain of guarded returns over the shared
    /// parameters, always ending in a plain integer return.
    fn emit_slow(&mut self, name: &str, params: &[(Param, Var)]) {
        self.vars = params.iter().map(|(_, v)| v.clone()).collect();
        let mut stmts = Vec::new();
        for _ in 0..self.rng.gen_range(1..=3usize) {
            let cond = self.gen_cond();
            let v = self.rng.gen_range(-2..=2i64);
            let ret_val = self.int(v);
            let ret = self.ast.alloc_stmt(StmtKind::Return(Some(ret_val)), sp());
            let s = self
                .ast
                .alloc_stmt(StmtKind::If { cond, then_br: ret, else_br: None }, sp());
            stmts.push(s);
        }
        let v = self.rng.gen_range(-1..=1i64);
        let fin = self.int(v);
        stmts.push(self.ast.alloc_stmt(StmtKind::Return(Some(fin)), sp()));
        let body = self.ast.alloc_stmt(StmtKind::Block(stmts), sp());
        self.push_fn(name, params, body);
    }

    fn emit_fast(&mut self, name: &str, params: &[(Param, Var)]) {
        self.vars = params.iter().map(|(_, v)| v.clone()).collect();
        self.uses_goto = self.rng.gen_bool(0.35);
        self.next_local = 0;
        // When a resource pair exists, pick one of four edge
        // arrangements: none, acquire-only (leak shape), release-only
        // (stray shape), or balanced. Random mid-body calls from
        // `gen_call` layer on top of this.
        let arrangement = if self.pairs.is_empty() { 0 } else { self.rng.gen_range(0..4u32) };
        let mut stmts = Vec::new();
        if arrangement == 1 || arrangement == 3 {
            let acq = self.pairs[0].0.clone();
            let s = self.call_stmt(&acq);
            stmts.push(s);
        }
        let mut mid = self.gen_stmts(self.cfg.max_depth);
        stmts.append(&mut mid);
        if arrangement == 2 || arrangement == 3 {
            let rel = self.pairs[0].1.clone();
            let s = self.call_stmt(&rel);
            stmts.push(s);
        }
        if self.uses_goto {
            stmts.push(self.ast.alloc_stmt(StmtKind::Label("out".into()), sp()));
        }
        let v = self.rng.gen_range(-1..=1i64);
        let ret = self.gen_return_expr(v);
        stmts.push(self.ast.alloc_stmt(StmtKind::Return(Some(ret)), sp()));
        let body = self.ast.alloc_stmt(StmtKind::Block(stmts), sp());
        self.push_fn(name, params, body);
        self.uses_goto = false;
    }

    /// Caller in one of three shapes: result checked, result ignored,
    /// result propagated (`return fast(...)`).
    fn emit_caller(&mut self, name: &str, fast: &str, n_args: usize) {
        self.vars.clear();
        let args: Vec<ExprId> = (0..n_args).map(|i| self.int(i as i64)).collect();
        let callee = self.ast.alloc_expr(ExprKind::Ident(fast.into()), sp());
        let call = self.ast.alloc_expr(ExprKind::Call { callee, args }, sp());
        let mut stmts = Vec::new();
        match self.rng.gen_range(0..3u32) {
            0 => {
                // int ret = fast(...); if (ret < 0) return ret; return 0;
                stmts.push(self.ast.alloc_stmt(
                    StmtKind::Decl {
                        ty: TypeRef::named("int"),
                        name: "ret".into(),
                        init: Some(call),
                    },
                    sp(),
                ));
                let r1 = self.ast.alloc_expr(ExprKind::Ident("ret".into()), sp());
                let zero = self.int(0);
                let cond = self.ast.alloc_expr(ExprKind::Binary(BinOp::Lt, r1, zero), sp());
                let r2 = self.ast.alloc_expr(ExprKind::Ident("ret".into()), sp());
                let ret_stmt = self.ast.alloc_stmt(StmtKind::Return(Some(r2)), sp());
                let s = self
                    .ast
                    .alloc_stmt(StmtKind::If { cond, then_br: ret_stmt, else_br: None }, sp());
                stmts.push(s);
                let z = self.int(0);
                stmts.push(self.ast.alloc_stmt(StmtKind::Return(Some(z)), sp()));
            }
            1 => {
                // fast(...); return 0;  (result ignored)
                stmts.push(self.ast.alloc_stmt(StmtKind::Expr(call), sp()));
                let z = self.int(0);
                stmts.push(self.ast.alloc_stmt(StmtKind::Return(Some(z)), sp()));
            }
            _ => {
                // return fast(...);  (result propagated)
                stmts.push(self.ast.alloc_stmt(StmtKind::Return(Some(call)), sp()));
            }
        }
        let body = self.ast.alloc_stmt(StmtKind::Block(stmts), sp());
        self.push_fn(name, &[], body);
    }

    fn push_fn(&mut self, name: &str, params: &[(Param, Var)], body: StmtId) {
        self.ast.items.push(Item::Function(Function {
            sig: FunctionSig {
                name: name.to_string(),
                ret: TypeRef::named("int"),
                params: params.iter().map(|(p, _)| p.clone()).collect(),
                variadic: false,
            },
            body,
            span: sp(),
        }));
    }

    fn build_spec(
        &mut self,
        fast: &str,
        slow: &str,
        caller: &str,
        params: &[(Param, Var)],
        has_slow: bool,
        has_caller: bool,
    ) -> FastPathSpec {
        let _ = caller;
        let names: Vec<&str> = params.iter().map(|(p, _)| p.name.as_str()).collect();
        let mut spec = FastPathSpec::new("fuzz").with_fastpath(fast);
        if has_slow {
            spec = spec.with_slowpath(slow);
        }
        if self.rng.gen_bool(0.5) {
            spec = spec.with_immutable(names[self.rng.gen_range(0..names.len())]);
        }
        if names.len() >= 2 && self.rng.gen_bool(0.4) {
            spec = spec.with_correlated(names[0], names[1]);
        }
        let mut groups = 0;
        if self.rng.gen_bool(0.6) {
            let take = self.rng.gen_range(1..=names.len().min(2));
            spec = spec.with_cond("c0", &names[..take]);
            groups += 1;
        }
        if names.len() >= 2 && self.rng.gen_bool(0.3) {
            spec = spec.with_cond("c1", &names[names.len() - 1..]);
            groups += 1;
        }
        if groups == 2 && self.rng.gen_bool(0.5) {
            spec = spec.with_order("c0", "c1");
        }
        if self.rng.gen_bool(0.5) {
            for v in [-1i64, 0, 1] {
                spec = spec.with_return(RetValue::Int(v));
            }
        }
        if has_slow && self.rng.gen_bool(0.4) {
            spec = spec.with_match_slow_return();
        }
        if has_caller && self.rng.gen_bool(0.5) {
            spec = spec.with_check_return();
        }
        if self.rng.gen_bool(0.3) {
            spec = spec.with_fault(names[self.rng.gen_range(0..names.len())]);
        }
        if !self.structs.is_empty() && self.rng.gen_bool(0.4) {
            let si = self.rng.gen_range(0..self.structs.len());
            spec = spec.with_assist_struct(self.structs[si].0.clone());
        }
        if names.len() >= 2 && self.rng.gen_bool(0.3) {
            spec = spec.with_cache(names[1], names[0]);
        }
        for (acq, rel) in &self.pairs {
            spec = spec.with_pair(acq.clone(), rel.clone());
        }
        for e in &self.expensive {
            spec = spec.with_expensive(e.clone());
        }
        spec
    }

    // ---- statements ----

    fn gen_stmts(&mut self, depth: usize) -> Vec<StmtId> {
        let n = self.rng.gen_range(1..=self.cfg.max_block_len);
        let scope_mark = self.vars.len();
        let mut out = Vec::new();
        for _ in 0..n {
            let s = self.gen_stmt(depth);
            out.push(s);
        }
        self.vars.truncate(scope_mark);
        out
    }

    fn gen_stmt(&mut self, depth: usize) -> StmtId {
        let roll = self.rng.gen_range(0..100u32);
        // Below depth 1, only flat statements.
        if depth <= 1 || roll < 40 {
            return self.gen_flat_stmt();
        }
        // Loops take `loop_density` points of the roll starting at 60;
        // switch/return keep their historical widths shifted after it
        // (clamped at 100). The default density of 10 reproduces the
        // original 60..=69 / 70..=81 / 82..=89 bands exactly.
        let density = self.cfg.loop_density.min(40) as u32;
        match roll {
            40..=59 => self.gen_if(depth),
            r if r < 60 + density => self.gen_loop(depth),
            r if r < (72 + density).min(100) => self.gen_switch(depth),
            r if r < (80 + density).min(100) => {
                let v = self.rng.gen_range(-1..=1i64);
                let e = self.gen_return_expr(v);
                self.ast.alloc_stmt(StmtKind::Return(Some(e)), sp())
            }
            _ => {
                let stmts = self.gen_stmts(depth - 1);
                self.ast.alloc_stmt(StmtKind::Block(stmts), sp())
            }
        }
    }

    fn gen_flat_stmt(&mut self) -> StmtId {
        match self.rng.gen_range(0..10u32) {
            0..=2 => {
                // Local declaration, occasionally uninitialized.
                let name = format!("v{}", self.next_local);
                self.next_local += 1;
                let init = if self.rng.gen_bool(0.8) {
                    Some(self.gen_expr(2))
                } else {
                    None
                };
                self.vars.push(Var { name: clone_str(&name), struct_idx: None });
                self.ast.alloc_stmt(
                    StmtKind::Decl { ty: TypeRef::named("int"), name, init },
                    sp(),
                )
            }
            3..=5 => {
                // Assignment to a variable or struct field.
                let lhs = self.gen_lvalue();
                let op = match self.rng.gen_range(0..5u32) {
                    0 => AssignOp::Compound(BinOp::BitOr),
                    1 => AssignOp::Compound(BinOp::BitAnd),
                    2 => AssignOp::Compound(BinOp::Add),
                    _ => AssignOp::Assign,
                };
                let rhs = self.gen_expr(2);
                let e = self.ast.alloc_expr(ExprKind::Assign(op, lhs, rhs), sp());
                self.ast.alloc_stmt(StmtKind::Expr(e), sp())
            }
            6 | 7 => {
                // Helper call statement.
                let e = self.gen_call();
                self.ast.alloc_stmt(StmtKind::Expr(e), sp())
            }
            8 => {
                if self.uses_goto {
                    self.ast.alloc_stmt(StmtKind::Goto("out".into()), sp())
                } else {
                    self.ast.alloc_stmt(StmtKind::Empty, sp())
                }
            }
            _ => {
                let v = self.rng.gen_range(-1..=1i64);
                let e = self.gen_return_expr(v);
                self.ast.alloc_stmt(StmtKind::Return(Some(e)), sp())
            }
        }
    }

    fn gen_if(&mut self, depth: usize) -> StmtId {
        let cond = self.gen_cond();
        let then_stmts = self.gen_stmts(depth - 1);
        let then_br = self.ast.alloc_stmt(StmtKind::Block(then_stmts), sp());
        let else_br = if self.rng.gen_bool(0.5) {
            let else_stmts = self.gen_stmts(depth - 1);
            Some(self.ast.alloc_stmt(StmtKind::Block(else_stmts), sp()))
        } else {
            None
        };
        self.ast.alloc_stmt(StmtKind::If { cond, then_br, else_br }, sp())
    }

    fn gen_loop(&mut self, depth: usize) -> StmtId {
        match self.rng.gen_range(0..3u32) {
            0 => {
                let cond = self.gen_cond();
                let stmts = self.gen_stmts(depth - 1);
                let body = self.ast.alloc_stmt(StmtKind::Block(stmts), sp());
                self.ast.alloc_stmt(StmtKind::While { cond, body }, sp())
            }
            1 => {
                let stmts = self.gen_stmts(depth - 1);
                let body = self.ast.alloc_stmt(StmtKind::Block(stmts), sp());
                let cond = self.gen_cond();
                self.ast.alloc_stmt(StmtKind::DoWhile { body, cond }, sp())
            }
            _ => {
                // for (i = 0; i < N; i = i + 1) over a fresh local.
                let name = format!("v{}", self.next_local);
                self.next_local += 1;
                self.vars.push(Var { name: clone_str(&name), struct_idx: None });
                let decl = self.ast.alloc_stmt(
                    StmtKind::Decl {
                        ty: TypeRef::named("int"),
                        name: clone_str(&name),
                        init: None,
                    },
                    sp(),
                );
                let i0 = self.ast.alloc_expr(ExprKind::Ident(clone_str(&name)), sp());
                let z = self.int(0);
                let init_e = self.ast.alloc_expr(ExprKind::Assign(AssignOp::Assign, i0, z), sp());
                let init_s = self.ast.alloc_stmt(StmtKind::Expr(init_e), sp());
                let i1 = self.ast.alloc_expr(ExprKind::Ident(clone_str(&name)), sp());
                let bound_v = self.rng.gen_range(2..=8i64);
                let bound = self.int(bound_v);
                let cond = self.ast.alloc_expr(ExprKind::Binary(BinOp::Lt, i1, bound), sp());
                let i2 = self.ast.alloc_expr(ExprKind::Ident(clone_str(&name)), sp());
                let i3 = self.ast.alloc_expr(ExprKind::Ident(clone_str(&name)), sp());
                let one = self.int(1);
                let next = self.ast.alloc_expr(ExprKind::Binary(BinOp::Add, i3, one), sp());
                let step = self.ast.alloc_expr(ExprKind::Assign(AssignOp::Assign, i2, next), sp());
                let stmts = self.gen_stmts(depth - 1);
                let body = self.ast.alloc_stmt(StmtKind::Block(stmts), sp());
                let f = self.ast.alloc_stmt(
                    StmtKind::For { init: Some(init_s), cond: Some(cond), step: Some(step), body },
                    sp(),
                );
                let wrap = vec![decl, f];
                self.ast.alloc_stmt(StmtKind::Block(wrap), sp())
            }
        }
    }

    fn gen_switch(&mut self, depth: usize) -> StmtId {
        let scrutinee = self.gen_int_var();
        let mut body = Vec::new();
        // Occasionally park a statement before the first case label —
        // it is unreachable, which exercises the CFG's orphan-block
        // handling.
        if self.rng.gen_bool(0.15) {
            let s = self.gen_flat_stmt();
            body.push(s);
        }
        let n_cases = self.rng.gen_range(1..=3i64);
        for v in 0..n_cases {
            let val = self.int(v);
            body.push(self.ast.alloc_stmt(StmtKind::Case(val), sp()));
            let mut arm = self.gen_stmts(depth - 1);
            body.append(&mut arm);
            // Mostly break, sometimes fall through.
            if self.rng.gen_bool(0.8) {
                body.push(self.ast.alloc_stmt(StmtKind::Break, sp()));
            }
        }
        if self.rng.gen_bool(0.7) {
            body.push(self.ast.alloc_stmt(StmtKind::Default, sp()));
            let mut arm = self.gen_stmts(depth - 1);
            body.append(&mut arm);
            body.push(self.ast.alloc_stmt(StmtKind::Break, sp()));
        }
        let block = self.ast.alloc_stmt(StmtKind::Block(body), sp());
        self.ast.alloc_stmt(StmtKind::Switch { scrutinee, body: block }, sp())
    }

    // ---- expressions ----

    fn int(&mut self, v: i64) -> ExprId {
        self.ast.alloc_expr(ExprKind::Int(v), sp())
    }

    /// A variable reference that is not a struct pointer (for
    /// arithmetic and switch scrutinee positions).
    fn gen_int_var(&mut self) -> ExprId {
        let ints: Vec<String> = self
            .vars
            .iter()
            .filter(|v| v.struct_idx.is_none())
            .map(|v| v.name.clone())
            .collect();
        if ints.is_empty() {
            let v = self.rng.gen_range(0..=4i64);
            return self.int(v);
        }
        let name = ints[self.rng.gen_range(0..ints.len())].clone();
        self.ast.alloc_expr(ExprKind::Ident(name), sp())
    }

    /// A struct-field access `p->field` if a struct-pointer variable
    /// is in scope, else an int variable.
    fn gen_member_or_var(&mut self) -> ExprId {
        let ptrs: Vec<(String, usize)> = self
            .vars
            .iter()
            .filter_map(|v| v.struct_idx.map(|i| (v.name.clone(), i)))
            .collect();
        if !ptrs.is_empty() && self.rng.gen_bool(0.5) {
            let (name, si) = ptrs[self.rng.gen_range(0..ptrs.len())].clone();
            let fields = &self.structs[si].1;
            let field = fields[self.rng.gen_range(0..fields.len())].clone();
            let base = self.ast.alloc_expr(ExprKind::Ident(name), sp());
            self.ast.alloc_expr(ExprKind::Member { base, field, arrow: true }, sp())
        } else {
            self.gen_int_var()
        }
    }

    fn gen_lvalue(&mut self) -> ExprId {
        self.gen_member_or_var()
    }

    /// A statement calling `name` with one generated argument.
    fn call_stmt(&mut self, name: &str) -> StmtId {
        let callee = self.ast.alloc_expr(ExprKind::Ident(name.to_string()), sp());
        let arg = self.gen_expr(1);
        let call = self.ast.alloc_expr(ExprKind::Call { callee, args: vec![arg] }, sp());
        self.ast.alloc_stmt(StmtKind::Expr(call), sp())
    }

    fn gen_call(&mut self) -> ExprId {
        let h = self.helpers[self.rng.gen_range(0..self.helpers.len())].clone();
        let callee = self.ast.alloc_expr(ExprKind::Ident(h), sp());
        let n_args = self.rng.gen_range(1..=2usize);
        let args: Vec<ExprId> = (0..n_args).map(|_| self.gen_expr(1)).collect();
        self.ast.alloc_expr(ExprKind::Call { callee, args }, sp())
    }

    fn gen_expr(&mut self, depth: usize) -> ExprId {
        if depth == 0 {
            return match self.rng.gen_range(0..3u32) {
                0 => {
                    let v = self.rng.gen_range(0..=16i64);
                    self.int(v)
                }
                _ => self.gen_member_or_var(),
            };
        }
        match self.rng.gen_range(0..10u32) {
            0 | 1 => {
                let v = self.rng.gen_range(0..=16i64);
                self.int(v)
            }
            2 | 3 => self.gen_member_or_var(),
            4 | 5 => {
                let op = match self.rng.gen_range(0..6u32) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::BitAnd,
                    3 => BinOp::BitOr,
                    4 => BinOp::Mul,
                    _ => BinOp::BitXor,
                };
                let a = self.gen_expr(depth - 1);
                let b = self.gen_expr(depth - 1);
                self.ast.alloc_expr(ExprKind::Binary(op, a, b), sp())
            }
            6 => {
                // Flag-mask test or shift by a small constant.
                let a = self.gen_member_or_var();
                let v = self.rng.gen_range(1..=4i64);
                let k = self.int(1 << v);
                let op = if self.rng.gen_bool(0.7) { BinOp::BitAnd } else { BinOp::Shl };
                self.ast.alloc_expr(ExprKind::Binary(op, a, k), sp())
            }
            7 => self.gen_call(),
            8 => {
                let op = if self.rng.gen_bool(0.5) { UnOp::Not } else { UnOp::BitNot };
                let a = self.gen_member_or_var();
                self.ast.alloc_expr(ExprKind::Unary(op, a), sp())
            }
            _ => {
                // Division by a non-zero constant.
                let a = self.gen_member_or_var();
                let v = self.rng.gen_range(1..=4i64);
                let d = self.int(v);
                self.ast.alloc_expr(ExprKind::Binary(BinOp::Div, a, d), sp())
            }
        }
    }

    fn gen_cond(&mut self) -> ExprId {
        match self.rng.gen_range(0..5u32) {
            0 => {
                // var <cmp> int
                let a = self.gen_member_or_var();
                let v = self.rng.gen_range(-1..=4i64);
                let b = self.int(v);
                let op = match self.rng.gen_range(0..4u32) {
                    0 => BinOp::Eq,
                    1 => BinOp::Ne,
                    2 => BinOp::Lt,
                    _ => BinOp::Ge,
                };
                self.ast.alloc_expr(ExprKind::Binary(op, a, b), sp())
            }
            1 => {
                // flag test: var & MASK
                let a = self.gen_member_or_var();
                let v = self.rng.gen_range(0..=4i64);
                let m = self.int(1 << v);
                self.ast.alloc_expr(ExprKind::Binary(BinOp::BitAnd, a, m), sp())
            }
            2 => {
                let a = self.gen_member_or_var();
                self.ast.alloc_expr(ExprKind::Unary(UnOp::Not, a), sp())
            }
            3 => {
                // conjunction of two simple tests
                let a = self.gen_cond_simple();
                let b = self.gen_cond_simple();
                let op = if self.rng.gen_bool(0.6) { BinOp::And } else { BinOp::Or };
                self.ast.alloc_expr(ExprKind::Binary(op, a, b), sp())
            }
            _ => {
                // call() == 0
                let c = self.gen_call();
                let z = self.int(0);
                self.ast.alloc_expr(ExprKind::Binary(BinOp::Eq, c, z), sp())
            }
        }
    }

    fn gen_cond_simple(&mut self) -> ExprId {
        let a = self.gen_member_or_var();
        let v = self.rng.gen_range(0..=4i64);
        let b = self.int(v);
        let op = if self.rng.gen_bool(0.5) { BinOp::Lt } else { BinOp::Ne };
        self.ast.alloc_expr(ExprKind::Binary(op, a, b), sp())
    }

    /// Return expression: often a plain small integer (so the
    /// `returns`/`match_slow_return` rules have something to bite
    /// on), sometimes a variable or helper call.
    fn gen_return_expr(&mut self, default: i64) -> ExprId {
        match self.rng.gen_range(0..4u32) {
            0 | 1 => self.int(default),
            2 => self.gen_int_var(),
            _ => self.gen_call(),
        }
    }
}

fn clone_str(s: &str) -> String {
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_lang::parse;

    #[test]
    fn same_seed_same_unit() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.source, b.source);
        assert_eq!(a.spec.to_string(), b.spec.to_string());
    }

    #[test]
    fn different_seeds_differ() {
        // Not guaranteed in principle, but these two do differ and
        // pin the seed-sensitivity of the stream.
        assert_ne!(generate(1).source, generate(2).source);
    }

    #[test]
    fn generated_units_parse(){
        for seed in 0..60u64 {
            let g = generate(seed);
            parse(&g.source).unwrap_or_else(|e| {
                panic!("seed {seed} produced unparseable source: {e:?}\n{}", g.source)
            });
            pallas_spec::parse_spec(&g.spec.to_string()).unwrap_or_else(|e| {
                panic!("seed {seed} produced bad spec: {e:?}\n{}", g.spec)
            });
        }
    }

    #[test]
    fn knobs_bound_size() {
        let small = GenConfig {
            max_helpers: 1,
            max_structs: 0,
            max_block_len: 1,
            max_depth: 1,
            loop_density: 10,
        };
        let g = generate_with(3, &small);
        // Depth 1 means no nested blocks: source stays tiny.
        assert!(g.source.lines().count() < 40, "{}", g.source);
    }

    #[test]
    fn extension_rule_shapes_occur() {
        // The seed stream must exercise the resource-pairing and
        // work-amplification rules, not just the Table 1 families.
        let mut pairs = 0;
        let mut expensive = 0;
        for seed in 0..60u64 {
            let g = generate(seed);
            if !g.spec.pairs.is_empty() {
                pairs += 1;
            }
            if !g.spec.expensive.is_empty() {
                expensive += 1;
            }
        }
        assert!(pairs > 0, "no seed in 0..60 generated a resource pair");
        assert!(expensive > 0, "no seed in 0..60 generated an expensive helper");
    }

    #[test]
    fn spec_names_the_fast_path() {
        for seed in 0..20u64 {
            let g = generate(seed);
            let fast = &g.spec.fastpath[0];
            assert!(g.source.contains(fast.as_str()), "seed {seed}");
        }
    }
}
