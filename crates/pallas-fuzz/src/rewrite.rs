//! Semantics-preserving metamorphic rewrites.
//!
//! Each rewrite takes a parsed [`Ast`] and produces a new one that
//! denotes the same program, so the checker findings must be
//! invariant (up to the comparison documented per rewrite in
//! [`crate::oracle`]):
//!
//! * **rename** — every *declared* identifier gets an `_rn` suffix,
//!   applied consistently to uses, struct tags, fields, labels, and
//!   the spec text. Line structure is untouched, so the NDJSON output
//!   must be byte-identical once the suffix is stripped back out.
//! * **swap branches** — every `if (c) A else B` becomes
//!   `if (!(c)) B else A`. Line numbers shift, so only the
//!   (rule, function, message) projection must be invariant.
//! * **dead statements** — inert `;` statements are interleaved into
//!   blocks and a never-read `fz_dead*` local is prepended to each
//!   function body. Same projection-level invariance.
//! * **whitespace churn** — a text-level rewrite that indents lines
//!   and appends `/* fz */` comments without adding or removing
//!   lines: NDJSON must stay byte-identical.
//!
//! Names ending in `_t` are never renamed: the parser's type-name
//! heuristic treats them as types, and a reduced unit may rely on
//! that without retaining the `typedef` line.

use pallas_lang::ast::{
    Ast, Expr, ExprId, ExprKind, Function, FunctionSig, Item, Param, Stmt, StmtId, StmtKind,
    StructDef, TypeRef, UnOp,
};
use std::collections::{HashMap, HashSet};

/// The suffix appended by the rename rewrite.
pub const RENAME_SUFFIX: &str = "_rn";

enum Mode {
    Rename(HashMap<String, String>),
    Swap,
    Dead,
}

/// Renames all declared identifiers with an `_rn` suffix. Returns the
/// rewritten AST and the rename map (original → renamed).
pub fn rename_idents(ast: &Ast) -> (Ast, HashMap<String, String>) {
    let declared = declared_names(ast);
    let mut map = HashMap::new();
    for name in &declared {
        if name.ends_with("_t") {
            continue;
        }
        let target = format!("{name}{RENAME_SUFFIX}");
        if declared.contains(&target) {
            continue; // paranoia: never collide with an existing name
        }
        map.insert(name.clone(), target);
    }
    let out = Rewriter { src: ast, dst: Ast::new(), mode: Mode::Rename(map.clone()), dead: 0 }
        .run();
    (out, map)
}

/// Applies the rename map to a spec text *structurally*: the spec is
/// parsed, name-carrying fields are mapped, and the result is
/// re-rendered. Spec keywords (`order`, `cache`, ...) can collide
/// with program identifiers, so a token-level rewrite would corrupt
/// the DSL — found by the fuzzer on seed 8, where a variable named
/// `order` renamed the `order c0 before c1;` clause keyword.
pub fn rename_spec_text(spec: &str, map: &HashMap<String, String>) -> String {
    let Ok(mut parsed) = pallas_spec::parse_spec(spec) else {
        return spec.to_string();
    };
    let map_path = |s: &mut String| *s = map_tokens(s, |tok| map.get(tok).cloned());
    for f in parsed
        .fastpath
        .iter_mut()
        .chain(parsed.slowpath.iter_mut())
        .chain(parsed.immutable.iter_mut())
        .chain(parsed.faults.iter_mut())
        .chain(parsed.assist_structs.iter_mut())
    {
        map_path(f);
    }
    for (x, y) in parsed.correlated.iter_mut() {
        map_path(x);
        map_path(y);
    }
    for c in parsed.conds.iter_mut() {
        // Group names are spec-level labels, not program identifiers.
        for v in c.vars.iter_mut() {
            map_path(v);
        }
    }
    for r in parsed.returns.iter_mut() {
        if let pallas_spec::RetValue::Name(n) = r {
            map_path(n);
        }
    }
    for c in parsed.caches.iter_mut() {
        map_path(&mut c.cache);
        map_path(&mut c.state);
    }
    for (acq, rel) in parsed.pairs.iter_mut() {
        map_path(acq);
        map_path(rel);
    }
    for e in parsed.expensive.iter_mut() {
        map_path(e);
    }
    let text = parsed.to_string();
    // A spec without a `unit` clause renders as `unit ;`, which does
    // not re-parse — drop the line rather than invent a name.
    match text.strip_prefix("unit ;\n") {
        Some(rest) if parsed.unit.is_empty() => rest.to_string(),
        _ => text,
    }
}

/// Strips the rename suffix back out of rendered output so it can be
/// compared byte-for-byte against the original run.
pub fn strip_rename_suffix(s: &str) -> String {
    s.replace(RENAME_SUFFIX, "")
}

/// Swaps every two-armed `if`, negating its condition.
pub fn swap_branches(ast: &Ast) -> Ast {
    Rewriter { src: ast, dst: Ast::new(), mode: Mode::Swap, dead: 0 }.run()
}

/// Interleaves inert statements into every block and prepends a dead
/// local to each function body.
pub fn insert_dead_stmts(ast: &Ast) -> Ast {
    Rewriter { src: ast, dst: Ast::new(), mode: Mode::Dead, dead: 0 }.run()
}

/// Line-count-preserving whitespace and comment churn.
pub fn churn_whitespace(src: &str) -> String {
    let mut out = String::with_capacity(src.len() * 2);
    for line in src.lines() {
        if line.trim().is_empty() {
            out.push('\n');
        } else {
            out.push_str("  ");
            out.push_str(line);
            out.push_str("  /* fz */\n");
        }
    }
    out
}

/// Every identifier declared anywhere in the unit: functions, params,
/// locals, globals, struct tags and fields, enum variants, typedefs,
/// and labels.
fn declared_names(ast: &Ast) -> HashSet<String> {
    let mut names = HashSet::new();
    let mut sigs: Vec<&FunctionSig> = Vec::new();
    for item in &ast.items {
        match item {
            Item::Function(f) => {
                sigs.push(&f.sig);
                collect_stmt_names(ast, f.body, &mut names);
            }
            Item::Proto(sig) => sigs.push(sig),
            Item::Struct(def) => {
                names.insert(def.name.clone());
                for f in &def.fields {
                    names.insert(f.name.clone());
                }
            }
            Item::Enum(def) => {
                if let Some(n) = &def.name {
                    names.insert(n.clone());
                }
                for (n, _) in &def.variants {
                    names.insert(n.clone());
                }
            }
            Item::Global { name, .. } => {
                names.insert(name.clone());
            }
            Item::Typedef { name, .. } => {
                names.insert(name.clone());
            }
            Item::Pragma(..) => {}
        }
    }
    for sig in sigs {
        names.insert(sig.name.clone());
        for p in &sig.params {
            if !p.name.is_empty() {
                names.insert(p.name.clone());
            }
        }
    }
    names
}

fn collect_stmt_names(ast: &Ast, id: StmtId, names: &mut HashSet<String>) {
    match &ast.stmt(id).kind {
        StmtKind::Decl { name, .. } => {
            names.insert(name.clone());
        }
        StmtKind::Label(l) => {
            names.insert(l.clone());
        }
        StmtKind::Block(stmts) => {
            for &s in stmts {
                collect_stmt_names(ast, s, names);
            }
        }
        StmtKind::If { then_br, else_br, .. } => {
            collect_stmt_names(ast, *then_br, names);
            if let Some(e) = else_br {
                collect_stmt_names(ast, *e, names);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::Switch { body, .. } => collect_stmt_names(ast, *body, names),
        StmtKind::For { init, body, .. } => {
            if let Some(s) = init {
                collect_stmt_names(ast, *s, names);
            }
            collect_stmt_names(ast, *body, names);
        }
        _ => {}
    }
}

/// Replaces identifier tokens in free text. Non-identifier characters
/// are copied through; maximal `[A-Za-z_][A-Za-z0-9_]*` runs are
/// offered to `f`.
fn map_tokens(text: &str, f: impl Fn(&str) -> Option<String>) -> String {
    let mut out = String::with_capacity(text.len());
    let mut token = String::new();
    let flush = |token: &mut String, out: &mut String| {
        if token.is_empty() {
            return;
        }
        match f(token) {
            Some(mapped) => out.push_str(&mapped),
            None => out.push_str(token),
        }
        token.clear();
    };
    for ch in text.chars() {
        let ident_char = ch == '_' || ch.is_ascii_alphanumeric();
        let starts = ch == '_' || ch.is_ascii_alphabetic();
        if token.is_empty() {
            if starts {
                token.push(ch);
            } else {
                out.push(ch);
            }
        } else if ident_char {
            token.push(ch);
        } else {
            flush(&mut token, &mut out);
            out.push(ch);
        }
    }
    flush(&mut token, &mut out);
    out
}

struct Rewriter<'a> {
    src: &'a Ast,
    dst: Ast,
    mode: Mode,
    dead: usize,
}

impl Rewriter<'_> {
    fn run(mut self) -> Ast {
        for item in &self.src.items.clone() {
            let mapped = match item {
                Item::Function(f) => {
                    let body = self.clone_fn_body(f.body);
                    Item::Function(Function { sig: self.map_sig(&f.sig), body, span: f.span })
                }
                Item::Proto(sig) => Item::Proto(self.map_sig(sig)),
                Item::Struct(def) => Item::Struct(StructDef {
                    name: self.map_name(&def.name),
                    fields: def
                        .fields
                        .iter()
                        .map(|f| pallas_lang::ast::Field {
                            ty: self.map_ty(&f.ty),
                            name: self.map_name(&f.name),
                        })
                        .collect(),
                    is_union: def.is_union,
                    span: def.span,
                }),
                Item::Enum(def) => {
                    let mut d = def.clone();
                    d.name = d.name.as_ref().map(|n| self.map_name(n));
                    d.variants =
                        d.variants.iter().map(|(n, v)| (self.map_name(n), *v)).collect();
                    Item::Enum(d)
                }
                Item::Global { ty, name, init, span } => Item::Global {
                    ty: self.map_ty(ty),
                    name: self.map_name(name),
                    init: init.map(|e| self.clone_expr(e)),
                    span: *span,
                },
                Item::Typedef { ty, name } => {
                    Item::Typedef { ty: self.map_ty(ty), name: self.map_name(name) }
                }
                Item::Pragma(body, span) => Item::Pragma(body.clone(), *span),
            };
            self.dst.items.push(mapped);
        }
        self.dst
    }

    fn map_name(&self, name: &str) -> String {
        match &self.mode {
            Mode::Rename(map) => map.get(name).cloned().unwrap_or_else(|| name.to_string()),
            _ => name.to_string(),
        }
    }

    /// Type names carry an optional `struct `/`union ` prefix in front
    /// of the tag.
    fn map_ty(&self, ty: &TypeRef) -> TypeRef {
        let name = if let Some(tag) = ty.name.strip_prefix("struct ") {
            format!("struct {}", self.map_name(tag))
        } else if let Some(tag) = ty.name.strip_prefix("union ") {
            format!("union {}", self.map_name(tag))
        } else {
            self.map_name(&ty.name)
        };
        TypeRef { name, ptr: ty.ptr }
    }

    fn map_sig(&self, sig: &FunctionSig) -> FunctionSig {
        FunctionSig {
            name: self.map_name(&sig.name),
            ret: self.map_ty(&sig.ret),
            params: sig
                .params
                .iter()
                .map(|p| Param { ty: self.map_ty(&p.ty), name: self.map_name(&p.name) })
                .collect(),
            variadic: sig.variadic,
        }
    }

    /// Clones a function body; in dead mode a never-read local is
    /// prepended.
    fn clone_fn_body(&mut self, id: StmtId) -> StmtId {
        let Stmt { kind, span } = self.src.stmt(id);
        let span = *span;
        if let (Mode::Dead, StmtKind::Block(stmts)) = (&self.mode, kind) {
            let stmts = stmts.clone();
            let zero = self.dst.alloc_expr(ExprKind::Int(0), span);
            let name = format!("fz_dead{}", self.dead);
            self.dead += 1;
            let decl = self.dst.alloc_stmt(
                StmtKind::Decl { ty: TypeRef::named("int"), name, init: Some(zero) },
                span,
            );
            let mut out = vec![decl];
            self.clone_block_into(&stmts, &mut out);
            self.dst.alloc_stmt(StmtKind::Block(out), span)
        } else {
            self.clone_stmt(id)
        }
    }

    fn clone_block_into(&mut self, stmts: &[StmtId], out: &mut Vec<StmtId>) {
        for (i, &s) in stmts.iter().enumerate() {
            let c = self.clone_stmt(s);
            out.push(c);
            // In dead mode, interleave inert statements — but never
            // directly after a `case`/`default` label inside a switch
            // body (harmless, just keeps output readable) and only at
            // every other position to bound growth.
            if matches!(self.mode, Mode::Dead)
                && i % 2 == 0
                && !matches!(
                    self.src.stmt(s).kind,
                    StmtKind::Case(_) | StmtKind::Default | StmtKind::Label(_)
                )
            {
                let e = self.dst.alloc_stmt(StmtKind::Empty, self.src.stmt(s).span);
                out.push(e);
            }
        }
    }

    fn clone_stmt(&mut self, id: StmtId) -> StmtId {
        let Stmt { kind, span } = self.src.stmt(id).clone();
        let kind = match kind {
            StmtKind::Decl { ty, name, init } => StmtKind::Decl {
                ty: self.map_ty(&ty),
                name: self.map_name(&name),
                init: init.map(|e| self.clone_expr(e)),
            },
            StmtKind::Expr(e) => StmtKind::Expr(self.clone_expr(e)),
            StmtKind::If { cond, then_br, else_br } => {
                if let (Mode::Swap, Some(els)) = (&self.mode, else_br) {
                    let c = self.clone_expr(cond);
                    let negated = self.dst.alloc_expr(ExprKind::Unary(UnOp::Not, c), span);
                    let new_then = self.clone_stmt(els);
                    let new_else = Some(self.clone_stmt(then_br));
                    StmtKind::If { cond: negated, then_br: new_then, else_br: new_else }
                } else {
                    StmtKind::If {
                        cond: self.clone_expr(cond),
                        then_br: self.clone_stmt(then_br),
                        else_br: else_br.map(|e| self.clone_stmt(e)),
                    }
                }
            }
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.clone_expr(cond),
                body: self.clone_stmt(body),
            },
            StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
                body: self.clone_stmt(body),
                cond: self.clone_expr(cond),
            },
            StmtKind::For { init, cond, step, body } => StmtKind::For {
                init: init.map(|s| self.clone_stmt(s)),
                cond: cond.map(|e| self.clone_expr(e)),
                step: step.map(|e| self.clone_expr(e)),
                body: self.clone_stmt(body),
            },
            StmtKind::Switch { scrutinee, body } => StmtKind::Switch {
                scrutinee: self.clone_expr(scrutinee),
                body: self.clone_stmt(body),
            },
            StmtKind::Case(e) => StmtKind::Case(self.clone_expr(e)),
            StmtKind::Default => StmtKind::Default,
            StmtKind::Return(e) => StmtKind::Return(e.map(|e| self.clone_expr(e))),
            StmtKind::Break => StmtKind::Break,
            StmtKind::Continue => StmtKind::Continue,
            StmtKind::Goto(l) => StmtKind::Goto(self.map_name(&l)),
            StmtKind::Label(l) => StmtKind::Label(self.map_name(&l)),
            StmtKind::Block(stmts) => {
                let mut out = Vec::new();
                self.clone_block_into(&stmts, &mut out);
                StmtKind::Block(out)
            }
            StmtKind::Empty => StmtKind::Empty,
            StmtKind::Pragma(p) => StmtKind::Pragma(p),
        };
        self.dst.alloc_stmt(kind, span)
    }

    fn clone_expr(&mut self, id: ExprId) -> ExprId {
        let Expr { kind, span } = self.src.expr(id).clone();
        let kind = match kind {
            ExprKind::Int(v) => ExprKind::Int(v),
            ExprKind::Str(s) => ExprKind::Str(s),
            ExprKind::Ident(n) => ExprKind::Ident(self.map_name(&n)),
            ExprKind::Unary(op, e) => ExprKind::Unary(op, self.clone_expr(e)),
            ExprKind::Binary(op, a, b) => {
                ExprKind::Binary(op, self.clone_expr(a), self.clone_expr(b))
            }
            ExprKind::Assign(op, a, b) => {
                ExprKind::Assign(op, self.clone_expr(a), self.clone_expr(b))
            }
            ExprKind::Ternary(c, t, e) => {
                ExprKind::Ternary(self.clone_expr(c), self.clone_expr(t), self.clone_expr(e))
            }
            ExprKind::Call { callee, args } => ExprKind::Call {
                callee: self.clone_expr(callee),
                args: args.iter().map(|&a| self.clone_expr(a)).collect(),
            },
            ExprKind::Member { base, field, arrow } => ExprKind::Member {
                base: self.clone_expr(base),
                field: self.map_name(&field),
                arrow,
            },
            ExprKind::Index(b, i) => ExprKind::Index(self.clone_expr(b), self.clone_expr(i)),
            ExprKind::Cast(ty, e) => ExprKind::Cast(self.map_ty(&ty), self.clone_expr(e)),
            ExprKind::SizeofType(ty) => ExprKind::SizeofType(self.map_ty(&ty)),
            ExprKind::SizeofExpr(e) => ExprKind::SizeofExpr(self.clone_expr(e)),
            ExprKind::Comma(a, b) => ExprKind::Comma(self.clone_expr(a), self.clone_expr(b)),
        };
        self.dst.alloc_expr(kind, span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_lang::pretty::unit_to_source;
    use pallas_lang::parse;

    const SRC: &str = "\
typedef unsigned int gfp_t;
struct page { int private; int count; };
int helper(int a, int b);
int fast(gfp_t gfp_mask, struct page *page) {
  int v0 = gfp_mask & 4;
  if (v0 == 0) {
    page->private = 1;
  } else {
    page->count = 2;
  }
  goto out;
out:
  return 0;
}";

    #[test]
    fn rename_is_consistent_and_parseable() {
        let ast = parse(SRC).unwrap();
        let (renamed, map) = rename_idents(&ast);
        let out = unit_to_source(&renamed);
        assert!(map.contains_key("fast"));
        assert!(!map.contains_key("gfp_t"), "typedef names are excluded");
        assert!(out.contains("fast_rn"));
        assert!(out.contains("page_rn->private_rn"));
        let reparsed = parse(&out).expect("renamed source parses");
        assert_eq!(reparsed.functions().count(), 1);
        // Stripping the suffix restores the original text exactly.
        assert_eq!(strip_rename_suffix(&out), unit_to_source(&ast));
    }

    #[test]
    fn swap_negates_and_swaps() {
        let ast = parse(SRC).unwrap();
        let swapped = swap_branches(&ast);
        let out = unit_to_source(&swapped);
        assert!(out.contains("if (!(v0 == 0))"), "{out}");
        let pos_count = out.find("page->count").unwrap();
        let pos_private = out.find("page->private").unwrap();
        assert!(pos_count < pos_private, "arms swapped");
        parse(&out).expect("swapped source parses");
    }

    #[test]
    fn dead_insertion_parses_and_grows() {
        let ast = parse(SRC).unwrap();
        let dead = insert_dead_stmts(&ast);
        let out = unit_to_source(&dead);
        assert!(out.contains("int fz_dead0 = 0;"));
        assert!(out.lines().count() > SRC.lines().count());
        parse(&out).expect("dead-statement source parses");
    }

    #[test]
    fn churn_preserves_line_count() {
        let churned = churn_whitespace(SRC);
        assert_eq!(churned.lines().count(), SRC.lines().count());
        assert!(churned.contains("/* fz */"));
        parse(&churned).expect("churned source parses");
    }

    #[test]
    fn spec_rename_is_structural() {
        let mut map = HashMap::new();
        map.insert("fast".to_string(), "fast_rn".to_string());
        map.insert("gfp_mask".to_string(), "gfp_mask_rn".to_string());
        map.insert("order".to_string(), "order_rn".to_string());
        // `order` is both a variable and a spec keyword: the clause
        // keyword must survive, the variable must be renamed.
        let spec =
            "unit u;\nfastpath fast;\ncond c0: gfp_mask;\ncond c1: order;\norder c0 before c1;\n";
        let out = rename_spec_text(spec, &map);
        assert!(out.contains("fastpath fast_rn;"), "{out}");
        assert!(out.contains("cond c0: gfp_mask_rn;"), "{out}");
        assert!(out.contains("cond c1: order_rn;"), "{out}");
        assert!(out.contains("order c0 before c1;"), "keyword untouched: {out}");
    }

    #[test]
    fn spec_rename_handles_member_paths() {
        let mut map = HashMap::new();
        map.insert("page".to_string(), "page_rn".to_string());
        map.insert("private".to_string(), "private_rn".to_string());
        let spec = "unit u;\nimmutable page->private;\n";
        let out = rename_spec_text(spec, &map);
        assert!(out.contains("immutable page_rn->private_rn;"), "{out}");
    }
}
