//! The differential oracle battery.
//!
//! Every generated unit is pushed through a stack of cross-checks,
//! from strongest to weakest comparison:
//!
//! | oracle            | comparison                                  |
//! |-------------------|---------------------------------------------|
//! | `pipeline`        | the unit analyzes without a `PallasError`    |
//! | `pretty-fixpoint` | `print(parse(print(ast)))` is a fixpoint     |
//! | `engine-cold-warm`| cold, warm, and facade NDJSON byte-identical |
//! | `store-cold-warm` | persistent-warm NDJSON byte-identical across a process-state drop |
//! | `store-incremental`| appending one function recomputes only that function |
//! | `daemon`          | daemon `check` NDJSON byte-identical over Unix, TCP, and the coalescing path |
//! | `daemon-protocol` | malformed frames get kinded errors; the connection keeps serving |
//! | `meta-rename`     | NDJSON byte-identical after suffix strip     |
//! | `meta-churn`      | NDJSON byte-identical                        |
//! | `meta-swap`       | unpruned (rule, fn, message) multiset equal  |
//! | `meta-dead`       | unpruned (rule, fn, message) multiset equal  |
//! | `prune-subset`    | pruned ∃-rule findings ⊆ unpruned ones       |
//! | `rule-selection`  | disabling a rule removes exactly its findings|
//!
//! The rename and churn rewrites preserve line structure, so they
//! must reproduce the NDJSON byte-for-byte; branch swapping and dead
//! statements shift line numbers, so only the line-free projection of
//! the finding set is required to be invariant. The projection compare
//! is additionally skipped when either side's path enumeration was
//! truncated: under a cap the enumerated subset depends on DFS order,
//! so a CFG-reshaping rewrite can shift the finding multiset without
//! any checker bug.

use crate::rewrite;
use pallas_checkers::{Quantifier, Rule, RuleSet};
use pallas_core::{render_ndjson, AnalyzedUnit, Engine, Pallas, SourceUnit};
use pallas_lang::pretty::unit_to_source;
use pallas_sym::ExtractConfig;

/// Which cross-check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// The pipeline returned a `PallasError` on generator output.
    Pipeline,
    /// Pretty-printing is not a fixpoint under reparsing.
    PrettyFixpoint,
    /// Cold, warm, and facade runs disagreed.
    EngineColdWarm,
    /// A fresh engine on the populated store disagreed with the cold
    /// run, or served the unit with nonzero Extract/Check work.
    StoreColdWarm,
    /// Appending one new function re-analyzed more than that function,
    /// or the incremental result differed from a from-scratch run.
    StoreIncremental,
    /// The daemon's NDJSON differed from the local run — on the Unix
    /// transport, the TCP transport, or the coalesced delivery path.
    DaemonIdentity,
    /// A malformed frame crashed the connection instead of producing a
    /// kinded error, or the connection stopped serving afterwards.
    DaemonProtocol,
    /// Identifier renaming changed the findings.
    MetaRename,
    /// Branch swapping changed the findings.
    MetaSwap,
    /// Dead-statement insertion changed the findings.
    MetaDead,
    /// Whitespace churn changed the findings.
    MetaChurn,
    /// Disabling feasibility pruning failed, or the pruned findings
    /// were not a subset of the unpruned ones.
    PruneSubset,
    /// Disabling one rule changed more than that rule's findings.
    RuleSelection,
}

impl Oracle {
    /// Stable tag used in failure signatures and `found/` file names.
    pub fn tag(self) -> &'static str {
        match self {
            Oracle::Pipeline => "pipeline",
            Oracle::PrettyFixpoint => "pretty-fixpoint",
            Oracle::EngineColdWarm => "engine-cold-warm",
            Oracle::StoreColdWarm => "store-cold-warm",
            Oracle::StoreIncremental => "store-incremental",
            Oracle::DaemonIdentity => "daemon",
            Oracle::DaemonProtocol => "daemon-protocol",
            Oracle::MetaRename => "meta-rename",
            Oracle::MetaSwap => "meta-swap",
            Oracle::MetaDead => "meta-dead",
            Oracle::MetaChurn => "meta-churn",
            Oracle::PruneSubset => "prune-subset",
            Oracle::RuleSelection => "rule-selection",
        }
    }
}

/// A failed cross-check, with a human-readable detail line.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Which oracle tripped.
    pub oracle: Oracle,
    /// What diverged (first differing line, error text, ...).
    pub detail: String,
}

/// Connections into the in-process daemon, one per bound transport.
/// The daemon oracle runs its identity check over every transport
/// present — responses must be byte-identical across all of them.
pub struct DaemonClients {
    /// The Unix-socket connection (always present when the daemon is).
    pub unix: pallas_service::Client,
    /// The TCP connection, when the daemon also bound a TCP listener.
    pub tcp: Option<pallas_service::Client>,
}

/// The line-free projection of a finding set: sorted multiset of
/// (rule, function, message). Line numbers are deliberately excluded
/// so that line-shifting rewrites can be compared.
pub fn projection(analyzed: &AnalyzedUnit) -> Vec<(String, String, String)> {
    let mut v: Vec<(String, String, String)> = analyzed
        .warnings
        .iter()
        .map(|w| (w.rule.number().to_string(), w.function.clone(), w.message.clone()))
        .collect();
    v.sort();
    v
}

fn first_diff(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("`{la}` vs `{lb}`");
        }
    }
    format!("{} vs {} lines", a.lines().count(), b.lines().count())
}

fn fail(oracle: Oracle, detail: impl Into<String>) -> OracleFailure {
    OracleFailure { oracle, detail: detail.into() }
}

/// Runs the full battery on one unit. On success, returns the
/// baseline NDJSON (fed into the run digest). `daemon` is optional so
/// the reducer can re-run the battery hermetically.
pub fn run_oracles(
    unit: &SourceUnit,
    daemon: Option<&mut DaemonClients>,
) -> Result<String, OracleFailure> {
    // 1. Baseline via the facade.
    let base = Pallas::new()
        .check_unit(unit)
        .map_err(|e| fail(Oracle::Pipeline, format!("{e}")))?;
    let base_ndjson = render_ndjson(&base);

    // 2. Pretty-printer fixpoint on the parsed AST.
    let printed = unit_to_source(&base.ast);
    match pallas_lang::parse(&printed) {
        Ok(reparsed) => {
            let printed2 = unit_to_source(&reparsed);
            if printed != printed2 {
                return Err(fail(Oracle::PrettyFixpoint, first_diff(&printed, &printed2)));
            }
        }
        Err(e) => {
            return Err(fail(Oracle::PrettyFixpoint, format!("printed source fails to parse: {e:?}")))
        }
    }

    // 3. Engine cold vs warm vs facade.
    let engine = Engine::new();
    let cold = engine
        .check_unit(unit)
        .map_err(|e| fail(Oracle::EngineColdWarm, format!("cold: {e}")))?;
    let warm = engine
        .check_unit(unit)
        .map_err(|e| fail(Oracle::EngineColdWarm, format!("warm: {e}")))?;
    let cold_nd = render_ndjson(&cold);
    let warm_nd = render_ndjson(&warm);
    if cold_nd != base_ndjson {
        return Err(fail(Oracle::EngineColdWarm, format!("cold vs facade: {}", first_diff(&cold_nd, &base_ndjson))));
    }
    if warm_nd != base_ndjson {
        return Err(fail(Oracle::EngineColdWarm, format!("warm vs facade: {}", first_diff(&warm_nd, &base_ndjson))));
    }

    // 3b. Persistence identity and incrementality (see store_oracles).
    store_oracles(unit, &base_ndjson)?;

    // 4. Daemon identity over the transport matrix, the coalescing
    //    path, and protocol robustness on malformed frames.
    if let Some(clients) = daemon {
        daemon_oracles(unit, &base_ndjson, clients)?;
    }

    let spec_text = unit.spec_text.clone();

    // 5. Metamorphic: rename (byte-identical after suffix strip).
    {
        let (renamed, map) = rewrite::rename_idents(&base.ast);
        let src = unit_to_source(&renamed);
        let spec = rewrite::rename_spec_text(&spec_text, &map);
        let rn_unit = remade(unit, &src, &spec);
        let analyzed = Pallas::new()
            .check_unit(&rn_unit)
            .map_err(|e| fail(Oracle::MetaRename, format!("renamed unit fails: {e}")))?;
        let stripped = rewrite::strip_rename_suffix(&render_ndjson(&analyzed));
        if stripped != base_ndjson {
            return Err(fail(Oracle::MetaRename, first_diff(&stripped, &base_ndjson)));
        }
    }

    // 6. Metamorphic: whitespace churn (byte-identical).
    {
        let src = rewrite::churn_whitespace(&source_of(unit));
        let ch_unit = remade(unit, &src, &spec_text);
        let analyzed = Pallas::new()
            .check_unit(&ch_unit)
            .map_err(|e| fail(Oracle::MetaChurn, format!("churned unit fails: {e}")))?;
        let nd = render_ndjson(&analyzed);
        if nd != base_ndjson {
            return Err(fail(Oracle::MetaChurn, first_diff(&nd, &base_ndjson)));
        }
    }

    // The CFG-reshaping rewrites (branch swap, dead statements) are
    // compared on *unpruned* runs: the rewrites preserve the semantic
    // path set exactly, but feasibility pruning is syntactic and not
    // symmetric under condition negation, so a pruned run can keep a
    // path before the swap and drop it after (found by the
    // extension-rule sweep: a swapped seed's record gained a third
    // `noio_flags` call once the pruner stopped cutting one arm,
    // shifting Rule 7.1's quoted call count). With pruning off the
    // full (rule, function, message) projection must be invariant;
    // pruned-vs-unpruned behavior is the prune-subset oracle's job.
    // The compare is further gated on truncation: under a `PathConfig`
    // cap the enumerated subset depends on DFS order, so reshaping the
    // CFG legitimately swaps which paths make the cut (found by a
    // depth-5 fuzz sweep: a unit at exactly `max_paths` dropped one
    // Rule 1.2 site after a branch swap). Each side still has to
    // *analyze* cleanly; only the projection compare is gated.
    let no_prune = ExtractConfig { prune_infeasible: false, ..ExtractConfig::default() };
    let unpruned_base = Pallas::new()
        .with_config(no_prune)
        .check_unit(unit)
        .map_err(|e| fail(Oracle::PruneSubset, format!("unpruned run fails: {e}")))?;
    let unpruned_proj = projection(&unpruned_base);
    let unpruned_truncated = unpruned_base.db.any_truncated();

    // 7. Metamorphic: branch swap (projection-invariant, unpruned).
    {
        let swapped = rewrite::swap_branches(&base.ast);
        let src = unit_to_source(&swapped);
        let sw_unit = remade(unit, &src, &spec_text);
        let analyzed = Pallas::new()
            .with_config(no_prune)
            .check_unit(&sw_unit)
            .map_err(|e| fail(Oracle::MetaSwap, format!("swapped unit fails: {e}")))?;
        let proj = projection(&analyzed);
        if !unpruned_truncated && !analyzed.db.any_truncated() && proj != unpruned_proj {
            return Err(fail(Oracle::MetaSwap, format!("{proj:?} vs {unpruned_proj:?}")));
        }
    }

    // 8. Metamorphic: dead statements (projection-invariant, unpruned).
    {
        let dead = rewrite::insert_dead_stmts(&base.ast);
        let src = unit_to_source(&dead);
        let dd_unit = remade(unit, &src, &spec_text);
        let analyzed = Pallas::new()
            .with_config(no_prune)
            .check_unit(&dd_unit)
            .map_err(|e| fail(Oracle::MetaDead, format!("dead-stmt unit fails: {e}")))?;
        let proj = projection(&analyzed);
        if !unpruned_truncated && !analyzed.db.any_truncated() && proj != unpruned_proj {
            return Err(fail(Oracle::MetaDead, format!("{proj:?} vs {unpruned_proj:?}")));
        }
    }

    // 9. Feasibility pruning: the unit must also analyze cleanly with
    //    pruning disabled, and for *existential* rules the default
    //    (pruned) warning sites — the (rule, function) multiset — must
    //    be contained in the unpruned ones: their warnings are
    //    witnessed by single paths, so removing paths can only remove
    //    them. Universal rules (registry `Quantifier::Forall`: 2.1,
    //    2.2, 3.2, 4.1, 5.1, 7.1) are excluded — they warn on the
    //    *absence* of evidence across all paths, so pruning the only
    //    path carrying a trigger check or a field use legitimately
    //    adds a warning (found by the extension-rule fuzz sweep: a
    //    dead branch held the lone `c0` check, so 2.1 fired pruned
    //    but not unpruned). Message text is deliberately excluded
    //    too: pruning a contradictory slow-path arm shrinks derived
    //    sets quoted in messages (a seed-2 slow path returned -2 only
    //    under `flags == 0 && flags < 0`, so Rule 3.2's quoted return
    //    set tightened from [-2, 0, 1] to [0, 1]). The compare is
    //    skipped when either side truncated: pruning frees path
    //    budget, so a capped run can legitimately reach paths (and
    //    findings) the unpruned run never enumerated.
    {
        let sites = |analyzed: &AnalyzedUnit| -> Vec<(String, String)> {
            let mut v: Vec<(String, String)> = analyzed
                .warnings
                .iter()
                .filter(|w| w.rule.quantifier() == Quantifier::Exists)
                .map(|w| (w.rule.number().to_string(), w.function.clone()))
                .collect();
            v.sort();
            v
        };
        let pruned_sites = sites(&base);
        let full_sites = sites(&unpruned_base);
        if !base.db.any_truncated()
            && !unpruned_truncated
            && !is_sub_multiset(&pruned_sites, &full_sites)
        {
            return Err(fail(
                Oracle::PruneSubset,
                format!("pruned {pruned_sites:?} not within unpruned {full_sites:?}"),
            ));
        }
    }

    // 10. Rule selection: for every rule present in the baseline
    //     findings, a run with exactly that rule disabled must produce
    //     the baseline warning list minus that rule's entries —
    //     field-identical on every remaining finding. Checkers are
    //     independent, so selection can never perturb another rule's
    //     output; any difference is a registry-dispatch bug. Sound
    //     even under truncation: the enumerated path set does not
    //     depend on which rules consume it.
    {
        let mut fired: Vec<Rule> = base.warnings.iter().map(|w| w.rule).collect();
        fired.sort();
        fired.dedup();
        for rule in fired {
            let engine = Engine::with_rules(RuleSet::all().without(rule));
            let analyzed = engine.check_unit(unit).map_err(|e| {
                fail(Oracle::RuleSelection, format!("run without {rule} fails: {e}"))
            })?;
            let expected: Vec<_> =
                base.warnings.iter().filter(|w| w.rule != rule).cloned().collect();
            if analyzed.warnings != expected {
                return Err(fail(
                    Oracle::RuleSelection,
                    format!(
                        "without {rule}: got {:?}, want baseline minus {rule}: {expected:?}",
                        analyzed.warnings
                    ),
                ));
            }
        }
    }

    Ok(base_ndjson)
}

/// The daemon cross-checks: NDJSON identity over every bound
/// transport, identity through the coalescing path, and protocol
/// robustness on malformed frames.
///
/// The coalescing probe pipelines two identical delayed `check` lines
/// on one connection: both dispatch in a single event-loop pass while
/// the leader is still in its artificial delay, so the second attaches
/// as a follower and is answered by the leader's fan-out. Both
/// responses must match the local baseline byte-for-byte and the
/// daemon's `coalesced_hits` counter must move. The malformed frames
/// are derived from the unit's own request line (truncation, leading
/// garbage, unknown op), so the fuzzer's generative variety reaches
/// the framing layer too; each must get a clean `ok:false` response
/// and leave the connection serving.
fn daemon_oracles(
    unit: &SourceUnit,
    base_ndjson: &str,
    clients: &mut DaemonClients,
) -> Result<(), OracleFailure> {
    daemon_identity(&mut clients.unix, "unix", unit, base_ndjson)?;
    if let Some(tcp) = clients.tcp.as_mut() {
        daemon_identity(tcp, "tcp", unit, base_ndjson)?;
    }

    // Coalesced delivery path.
    {
        let line = pallas_service::Request::Check {
            unit: unit.clone(),
            delay: Some(std::time::Duration::from_millis(20)),
            rules: pallas_service::RuleSelection::default(),
        }
        .to_line();
        let before = coalesced_hits(&mut clients.unix)?;
        let responses = clients
            .unix
            .pipeline(&[line.clone(), line])
            .map_err(|e| fail(Oracle::DaemonIdentity, format!("coalesced pipeline failed: {e}")))?;
        if responses[0] != responses[1] {
            return Err(fail(
                Oracle::DaemonIdentity,
                format!("coalesced twins diverge: {}", first_diff(&responses[0], &responses[1])),
            ));
        }
        let nd = response_ndjson(&responses[0])
            .ok_or_else(|| fail(Oracle::DaemonIdentity, format!("no ndjson in coalesced response: {}", responses[0])))?;
        if nd != base_ndjson {
            return Err(fail(
                Oracle::DaemonIdentity,
                format!("coalesced: {}", first_diff(&nd, base_ndjson)),
            ));
        }
        let after = coalesced_hits(&mut clients.unix)?;
        if after <= before {
            return Err(fail(
                Oracle::DaemonIdentity,
                format!("coalesced_hits did not move ({before} -> {after})"),
            ));
        }
    }

    // Malformed frames: clean kinded errors, connection survives.
    {
        let line = pallas_service::Request::Check {
            unit: unit.clone(),
            delay: None,
            rules: pallas_service::RuleSelection::default(),
        }
        .to_line();
        let boundary = |mut i: usize| {
            while !line.is_char_boundary(i) {
                i -= 1;
            }
            i
        };
        let cut = boundary(line.len() / 2);
        let head = boundary(cut.min(24));
        let malformed = [
            line[..cut].to_string(),               // truncated JSON
            format!("!!{}", &line[..head]),        // leading garbage
            "{\"op\":\"frobnicate\"}".to_string(), // unknown op
        ];
        for bad in &malformed {
            let resp = clients.unix.request_line(bad).map_err(|e| {
                fail(Oracle::DaemonProtocol, format!("connection died on malformed frame: {e}"))
            })?;
            let parsed = pallas_service::json::parse(&resp).map_err(|e| {
                fail(Oracle::DaemonProtocol, format!("unparseable error response `{resp}`: {e}"))
            })?;
            let clean_error = parsed.get("ok").and_then(pallas_service::Value::as_bool)
                == Some(false)
                && parsed.get("error").and_then(pallas_service::Value::as_str).is_some();
            if !clean_error {
                return Err(fail(
                    Oracle::DaemonProtocol,
                    format!("malformed frame answered `{resp}`, want ok:false with an error"),
                ));
            }
        }
        daemon_identity(&mut clients.unix, "unix-after-malformed", unit, base_ndjson)
            .map_err(|f| fail(Oracle::DaemonProtocol, f.detail))?;
    }
    Ok(())
}

/// One transport's identity check: the daemon's `check` NDJSON must
/// equal the local baseline byte-for-byte.
fn daemon_identity(
    client: &mut pallas_service::Client,
    transport: &str,
    unit: &SourceUnit,
    base_ndjson: &str,
) -> Result<(), OracleFailure> {
    let resp = client
        .check(unit)
        .map_err(|e| fail(Oracle::DaemonIdentity, format!("{transport} request failed: {e}")))?;
    match resp.get("ndjson").and_then(pallas_service::Value::as_str) {
        Some(nd) if nd == base_ndjson => Ok(()),
        Some(nd) => {
            Err(fail(Oracle::DaemonIdentity, format!("{transport}: {}", first_diff(nd, base_ndjson))))
        }
        None => Err(fail(
            Oracle::DaemonIdentity,
            format!("{transport}: no ndjson in response: {resp}"),
        )),
    }
}

/// Extracts the `ndjson` payload from a raw response line.
fn response_ndjson(line: &str) -> Option<String> {
    pallas_service::json::parse(line)
        .ok()?
        .get("ndjson")
        .and_then(pallas_service::Value::as_str)
        .map(str::to_string)
}

/// Samples the daemon's `coalesced_hits` counter.
fn coalesced_hits(client: &mut pallas_service::Client) -> Result<u64, OracleFailure> {
    let resp = client
        .stats()
        .map_err(|e| fail(Oracle::DaemonIdentity, format!("stats request failed: {e}")))?;
    Ok(resp
        .get("stats")
        .and_then(|s| s.get("service"))
        .and_then(|s| s.get("coalesced_hits"))
        .and_then(pallas_service::Value::as_u64)
        .unwrap_or(0))
}

/// The persistent-store cross-checks, run against a scratch store
/// file that is deleted afterwards (pass or fail).
///
/// First the cold/persistent-warm identity: one engine analyzes the
/// unit and flushes, then is dropped — taking every piece of process
/// state (memory cache included) with it — and a second engine on the
/// same store file must reproduce the NDJSON byte-for-byte *without
/// running Extract or Check at all*. Then single-function
/// incrementality: appending one fresh function to the unit must
/// recompute exactly that function (asserted via the store's
/// per-function hit/miss counters) and still match what a storeless
/// engine computes from scratch on the mutated unit.
fn store_oracles(unit: &SourceUnit, base_ndjson: &str) -> Result<(), OracleFailure> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pallas-fuzz-store-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    std::fs::create_dir_all(&dir)
        .map_err(|e| fail(Oracle::StoreColdWarm, format!("cannot create scratch dir: {e}")))?;
    let _cleanup = Cleanup(dir.clone());
    let store = dir.join("fuzz.store");
    let store_engine = || {
        Engine::with_engine_config(pallas_core::EngineConfig {
            store_path: Some(store.clone()),
            ..pallas_core::EngineConfig::default()
        })
    };

    // Cold run: populate the store, flush, drop all process state.
    let func_count = {
        let engine = store_engine();
        let analyzed = engine
            .check_unit(unit)
            .map_err(|e| fail(Oracle::StoreColdWarm, format!("cold store run fails: {e}")))?;
        if render_ndjson(&analyzed) != base_ndjson {
            return Err(fail(Oracle::StoreColdWarm, "cold store run diverges from baseline"));
        }
        engine
            .flush_store()
            .map_err(|e| fail(Oracle::StoreColdWarm, format!("flush fails: {e}")))?;
        engine.stats().store_func_misses
    };

    // Persistent-warm run: a brand-new engine, disk only.
    {
        let engine = store_engine();
        let analyzed = engine
            .check_unit(unit)
            .map_err(|e| fail(Oracle::StoreColdWarm, format!("warm store run fails: {e}")))?;
        let nd = render_ndjson(&analyzed);
        if nd != base_ndjson {
            return Err(fail(Oracle::StoreColdWarm, first_diff(&nd, base_ndjson)));
        }
        let stats = engine.stats();
        if stats.store_unit_hits != 1 || stats.extracts != 0 || stats.checks != 0 {
            return Err(fail(
                Oracle::StoreColdWarm,
                format!(
                    "expected a pure disk hit (unit_hits 1, extracts 0, checks 0), got \
                     unit_hits {} extracts {} checks {}",
                    stats.store_unit_hits, stats.extracts, stats.checks
                ),
            ));
        }
    }

    // Incrementality: one appended function, everything else reused.
    {
        let mut mutated = unit.clone();
        let Some((_, contents)) = mutated.files.last_mut() else {
            return Ok(());
        };
        if !contents.ends_with('\n') {
            contents.push('\n');
        }
        contents.push_str("int __store_probe(int x) {\n  return x + 1;\n}\n");
        let engine = store_engine();
        let analyzed = engine
            .check_unit(&mutated)
            .map_err(|e| fail(Oracle::StoreIncremental, format!("mutated run fails: {e}")))?;
        let stats = engine.stats();
        let recomputed = stats.store_func_misses + stats.store_func_stale;
        if recomputed != 1 || stats.store_func_hits != func_count {
            return Err(fail(
                Oracle::StoreIncremental,
                format!(
                    "appending one function must recompute exactly it: \
                     {recomputed} recomputed, {} reused of {func_count}",
                    stats.store_func_hits
                ),
            ));
        }
        if stats.store_unit_stale != 1 {
            return Err(fail(
                Oracle::StoreIncremental,
                format!("mutated unit should be stale, got stats {stats:?}"),
            ));
        }
        let scratch = Engine::new()
            .check_unit(&mutated)
            .map_err(|e| fail(Oracle::StoreIncremental, format!("scratch run fails: {e}")))?;
        let incremental_nd = render_ndjson(&analyzed);
        let scratch_nd = render_ndjson(&scratch);
        if incremental_nd != scratch_nd {
            return Err(fail(Oracle::StoreIncremental, first_diff(&incremental_nd, &scratch_nd)));
        }
    }
    Ok(())
}

/// Whether sorted multiset `a` is contained in sorted multiset `b`.
fn is_sub_multiset<T: Ord>(a: &[T], b: &[T]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// The single-file source text of a unit.
fn source_of(unit: &SourceUnit) -> String {
    unit.files.first().map(|(_, s)| s.clone()).unwrap_or_default()
}

/// A unit with the same name and file name but different content.
/// Keeping the name identical is what makes NDJSON byte comparisons
/// possible.
fn remade(unit: &SourceUnit, src: &str, spec: &str) -> SourceUnit {
    let file = unit.files.first().map(|(n, _)| n.clone()).unwrap_or_else(|| "gen.c".into());
    SourceUnit::new(&unit.name).with_file(&file, src).with_spec(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn battery_clean_on_generated_seeds() {
        for seed in 0..25u64 {
            let g = generate(seed);
            if let Err(f) = run_oracles(&g.unit, None) {
                panic!(
                    "seed {seed}: oracle {} failed: {}\n--- source ---\n{}\n--- spec ---\n{}",
                    f.oracle.tag(),
                    f.detail,
                    g.source,
                    g.spec
                );
            }
        }
    }

    #[test]
    fn baseline_ndjson_is_deterministic() {
        let g = generate(11);
        let a = run_oracles(&g.unit, None).unwrap();
        let b = run_oracles(&g.unit, None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_units_do_not_trip_cfg_reshaping_oracles() {
        // Enough sequential branches inside a loop to overflow
        // `max_paths`: the enumerated subset is DFS-order-sensitive,
        // so meta-swap / meta-dead must not compare finding multisets
        // on this unit (the overwrite of `gfp_mask` fires Rule 1.2 on
        // whichever paths made the cut).
        let mut body = String::new();
        for i in 0..13 {
            body.push_str(&format!(
                "    if (gfp_mask & {}) r += 1; else r -= 1;\n",
                1 << (i % 8)
            ));
        }
        let src = format!(
            "int rx_fast(int gfp_mask) {{\n  int r = 0;\n  while (gfp_mask) {{\n\
             {body}    gfp_mask = gfp_mask - 1;\n  }}\n  return r;\n}}\n"
        );
        // Normalize to pretty-printed form — generator output is
        // always a fixpoint, and the line-sensitive oracles rely on
        // that.
        let src = unit_to_source(&pallas_lang::parse(&src).unwrap());
        let unit = SourceUnit::new("fuzz/truncated")
            .with_file("gen.c", &src)
            .with_spec("fastpath rx_fast; immutable gfp_mask;");
        let analyzed = Pallas::new().check_unit(&unit).unwrap();
        assert!(analyzed.db.any_truncated(), "test premise: the unit must truncate");
        assert!(!analyzed.warnings.is_empty(), "test premise: findings must exist");
        run_oracles(&unit, None).unwrap();
    }

    #[test]
    fn prune_subset_clean_on_contradictory_paths() {
        // The dead inner branch re-tests the outer guard's negation:
        // pruning suppresses the Rule 1.2 site on it, so the pruned
        // findings are a strict subset of the unpruned ones — which is
        // exactly what the oracle demands.
        let src = "\
int slow(int order);
int alloc_fast(int gfp_mask, int order) {
  if (gfp_mask == 0) {
    if (gfp_mask != 0) {
      gfp_mask = 1;
    }
    return slow(order);
  }
  return 0;
}
";
        let src = unit_to_source(&pallas_lang::parse(src).unwrap());
        let unit = SourceUnit::new("fuzz/dead-branch")
            .with_file("gen.c", &src)
            .with_spec("fastpath alloc_fast; immutable gfp_mask;");
        run_oracles(&unit, None).unwrap();
    }

    #[test]
    fn rule_selection_oracle_covers_multi_family_findings() {
        // Three families fire at once (1.2 immutable overwrite, 6.1
        // unreleased acquire, 7.1 unconditional expensive call), so
        // the rule-selection step runs three scoped engines and each
        // must reproduce the baseline minus exactly one rule.
        let src = "\
int pin_page(int addr);
int unpin_page(int page);
int wb_flush(void);
int rx_fast(int gfp_mask) {
  int page = pin_page(gfp_mask);
  wb_flush();
  gfp_mask = 0;
  return page;
}
";
        let src = unit_to_source(&pallas_lang::parse(src).unwrap());
        let unit = SourceUnit::new("fuzz/multi-family")
            .with_file("gen.c", &src)
            .with_spec(
                "fastpath rx_fast; immutable gfp_mask; \
                 pair pin_page -> unpin_page; expensive wb_flush;",
            );
        let base = Pallas::new().check_unit(&unit).unwrap();
        let fired: std::collections::BTreeSet<_> =
            base.warnings.iter().map(|w| w.rule).collect();
        assert!(fired.len() >= 3, "test premise: multiple families must fire, got {fired:?}");
        run_oracles(&unit, None).unwrap();
    }

    #[test]
    fn sub_multiset_respects_multiplicity() {
        assert!(is_sub_multiset(&[1, 2], &[1, 2, 3]));
        assert!(is_sub_multiset::<i32>(&[], &[]));
        assert!(!is_sub_multiset(&[1, 1], &[1, 2]));
        assert!(!is_sub_multiset(&[4], &[1, 2, 3]));
        assert!(is_sub_multiset(&[2, 2], &[1, 2, 2, 3]));
    }

    #[test]
    fn oracle_catches_seeded_divergence() {
        // A unit whose spec refers to a file that cannot parse must
        // surface as a pipeline failure, not a panic.
        let bad = SourceUnit::new("fuzz/bad")
            .with_file("gen.c", "int f( { return; }")
            .with_spec("fastpath f;");
        let err = run_oracles(&bad, None).unwrap_err();
        assert_eq!(err.oracle, Oracle::Pipeline);
    }
}
