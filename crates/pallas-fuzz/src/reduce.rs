//! Crash-triage reducer: delta debugging over source lines plus
//! clause-level spec reduction.
//!
//! Given a unit that fails an oracle (or panics), [`reduce_unit`]
//! shrinks it while the failure *signature* — the oracle tag, or a
//! normalized panic message — stays the same. Reduction is two
//! interleaved passes run to a fixpoint:
//!
//! 1. **ddmin over source lines**: remove progressively smaller line
//!    chunks; a candidate is kept only if it still fails the same
//!    way. Candidates that no longer fail (or fail differently) are
//!    rejected, so the reducer never "walks" to an unrelated bug.
//! 2. **spec clause dropping**: the spec DSL is `;`-terminated
//!    clauses; each clause is dropped greedily if the failure
//!    survives without it.
//!
//! The battery is re-run *without* the daemon during reduction: the
//! daemon owns a shared engine whose state the candidates would
//! pollute, and a hermetic signature makes reduction deterministic.

use crate::oracle::run_oracles;
use pallas_core::SourceUnit;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The failure signature of a unit: `panic:<first line>` if the
/// battery panics, `Some(oracle tag)` if an oracle fails, `None` if
/// the unit is clean.
pub fn signature(unit: &SourceUnit) -> Option<String> {
    let u = unit.clone();
    match catch_unwind(AssertUnwindSafe(|| run_oracles(&u, None))) {
        Ok(Ok(_)) => None,
        Ok(Err(f)) => Some(f.oracle.tag().to_string()),
        Err(payload) => Some(format!("panic:{}", normalize_panic(&payload))),
    }
}

/// Extracts a short, stable label from a panic payload.
pub fn normalize_panic(payload: &Box<dyn std::any::Any + Send>) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    };
    let first = msg.lines().next().unwrap_or("");
    first.chars().take(80).collect()
}

/// Shrinks `unit` while `signature` stays equal to `sig`. Returns the
/// smallest failing unit found.
pub fn reduce_unit(unit: &SourceUnit, sig: &str) -> SourceUnit {
    let file_name =
        unit.files.first().map(|(n, _)| n.clone()).unwrap_or_else(|| "gen.c".into());
    let mut src: Vec<String> =
        unit.files.first().map(|(_, s)| s.lines().map(String::from).collect()).unwrap_or_default();
    let mut spec = unit.spec_text.clone();

    let still_fails = |lines: &[String], spec: &str| -> bool {
        let candidate = SourceUnit::new(&unit.name)
            .with_file(&file_name, lines.join("\n"))
            .with_spec(spec);
        signature(&candidate).as_deref() == Some(sig)
    };

    // Sanity: the input must actually fail with the claimed signature,
    // otherwise return it untouched.
    if !still_fails(&src, &spec) {
        return unit.clone();
    }

    for _round in 0..8 {
        let before = (src.len(), spec.len());
        src = ddmin_lines(src, |cand| still_fails(cand, &spec));
        spec = reduce_spec(&spec, |cand| still_fails(&src, cand));
        if (src.len(), spec.len()) == before {
            break;
        }
    }

    SourceUnit::new(&unit.name).with_file(&file_name, src.join("\n")).with_spec(spec)
}

/// Classic ddmin over lines: try removing chunks at halving
/// granularity; keep any removal that preserves the predicate.
pub fn ddmin_lines(mut lines: Vec<String>, keep: impl Fn(&[String]) -> bool) -> Vec<String> {
    let mut chunk = lines.len().div_ceil(2).max(1);
    while chunk >= 1 && !lines.is_empty() {
        let mut start = 0;
        let mut removed_any = false;
        while start < lines.len() {
            let end = (start + chunk).min(lines.len());
            let mut candidate = Vec::with_capacity(lines.len() - (end - start));
            candidate.extend_from_slice(&lines[..start]);
            candidate.extend_from_slice(&lines[end..]);
            if keep(&candidate) {
                lines = candidate;
                removed_any = true;
                // Do not advance: the next chunk has shifted into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if chunk > 1 {
            chunk = chunk.div_ceil(2).min(chunk - 1).max(1);
        }
    }
    lines
}

/// Drops spec clauses (`;`-terminated) greedily while the predicate
/// holds. Comment-only and blank fragments are dropped for free.
pub fn reduce_spec(spec: &str, keep: impl Fn(&str) -> bool) -> String {
    let mut clauses: Vec<String> = spec
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    let mut i = 0;
    while i < clauses.len() {
        let mut candidate = clauses.clone();
        candidate.remove(i);
        let text = candidate.join("\n");
        if keep(&text) {
            clauses = candidate;
        } else {
            i += 1;
        }
    }
    clauses.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_minimal_pair() {
        let lines: Vec<String> = (0..32).map(|i| format!("line{i}")).collect();
        let keep = |cand: &[String]| {
            cand.iter().any(|l| l == "line7") && cand.iter().any(|l| l == "line19")
        };
        let out = ddmin_lines(lines, keep);
        assert_eq!(out, vec!["line7".to_string(), "line19".to_string()]);
    }

    #[test]
    fn ddmin_keeps_everything_when_all_needed() {
        let lines: Vec<String> = (0..4).map(|i| format!("l{i}")).collect();
        let all = lines.clone();
        let keep = move |cand: &[String]| cand == all.as_slice();
        assert_eq!(ddmin_lines(lines.clone(), keep), lines);
    }

    #[test]
    fn spec_reduction_drops_irrelevant_clauses() {
        let spec = "unit u;\nfastpath f;\nimmutable x;\nreturns 0;\n";
        let out = reduce_spec(spec, |cand| cand.contains("immutable x;"));
        assert_eq!(out, "immutable x;");
    }

    #[test]
    fn clean_unit_is_returned_untouched() {
        let unit = SourceUnit::new("t")
            .with_file("a.c", "int f(void) { return 0; }")
            .with_spec("fastpath f;");
        assert_eq!(signature(&unit), None);
        let same = reduce_unit(&unit, "pipeline");
        assert_eq!(same.files[0].1, unit.files[0].1);
    }

    #[test]
    fn reducer_shrinks_a_parse_failure() {
        // A unit with a syntax error among otherwise valid functions:
        // the reducer should strip the valid ones.
        let src = "\
int ok1(void) { return 0; }
int ok2(void) { return 1; }
int broken( { return 2; }
int ok3(void) { return 3; }";
        let unit = SourceUnit::new("t").with_file("a.c", src).with_spec("fastpath ok1;");
        let sig = signature(&unit).expect("unit fails");
        assert_eq!(sig, "pipeline");
        let reduced = reduce_unit(&unit, &sig);
        let out = &reduced.files[0].1;
        assert!(out.contains("broken"), "{out}");
        assert!(!out.contains("ok1("), "valid functions dropped: {out}");
        assert!(reduced.spec_text.is_empty() || !reduced.spec_text.contains("fastpath"));
    }
}
