//! Havoc-soundness and prune-subset checks for loop effect summaries
//! over generated, loop-heavy units.
//!
//! The first check re-derives, with an independent recursive
//! expression walker, every lvalue written inside each natural loop's
//! body blocks and demands the summary's may-written set contains all
//! of them (the over-approximation direction — a missed write would
//! let stale k-th-iteration bindings leak past the loop). The second
//! check pins the pruning relation: with loop summaries on, the
//! extracted path records of every function are a sub-multiset of the
//! records extracted with pruning off entirely (skipped under
//! truncation, where pruning legitimately frees budget for new paths).

use pallas_cfg::{
    build_cfg, enumerate_paths, enumerate_paths_with, find_loops, summarize_loops, PathConfig,
    Terminator,
};
use pallas_fuzz::{generate_with, run_oracles, GenConfig};
use pallas_lang::ast::{Ast, ExprId, ExprKind, StmtKind, UnOp};
use pallas_lang::expr_to_string;
use pallas_sym::FeasibilityOracle;
use std::collections::BTreeSet;

/// Loop-heavy generator shape: triple the default loop mass.
fn loopy() -> GenConfig {
    GenConfig { loop_density: 30, ..GenConfig::default() }
}

/// The extractor's lvalue keying, re-derived independently.
fn lvalue_key(ast: &Ast, e: ExprId) -> Option<String> {
    match &ast.expr(e).kind {
        ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index(..) => {
            Some(expr_to_string(ast, e))
        }
        ExprKind::Unary(UnOp::Deref, inner) => lvalue_key(ast, *inner).map(|k| format!("*{k}")),
        _ => None,
    }
}

/// Collects every written lvalue key in an expression tree by manual
/// recursion over each `ExprKind` variant (deliberately not
/// `Ast::walk_expr`, which the summary pass itself uses).
fn collect_writes(ast: &Ast, e: ExprId, out: &mut BTreeSet<String>) {
    match &ast.expr(e).kind {
        ExprKind::Assign(_, lhs, rhs) => {
            if let Some(k) = lvalue_key(ast, *lhs) {
                out.insert(k);
            }
            collect_writes(ast, *lhs, out);
            collect_writes(ast, *rhs, out);
        }
        ExprKind::Unary(op, inner) => {
            if op.mutates() {
                if let Some(k) = lvalue_key(ast, *inner) {
                    out.insert(k);
                }
            }
            collect_writes(ast, *inner, out);
        }
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) | ExprKind::Comma(a, b) => {
            collect_writes(ast, *a, out);
            collect_writes(ast, *b, out);
        }
        ExprKind::Ternary(c, t, el) => {
            collect_writes(ast, *c, out);
            collect_writes(ast, *t, out);
            collect_writes(ast, *el, out);
        }
        ExprKind::Call { callee, args } => {
            collect_writes(ast, *callee, out);
            for &a in args {
                collect_writes(ast, a, out);
            }
        }
        ExprKind::Member { base, .. } => collect_writes(ast, *base, out),
        ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
            collect_writes(ast, *inner, out)
        }
        ExprKind::Int(_) | ExprKind::Str(_) | ExprKind::Ident(_) | ExprKind::SizeofType(_) => {}
    }
}

#[test]
fn may_write_covers_every_body_write() {
    let mut loops_checked = 0usize;
    for seed in 0..60u64 {
        let g = generate_with(seed, &loopy());
        let ast = &g.ast;
        for func in ast.functions() {
            let cfg = build_cfg(ast, &func);
            let naturals = find_loops(&cfg);
            let summaries = summarize_loops(ast, &cfg);
            assert_eq!(
                naturals.len(),
                summaries.len(),
                "seed {seed} fn {}: one summary per natural loop",
                func.sig.name
            );
            for (l, s) in naturals.iter().zip(&summaries) {
                assert_eq!(s.header, l.header);
                assert_eq!(s.latch, l.latch);
                // Independent write collection over the same body.
                let mut writes = BTreeSet::new();
                for &bb in &s.body {
                    let block = cfg.block(bb);
                    for &sid in &block.stmts {
                        match &ast.stmt(sid).kind {
                            StmtKind::Decl { name, init, .. } => {
                                writes.insert(name.clone());
                                if let Some(e) = init {
                                    collect_writes(ast, *e, &mut writes);
                                }
                            }
                            StmtKind::Expr(e) => collect_writes(ast, *e, &mut writes),
                            _ => {}
                        }
                    }
                    for &(b, step) in &cfg.step_exprs {
                        if b == bb {
                            collect_writes(ast, step, &mut writes);
                        }
                    }
                    match &block.term {
                        Terminator::Branch { cond, .. } => {
                            collect_writes(ast, *cond, &mut writes)
                        }
                        Terminator::Switch { scrutinee, cases, .. } => {
                            collect_writes(ast, *scrutinee, &mut writes);
                            for &(case, _) in cases {
                                collect_writes(ast, case, &mut writes);
                            }
                        }
                        Terminator::Return(Some(e)) => collect_writes(ast, *e, &mut writes),
                        _ => {}
                    }
                }
                for w in &writes {
                    assert!(
                        s.may_write.contains(w),
                        "seed {seed} fn {}: `{w}` written in loop body but absent from \
                         may_write {:?}\n--- source ---\n{}",
                        func.sig.name,
                        s.may_write,
                        g.source
                    );
                }
                // Counters are a refinement of the may-written set.
                for key in s.counters.keys() {
                    assert!(
                        s.may_write.contains(key),
                        "seed {seed}: counter `{key}` not in may_write"
                    );
                }
                loops_checked += 1;
            }
        }
    }
    assert!(loops_checked >= 20, "only {loops_checked} loops generated — density knob broken?");
}

/// Whether sorted multiset `a` is contained in sorted multiset `b`.
fn is_sub_multiset<T: Ord>(a: &[T], b: &[T]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[test]
fn summary_pruning_yields_a_path_subset() {
    // Compare at the CFG-path level, where pruning acts: the
    // summary-aware oracle may only *veto* decision arms, so its path
    // set must be a sub-multiset of the oracle-free enumeration.
    // (Extracted `PathRecord`s are the wrong level — caller records
    // inline callee events whose representative walk shifts when the
    // callee's arms are pruned.)
    let config = PathConfig::default();
    let mut compared = 0usize;
    let mut pruned_somewhere = false;
    for seed in 0..40u64 {
        let g = generate_with(seed, &loopy());
        let ast = &g.ast;
        for func in ast.functions() {
            let cfg = build_cfg(ast, &func);
            let full = enumerate_paths(&cfg, &config);
            let mut oracle = FeasibilityOracle::new(ast);
            let pruned = enumerate_paths_with(&cfg, &config, &mut oracle);
            // `truncated` fires for *every* loop (the further-unrolling
            // family dies at `max_visits`), and that cut is prefix-local
            // and identical in both runs — skipping on it would skip
            // exactly the loops this test exists for. Only a hit path
            // budget would skew the subset comparison.
            if full.paths.len() >= config.max_paths || pruned.paths.len() >= config.max_paths {
                continue;
            }
            let proj = |set: &pallas_cfg::PathSet| -> Vec<String> {
                let mut v: Vec<String> =
                    set.paths.iter().map(|p| format!("{:?} {:?}", p.blocks, p.decisions)).collect();
                v.sort();
                v
            };
            let sub = proj(&pruned);
            let sup = proj(&full);
            assert!(
                is_sub_multiset(&sub, &sup),
                "seed {seed} fn {}: pruned paths not a subset of unpruned\n\
                 --- pruned ---\n{}\n--- unpruned ---\n{}\n--- source ---\n{}",
                func.sig.name,
                sub.join("\n"),
                sup.join("\n"),
                g.source
            );
            pruned_somewhere |= pruned.pruned > 0;
            compared += 1;
        }
    }
    assert!(compared >= 10, "only {compared} functions compared");
    assert!(pruned_somewhere, "oracle never vetoed an arm across all seeds — check vacuous");
}

/// The full metamorphic battery (including the PR 5 prune-subset
/// oracle, which now exercises summary-aware pruning by default) stays
/// clean on loop-heavy generator shapes.
#[test]
fn battery_clean_on_loop_heavy_seeds() {
    for seed in 0..15u64 {
        let g = generate_with(seed, &loopy());
        if let Err(f) = run_oracles(&g.unit, None) {
            panic!(
                "seed {seed}: oracle {} failed: {}\n--- source ---\n{}\n--- spec ---\n{}",
                f.oracle.tag(),
                f.detail,
                g.source,
                g.spec
            );
        }
    }
}
