//! End-to-end arena identity: generated units must render byte-identical
//! NDJSON whichever construction path their symbolic values took.
//!
//! The hash-consing arena and the string interner are process-global
//! and shared across the facade, every engine, the persistent store's
//! decoder, and the daemon's worker threads. These tests drive seeded
//! generator units through several of those consumers at once and
//! assert the observable output is byte-for-byte identical — the
//! fuzz-oracle counterpart to `pallas-sym`'s construction-level
//! differential battery (`tests/hashcons_diff.rs`).

use pallas_core::{render_ndjson, render_ndjson_into, Engine, Pallas};
use pallas_fuzz::{fnv1a, generate, iteration_seed, run_fuzz, FuzzConfig, FNV_OFFSET};
use pallas_sym::{Event, Sym, SymNode};

/// Rebuilds a symbolic value from its node structure through the raw
/// constructors and asserts it lands on the *same* arena node.
fn assert_reinterns_identically(s: Sym) {
    let back = match s.node() {
        SymNode::Input(n) => Sym::input(n.as_str()),
        SymNode::Int(v) => Sym::int(*v),
        SymNode::Str(t) => Sym::str_lit(t.as_str()),
        SymNode::Temp(n) => Sym::temp(*n),
        SymNode::Call { callee, args } => {
            args.iter().for_each(|a| assert_reinterns_identically(*a));
            Sym::call(callee.as_str(), args.clone())
        }
        SymNode::Unary(op, a) => {
            assert_reinterns_identically(*a);
            Sym::unary_raw(*op, *a)
        }
        SymNode::Binary(op, a, b) => {
            assert_reinterns_identically(*a);
            assert_reinterns_identically(*b);
            Sym::binary_raw(*op, *a, *b)
        }
        SymNode::Unknown => Sym::unknown(),
    };
    assert!(
        std::ptr::eq(s.node(), back.node()),
        "`{s}` re-interned to a different arena node"
    );
}

#[test]
fn generated_units_render_byte_identical_across_consumers() {
    // Facade, cold engine, warm engine, and the reused-buffer renderer
    // must all produce the same bytes; every Sym in the analyzed path
    // database must be canonical in the arena.
    let mut digest = FNV_OFFSET;
    let mut buf = String::new();
    for i in 0..48u64 {
        let seed = iteration_seed(42, i);
        let gu = generate(seed);
        let facade = Pallas::new()
            .check_unit(&gu.unit)
            .unwrap_or_else(|e| panic!("seed {seed}: facade failed: {e}"));
        let engine = Engine::new();
        let cold = engine.check_unit(&gu.unit).unwrap();
        let warm = engine.check_unit(&gu.unit).unwrap();

        let base = render_ndjson(&facade);
        assert_eq!(base, render_ndjson(&cold), "seed {seed}: cold engine diverged");
        assert_eq!(base, render_ndjson(&warm), "seed {seed}: warm engine diverged");

        // The reused-buffer renderer is the daemon's hot path; it must
        // append the identical bytes.
        buf.clear();
        render_ndjson_into(&mut buf, &facade);
        assert_eq!(base, buf, "seed {seed}: reused-buffer rendering diverged");

        for f in &facade.db.functions {
            for rec in &f.records {
                for ev in &rec.events {
                    if let Event::State { value, .. } = ev {
                        assert_reinterns_identically(*value);
                    }
                }
                if let Some(v) = rec.output.value {
                    assert_reinterns_identically(v);
                }
            }
        }
        digest = fnv1a(digest, base.as_bytes());
    }
    // Fold-in sanity: 48 clean units must contribute real bytes.
    assert_ne!(digest, FNV_OFFSET, "no NDJSON was digested");
}

#[test]
fn fuzz_digest_is_deterministic_and_clean() {
    // Two complete in-process fuzz runs (generator + full oracle
    // battery, daemon excluded for test-runtime reasons; the CI smoke
    // covers the daemon matrix) must agree bit-for-bit on the digest —
    // the strongest end-to-end statement that hash-consing introduced
    // no cross-unit state leakage: iteration N's NDJSON is unaffected
    // by the arena population left behind by iterations 0..N.
    let cfg = FuzzConfig {
        seed: 42,
        iters: 24,
        daemon: false,
        reduce: false,
        found_dir: None,
        ..FuzzConfig::default()
    };
    let mut sink = |_: &str| {};
    let a = run_fuzz(&cfg, &mut sink);
    let b = run_fuzz(&cfg, &mut sink);
    assert!(
        a.failures.is_empty(),
        "oracle failures: {:?}",
        a.failures.iter().map(|f| &f.signature).collect::<Vec<_>>()
    );
    assert!(b.failures.is_empty());
    assert_eq!(a.digest, b.digest, "digest must be deterministic under a warm arena");
    assert_eq!(a.iters, 24);
}
