//! Replays every artifact in `crates/pallas-fuzz/found/` through the
//! full oracle battery as a regression test.
//!
//! `pallas fuzz --found-dir crates/pallas-fuzz/found` writes each
//! failure as `seed-<seed>-<signature>.c` plus a sibling `.spec` (and
//! a `.txt` note). Committing those files makes the failure a
//! permanent regression: this test scans the directory, rebuilds each
//! unit, and asserts the oracles now pass — so a repro stays red
//! until the underlying bug is fixed, then keeps guarding it forever.
//!
//! A clean tree (no artifacts, as on a healthy branch) passes
//! trivially; the directory only ever contains `README.md` then.

use pallas_core::SourceUnit;
use pallas_fuzz::run_oracles;
use std::path::{Path, PathBuf};

fn found_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("found")
}

/// Every `.c` artifact in `found/`, sorted for stable test order.
fn artifacts() -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(found_dir()) else {
        return Vec::new(); // no directory at all: nothing to replay
    };
    let mut sources: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "c"))
        .collect();
    sources.sort();
    sources
}

fn unit_from_artifact(source: &Path) -> SourceUnit {
    let name = source.file_stem().unwrap().to_string_lossy().into_owned();
    let src = std::fs::read_to_string(source)
        .unwrap_or_else(|e| panic!("cannot read `{}`: {e}", source.display()));
    let spec_path = source.with_extension("spec");
    let spec = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        panic!(
            "artifact `{}` lacks its sibling spec `{}`: {e}",
            source.display(),
            spec_path.display()
        )
    });
    SourceUnit::new(name).with_file("fuzz.c", src).with_spec(spec)
}

#[test]
fn every_found_artifact_passes_the_oracle_battery() {
    let mut failures = Vec::new();
    for source in artifacts() {
        let unit = unit_from_artifact(&source);
        if let Err(f) = run_oracles(&unit, None) {
            failures.push(format!(
                "{}: oracle `{}` still fails: {}",
                source.display(),
                f.oracle.tag(),
                f.detail
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} found-artifact repro(s) still failing:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Guards the pairing convention the replay relies on: a `.c` without
/// its `.spec` would silently replay with the wrong (empty) spec.
#[test]
fn every_artifact_has_its_spec_sibling() {
    for source in artifacts() {
        assert!(
            source.with_extension("spec").exists(),
            "`{}` has no sibling .spec file",
            source.display()
        );
    }
}
