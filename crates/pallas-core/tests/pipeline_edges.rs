//! Pipeline edge cases: lint surfacing, configuration propagation,
//! merge-map behaviour, and error paths.

use pallas_cfg::PathConfig;
use pallas_core::{render_tsv, render_unit_report, Pallas, SourceUnit};
use pallas_spec::LintSeverity;
use pallas_sym::ExtractConfig;

#[test]
fn lint_findings_surface_in_the_report() {
    let report = Pallas::new()
        .check_source(
            "linty",
            "int f(int a) { if (a) return 1; return 0; }",
            "fastpath f; order ghost before phantom; match_slow_return;",
        )
        .unwrap();
    assert!(report.lint.len() >= 3, "{:#?}", report.lint);
    assert!(report.lint.iter().any(|i| i.severity == LintSeverity::Warning));
    let text = render_unit_report(&report);
    assert!(text.contains("spec warning"), "{text}");
}

#[test]
fn clean_spec_produces_no_lints() {
    let report = Pallas::new()
        .check_source("ok", "int f(void) { return 0; }", "fastpath f;")
        .unwrap();
    assert!(report.lint.is_empty());
}

#[test]
fn extract_config_propagates_to_path_limits() {
    let src = "\
int f(int a, int b, int c) {
  int r = 0;
  if (a) r += 1;
  if (b) r += 2;
  if (c) r += 4;
  return r;
}";
    let tight = Pallas::new().with_config(ExtractConfig {
        paths: PathConfig { max_paths: 2, ..PathConfig::default() },
        inline_depth: 1,
        ..ExtractConfig::default()
    });
    let report = tight.check_source("limited", src, "fastpath f;").unwrap();
    let f = report.db.function("f").unwrap();
    assert_eq!(f.records.len(), 2);
    assert!(f.truncated);
    assert_eq!(tight.config().paths.max_paths, 2);
}

#[test]
fn tsv_resolves_lines_through_merge_map() {
    let unit = SourceUnit::new("multi")
        .with_file("a.h", "typedef unsigned int gfp_t;\nint g(gfp_t m);\n")
        .with_file("b.c", "int fast(gfp_t gfp_mask) {\n  gfp_mask = g(gfp_mask);\n  return 0;\n}\n")
        .with_spec("fastpath fast; immutable gfp_mask;");
    let report = Pallas::new().check_unit(&unit).unwrap();
    let tsv = render_tsv(&report);
    assert!(tsv.contains("b.c\t2\t"), "{tsv}");
}

#[test]
fn unit_with_only_pragma_spec_checks() {
    let src = "\
/* @pallas fastpath fast; */
/* @pallas fault ENOSPC; */
int fast(int x) { return x; }";
    let report = Pallas::new().check_source("pragmas", src, "").unwrap();
    assert_eq!(report.warnings.len(), 1);
    assert_eq!(report.spec.faults, vec!["ENOSPC"]);
}

#[test]
fn empty_source_is_a_valid_empty_unit() {
    let report = Pallas::new().check_source("empty", "", "").unwrap();
    assert!(report.warnings.is_empty());
    assert_eq!(report.db.functions.len(), 0);
    assert!(render_unit_report(&report).contains("no warnings."));
}

#[test]
fn check_many_propagates_errors_per_unit() {
    let units = vec![
        SourceUnit::new("good")
            .with_file("g.c", "int f(void) { return 0; }")
            .with_spec("fastpath f;"),
        SourceUnit::new("bad-parse").with_file("b.c", "int f( {").with_spec(""),
        SourceUnit::new("bad-spec")
            .with_file("s.c", "int f(void) { return 0; }")
            .with_spec("nonsense keyword;"),
    ];
    let results = Pallas::new().check_many(&units);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_err());
    assert_eq!(results[1].as_ref().unwrap_err().unit, "bad-parse");
    assert_eq!(results[2].as_ref().unwrap_err().unit, "bad-spec");
}

#[test]
fn elapsed_and_merged_source_exposed() {
    let report = Pallas::new()
        .check_source("t", "int f(void) { return 0; }", "fastpath f;")
        .unwrap();
    assert!(report.merged_src.contains("int f(void)"));
    assert!(report.elapsed.as_nanos() > 0);
}
