//! The engine's disk layer: typed records over [`pallas_store::Store`].
//!
//! Two content-addressed record families carry the analysis results,
//! and two name-index families exist only to tell *stale* (same name,
//! changed content) apart from *miss* (never seen) in the counters:
//!
//! | kind | key | value |
//! |---|---|---|
//! | 1 unit | FNV(tag, format, unit fingerprint) | function keys (source order) + warnings ([`codec::encode_unit_record`]) |
//! | 2 function | FNV(tag, format, extract config, closure content) | one [`FunctionPaths`] ([`codec::encode_function_paths`]) |
//! | 3 unit name | FNV(tag, unit name) | last unit fingerprint (8 bytes) |
//! | 4 function name | FNV(tag, unit name, function name) | last function key (8 bytes) |
//!
//! The *unit key* extends the frontend cache fingerprint (name, files,
//! spec, extract config, rule selection) with
//! [`STORE_FORMAT_VERSION`], so any knob change — and any payload
//! schema change — invalidates cleanly by simply never matching old
//! records.
//!
//! The *function key* hashes everything one function's extraction can
//! observe: the extract config, and for every member of the function's
//! callee closure (itself, plus same-unit callees transitively up to
//! `inline_depth` — summary inlining splices callee events, with the
//! callee's own line numbers, into the caller's paths) the member's
//! name, start line, and exact span text. Callees are discovered by an
//! identifier-token scan of the span text against the unit's defined
//! function names — a sound over-approximation of the call graph (a
//! name mentioned without being called only causes an unnecessary
//! recompute, never a wrong reuse).
//!
//! Every accessor here degrades to "miss" on I/O or decode problems;
//! the store can slow the engine down, never wedge it or change its
//! answers.

use super::codec;
use super::fingerprint::Fnv1a;
use pallas_checkers::Warning;
use pallas_lang::{Ast, LineMap};
use pallas_store::{OpenReport, Store};
use pallas_sym::{ExtractConfig, FunctionPaths};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::path::Path;

/// Version of the persisted payload schema (the [`codec`] encodings
/// and the key derivations in this module). Folded into every content
/// key, so records written by a different schema are unreachable —
/// they age out as dead records at the next `gc` instead of being
/// misread.
pub const STORE_FORMAT_VERSION: u32 = 1;

pub(crate) const KIND_UNIT: u8 = 1;
pub(crate) const KIND_FUNCTION: u8 = 2;
pub(crate) const KIND_UNIT_NAME: u8 = 3;
pub(crate) const KIND_FUNC_NAME: u8 = 4;

/// The store key for a unit outcome record.
pub(crate) fn unit_key(fingerprint: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_field(b"pallas-unit");
    h.write_u64(u64::from(STORE_FORMAT_VERSION));
    h.write_u64(fingerprint);
    h.finish()
}

fn unit_name_key(unit_name: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_field(b"pallas-unit-name");
    h.write_field(unit_name.as_bytes());
    h.finish()
}

fn func_name_key(unit_name: &str, function: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_field(b"pallas-func-name");
    h.write_field(unit_name.as_bytes());
    h.write_field(function.as_bytes());
    h.finish()
}

/// Yields the identifier tokens of `text` (ASCII `[A-Za-z_][A-Za-z0-9_]*`
/// runs — the same lexical shape the parser gives names).
fn identifiers(text: &str) -> impl Iterator<Item = &str> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    std::iter::from_fn(move || {
        while at < bytes.len() {
            let b = bytes[at];
            if b == b'_' || b.is_ascii_alphabetic() {
                let start = at;
                while at < bytes.len()
                    && (bytes[at] == b'_' || bytes[at].is_ascii_alphanumeric())
                {
                    at += 1;
                }
                return Some(&text[start..at]);
            }
            // Skip past any non-ident run (digits glue to the run they
            // terminate so `0x1f` never starts an identifier).
            if b.is_ascii_digit() {
                at += 1;
                while at < bytes.len()
                    && (bytes[at] == b'_' || bytes[at].is_ascii_alphanumeric())
                {
                    at += 1;
                }
            } else {
                at += 1;
            }
        }
        None
    })
}

/// Computes the content key of every function defined in the unit, in
/// [`Ast::functions`] (source) order. See the module docs for what the
/// key covers.
pub(crate) fn function_content_keys(
    ast: &Ast,
    src: &str,
    config: &ExtractConfig,
) -> Vec<(String, u64)> {
    let lm = LineMap::new(src);
    let mut order: Vec<&str> = Vec::new();
    let mut facts: HashMap<&str, (u32, &str)> = HashMap::new();
    for func in ast.functions() {
        let name = func.sig.name.as_str();
        let text = &src[func.span.start as usize..func.span.end as usize];
        order.push(name);
        facts.insert(name, (lm.line(func.span.start), text));
    }
    // Direct callee over-approximation: defined names mentioned in the
    // span text.
    let callees: HashMap<&str, Vec<&str>> = order
        .iter()
        .map(|&name| {
            let mut out: Vec<&str> = identifiers(facts[name].1)
                .filter(|id| *id != name && facts.contains_key(id))
                .collect();
            out.sort_unstable();
            out.dedup();
            (name, out)
        })
        .collect();

    order
        .iter()
        .map(|&name| {
            // Closure: the function itself plus callees reachable in at
            // most `inline_depth` hops (summary inlining recurses with
            // one less level per hop).
            let mut members: BTreeSet<&str> = BTreeSet::new();
            let mut frontier = vec![name];
            members.insert(name);
            for _ in 0..config.inline_depth {
                let mut next = Vec::new();
                for f in frontier.drain(..) {
                    for &callee in &callees[f] {
                        if members.insert(callee) {
                            next.push(callee);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
            let mut h = Fnv1a::new();
            h.write_field(b"pallas-func");
            h.write_u64(u64::from(STORE_FORMAT_VERSION));
            h.write(&config.cache_key_bytes());
            h.write_field(name.as_bytes());
            for member in members {
                let (line, text) = facts[member];
                h.write_field(member.as_bytes());
                h.write_u64(u64::from(line));
                h.write_field(text.as_bytes());
            }
            (name.to_string(), h.finish())
        })
        .collect()
}

/// Typed view over the record store. All methods swallow I/O and
/// decode failures into misses / no-ops.
#[derive(Debug)]
pub(crate) struct StoreLayer {
    store: Store,
}

impl StoreLayer {
    pub(crate) fn open(path: &Path) -> io::Result<(StoreLayer, OpenReport)> {
        let (store, report) = Store::open(path)?;
        Ok((StoreLayer { store }, report))
    }

    /// Fetches a unit outcome: the function keys (source order) plus
    /// warnings.
    pub(crate) fn get_unit(&self, key: u64) -> Option<(Vec<u64>, Vec<Warning>)> {
        let bytes = self.store.get(KIND_UNIT, key).ok()??;
        codec::decode_unit_record(&bytes).ok()
    }

    /// Fetches one function record, verifying it describes `expect` (a
    /// 64-bit key collision must surface as a miss, not a wrong reuse).
    pub(crate) fn get_function(&self, key: u64, expect: &str) -> Option<FunctionPaths> {
        let fp = self.get_function_record(key)?;
        if fp.name != expect {
            return None;
        }
        Some(fp)
    }

    /// Fetches one function record by key alone — used when rebuilding
    /// a unit from its outcome record, whose key list is trusted the
    /// same way the fingerprint itself is.
    pub(crate) fn get_function_record(&self, key: u64) -> Option<FunctionPaths> {
        let bytes = self.store.get(KIND_FUNCTION, key).ok()??;
        codec::decode_function_paths(&bytes).ok()
    }

    /// Persists one function record plus its name-index entry.
    pub(crate) fn put_function(&mut self, key: u64, fp: &FunctionPaths, unit_name: &str) {
        let _ = self.store.put(KIND_FUNCTION, key, &codec::encode_function_paths(fp));
        let _ =
            self.store.put(KIND_FUNC_NAME, func_name_key(unit_name, &fp.name), &key.to_le_bytes());
    }

    /// Persists a unit outcome plus its name-index entry.
    pub(crate) fn put_unit(
        &mut self,
        key: u64,
        unit_name: &str,
        fingerprint: u64,
        function_keys: &[u64],
        warnings: &[Warning],
    ) {
        let _ = self.store.put(KIND_UNIT, key, &codec::encode_unit_record(function_keys, warnings));
        let _ = self.store.put(
            KIND_UNIT_NAME,
            unit_name_key(unit_name),
            &fingerprint.to_le_bytes(),
        );
    }

    /// The fingerprint last persisted under this unit name, if any —
    /// distinguishes *stale* from *never seen*.
    pub(crate) fn last_unit_fingerprint(&self, unit_name: &str) -> Option<u64> {
        let bytes = self.store.get(KIND_UNIT_NAME, unit_name_key(unit_name)).ok()??;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    /// The function content key last persisted under `(unit, function)`.
    pub(crate) fn last_function_key(&self, unit_name: &str, function: &str) -> Option<u64> {
        let bytes =
            self.store.get(KIND_FUNC_NAME, func_name_key(unit_name, function)).ok()??;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    pub(crate) fn flush(&self) -> io::Result<()> {
        self.store.flush()
    }

    pub(crate) fn units_resident(&self) -> u64 {
        *self.store.live_by_kind().get(&KIND_UNIT).unwrap_or(&0)
    }

    pub(crate) fn functions_resident(&self) -> u64 {
        *self.store.live_by_kind().get(&KIND_FUNCTION).unwrap_or(&0)
    }

    pub(crate) fn file_bytes(&self) -> u64 {
        self.store.file_bytes()
    }

    pub(crate) fn compactions(&self) -> u64 {
        self.store.compactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_lang::parse;

    const SRC: &str = "\
int helper(int x) { return x + 1; }
int lone(int x) { return x * 2; }
int caller(int x) { return helper(x); }
";

    fn keys_of(src: &str, config: &ExtractConfig) -> HashMap<String, u64> {
        let ast = parse(src).unwrap();
        function_content_keys(&ast, src, config).into_iter().collect()
    }

    #[test]
    fn identifier_scan_finds_names_not_numbers() {
        let ids: Vec<&str> = identifiers("int f(int a1) { return g(a1) + 0x1f - _x; }")
            .collect();
        assert!(ids.contains(&"f"));
        assert!(ids.contains(&"g"));
        assert!(ids.contains(&"a1"));
        assert!(ids.contains(&"_x"));
        assert!(!ids.iter().any(|s| s.contains("1f")), "{ids:?}");
    }

    #[test]
    fn keys_are_deterministic() {
        let config = ExtractConfig::default();
        assert_eq!(keys_of(SRC, &config), keys_of(SRC, &config));
    }

    #[test]
    fn editing_a_leaf_function_changes_only_its_own_key_and_its_callers() {
        let config = ExtractConfig::default(); // inline_depth = 1
        let base = keys_of(SRC, &config);
        let edited = SRC.replace("x + 1", "x + 2");
        let after = keys_of(&edited, &config);
        assert_ne!(base["helper"], after["helper"], "edited function recomputes");
        assert_ne!(base["caller"], after["caller"], "caller inlines helper's summary");
        assert_eq!(base["lone"], after["lone"], "unrelated function is reusable");
    }

    #[test]
    fn editing_an_uncalled_function_leaves_the_rest_alone() {
        let config = ExtractConfig::default();
        let base = keys_of(SRC, &config);
        let edited = SRC.replace("x * 2", "x * 3");
        let after = keys_of(&edited, &config);
        assert_ne!(base["lone"], after["lone"]);
        assert_eq!(base["helper"], after["helper"]);
        assert_eq!(base["caller"], after["caller"]);
    }

    #[test]
    fn moving_a_function_changes_its_key() {
        // Event line numbers are absolute, so a function shifted one
        // line down must re-extract even with identical text.
        let config = ExtractConfig::default();
        let base = keys_of(SRC, &config);
        let shifted = format!("\n{SRC}");
        let after = keys_of(&shifted, &config);
        assert_ne!(base["lone"], after["lone"]);
    }

    #[test]
    fn zero_inline_depth_ignores_callees() {
        let config = ExtractConfig { inline_depth: 0, ..ExtractConfig::default() };
        let base = keys_of(SRC, &config);
        let edited = SRC.replace("x + 1", "x + 2");
        let after = keys_of(&edited, &config);
        assert_eq!(base["caller"], after["caller"], "no inlining, no dependency");
        assert_ne!(base["helper"], after["helper"]);
    }

    #[test]
    fn config_participates_in_function_keys() {
        let deep = ExtractConfig { inline_depth: 2, ..ExtractConfig::default() };
        let base = keys_of(SRC, &ExtractConfig::default());
        let after = keys_of(SRC, &deep);
        assert_ne!(base["caller"], after["caller"]);
    }

    #[test]
    fn transitive_closure_follows_inline_depth() {
        let src = "\
int a(int x) { return x + 1; }
int b(int x) { return a(x); }
int c(int x) { return b(x); }
";
        let deep = ExtractConfig { inline_depth: 2, ..ExtractConfig::default() };
        let base = keys_of(src, &deep);
        let edited = src.replace("x + 1", "x + 9");
        let after = keys_of(&edited, &deep);
        assert_ne!(base["c"], after["c"], "a is two hops away and inlined at depth 2");
        let shallow = ExtractConfig { inline_depth: 1, ..ExtractConfig::default() };
        let base = keys_of(src, &shallow);
        let after = keys_of(&edited, &shallow);
        assert_eq!(base["c"], after["c"], "a is out of reach at depth 1");
    }
}
