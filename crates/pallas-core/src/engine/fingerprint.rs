//! Content-addressed fingerprints for frontend artifacts.
//!
//! The staged engine memoizes everything up to extraction under a
//! 64-bit FNV-1a fingerprint of the inputs that determine those
//! artifacts: the unit name (it is embedded in the path database and
//! in warnings), every file name and body, the spec document, and the
//! extraction configuration. Fields are length-prefixed so
//! concatenation boundaries cannot collide (`"ab" + "c"` hashes
//! differently from `"a" + "bc"`).

use crate::unit::SourceUnit;
use pallas_sym::ExtractConfig;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { state: Self::OFFSET_BASIS }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a variable-length field, length-prefixed.
    pub fn write_field(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// The frontend cache key for one unit under one configuration, with
/// every registered rule enabled.
pub fn fingerprint_unit(unit: &SourceUnit, config: &ExtractConfig) -> u64 {
    fingerprint_unit_with_rules(unit, config, &pallas_checkers::RuleSet::all())
}

/// The frontend cache key for one unit under one configuration and
/// rule selection. The rule set's canonical key participates so a
/// scoped run (`--only-rule` / `--disable-rule`) can never share
/// cached artifacts with a differently-scoped one.
pub fn fingerprint_unit_with_rules(
    unit: &SourceUnit,
    config: &ExtractConfig,
    rules: &pallas_checkers::RuleSet,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_field(unit.name.as_bytes());
    h.write_u64(unit.files.len() as u64);
    for (name, contents) in &unit.files {
        h.write_field(name.as_bytes());
        h.write_field(contents.as_bytes());
    }
    h.write_field(unit.spec_text.as_bytes());
    h.write(&config.cache_key_bytes());
    h.write_field(rules.cache_key().as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_cfg::PathConfig;

    fn unit() -> SourceUnit {
        SourceUnit::new("mm/demo")
            .with_file("d.h", "int g(int);\n")
            .with_file("d.c", "int f(int x) { return g(x); }\n")
            .with_spec("fastpath f;")
    }

    #[test]
    fn known_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn identical_inputs_agree() {
        let config = ExtractConfig::default();
        assert_eq!(fingerprint_unit(&unit(), &config), fingerprint_unit(&unit(), &config));
    }

    #[test]
    fn every_input_component_changes_the_key() {
        let config = ExtractConfig::default();
        let base = fingerprint_unit(&unit(), &config);
        let mut renamed = unit();
        renamed.name = "mm/other".into();
        assert_ne!(fingerprint_unit(&renamed, &config), base);
        let mut edited = unit();
        edited.files[1].1.push_str("int h(void) { return 0; }\n");
        assert_ne!(fingerprint_unit(&edited, &config), base);
        let mut respecced = unit();
        respecced.spec_text = "fastpath f; immutable x;".into();
        assert_ne!(fingerprint_unit(&respecced, &config), base);
        let tight = ExtractConfig {
            paths: PathConfig { max_paths: 7, ..PathConfig::default() },
            ..ExtractConfig::default()
        };
        assert_ne!(fingerprint_unit(&unit(), &tight), base);
        let shallow = ExtractConfig { inline_depth: 0, ..ExtractConfig::default() };
        assert_ne!(fingerprint_unit(&unit(), &shallow), base);
        let unpruned = ExtractConfig { prune_infeasible: false, ..ExtractConfig::default() };
        assert_ne!(fingerprint_unit(&unit(), &unpruned), base);
        let scoped = pallas_checkers::RuleSet::all()
            .without(pallas_checkers::Rule::FaultMissing);
        assert_ne!(fingerprint_unit_with_rules(&unit(), &config, &scoped), base);
    }

    #[test]
    fn all_rules_selection_matches_the_default_key() {
        let config = ExtractConfig::default();
        assert_eq!(
            fingerprint_unit(&unit(), &config),
            fingerprint_unit_with_rules(&unit(), &config, &pallas_checkers::RuleSet::all())
        );
    }

    #[test]
    fn length_prefixing_separates_field_boundaries() {
        let a = SourceUnit::new("u").with_file("x", "ab").with_file("y", "c");
        let b = SourceUnit::new("u").with_file("x", "a").with_file("y", "bc");
        let config = ExtractConfig::default();
        assert_ne!(fingerprint_unit(&a, &config), fingerprint_unit(&b, &config));
    }
}
