//! The staged analysis engine.
//!
//! [`Engine`] runs the pipeline as five explicit stages —
//! **Merge → Parse → Spec → Extract → Check** — each producing a typed
//! artifact plus a [`StageTiming`]. The first four stages (the
//! *frontend*) are memoized in a content-addressed cache keyed by an
//! FNV-1a fingerprint over the unit's name, files, spec text, and
//! extraction configuration ([`fingerprint`]), so re-checking the same
//! unit — as the `repro` harness does when Tables 1, 7, and 8 all
//! evaluate the same corpus — merges, parses, and extracts it exactly
//! once. The Check stage always runs (it is cheap relative to
//! extraction and its warnings are what callers came for).
//!
//! Batches go through a work-stealing scheduler ([`schedule`]) that
//! keeps skewed workloads balanced, and every unit is panic-isolated:
//! an internal panic while checking one unit becomes
//! [`PallasErrorKind::Internal`](crate::PallasErrorKind) for that unit
//! instead of tearing down the batch.
//!
//! [`Pallas`](crate::Pallas) remains the stateless one-shot facade; it
//! delegates to a fresh `Engine` per call. Hold an `Engine` (or clone
//! its handle — clones share the cache) whenever the same units may be
//! checked more than once.
//!
//! ```
//! use pallas_core::{Engine, SourceUnit};
//!
//! # fn main() -> Result<(), pallas_core::PallasError> {
//! let engine = Engine::new();
//! let unit = SourceUnit::new("demo")
//!     .with_file("demo.c", "int f(void) { return 0; }")
//!     .with_spec("fastpath f;");
//! engine.check_unit(&unit)?;
//! let again = engine.check_unit(&unit)?; // frontend served from cache
//! assert!(again.stage_timings.iter().any(|t| t.cached));
//! assert_eq!(engine.stats().parses, 1);
//! # Ok(())
//! # }
//! ```

pub mod cache;
mod codec;
pub mod fingerprint;
pub mod schedule;
mod store_layer;

pub use store_layer::STORE_FORMAT_VERSION;

use crate::pipeline::{AnalyzedUnit, PallasError, PallasErrorKind};
use crate::unit::{MergeMap, SourceUnit};
use cache::BoundedCache;
use pallas_checkers::{run_rules_timed, CheckContext, RuleSet, Warning};
use pallas_lang::{parse, Ast};
use pallas_spec::{parse_pragma, parse_spec, FastPathSpec};
use pallas_sym::{ExtractConfig, FunctionExtractor, PathDb};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use store_layer::StoreLayer;

/// The five pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Concatenate the unit's files into one buffer.
    Merge,
    /// Parse the merged buffer into an AST.
    Parse,
    /// Parse the spec document and fold in inline pragmas.
    Spec,
    /// Extract the symbolic path database.
    Extract,
    /// Run the checker families over the artifacts.
    Check,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 5] =
        [Stage::Merge, Stage::Parse, Stage::Spec, Stage::Extract, Stage::Check];

    /// Lower-case stage name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Merge => "merge",
            Stage::Parse => "parse",
            Stage::Spec => "spec",
            Stage::Extract => "extract",
            Stage::Check => "check",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock record of one stage over one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: Stage,
    /// Time spent (zero when served from cache).
    pub elapsed: Duration,
    /// Whether the artifact came from the frontend cache.
    pub cached: bool,
}

/// Engine-level configuration: the extraction limits, the enabled
/// rule set, and the frontend cache bound. The extraction config and
/// the rule set participate in every cache key; the cache bound only
/// controls memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Extraction limits (part of the frontend cache key).
    pub extract: ExtractConfig,
    /// The registry rules the Check stage runs (part of the frontend
    /// cache key, so selections never share cached artifacts with
    /// differently-scoped runs). Defaults to every registered rule.
    pub rules: RuleSet,
    /// Maximum cached frontends; `0` disables the cache. Long-lived
    /// holders (the `pallas-service` daemon) must keep this bounded
    /// or distinct units grow the process without limit.
    pub cache_capacity: usize,
    /// Path of the persistent analysis store, layered *under* the
    /// in-memory cache: memory hit → disk hit → compute-and-persist.
    /// `None` (the default) disables persistence. The store is keyed
    /// by the same content fingerprints as the memory cache (extended
    /// with [`STORE_FORMAT_VERSION`] and per-function content hashes),
    /// so persisted results are exactly the ones a fresh computation
    /// would produce; a store that fails to open or turns out corrupt
    /// degrades to recomputation with a warning on stderr, never an
    /// error or a wrong answer.
    pub store_path: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            extract: ExtractConfig::default(),
            rules: RuleSet::all(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            store_path: None,
        }
    }
}

/// Default frontend cache bound. Sized for corpus-scale batches: the
/// full evaluation corpus is ~100 units, so one order of magnitude
/// above that keeps every workload in this repo hit-for-hit identical
/// to the old unbounded cache while capping daemon memory.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Snapshot of an engine's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Units checked (cache hits included).
    pub units_checked: u64,
    /// Frontend cache hits.
    pub cache_hits: u64,
    /// Frontend cache misses (frontends built).
    pub cache_misses: u64,
    /// Frontends evicted by the cache bound.
    pub cache_evictions: u64,
    /// Frontends currently resident in the cache.
    pub cached_frontends: u64,
    /// The cache bound (`0` = caching disabled).
    pub cache_capacity: u64,
    /// Merge stage invocations.
    pub merges: u64,
    /// Parse stage invocations.
    pub parses: u64,
    /// Spec stage invocations.
    pub spec_parses: u64,
    /// Extract stage invocations.
    pub extracts: u64,
    /// Check stage invocations.
    pub checks: u64,
    /// Paths extracted across all Extract stage invocations (cache
    /// hits excluded — they re-serve previously extracted paths).
    pub paths_enumerated: u64,
    /// Decision arms the feasibility oracle pruned as contradictory
    /// across all Extract stage invocations.
    pub paths_pruned: u64,
    /// Natural loops given effect summaries across all Extract stage
    /// invocations (0 with `loop_summaries` disabled).
    pub loops_summarized: u64,
    /// Environment bindings havocked at loop exits across all
    /// extracted paths (0 with `loop_summaries` disabled).
    pub vars_havocked: u64,
    /// Cumulative nanoseconds per stage, in [`Stage::ALL`] order.
    pub stage_nanos: [u64; 5],
    /// Cumulative warnings emitted per registry rule, in
    /// [`pallas_checkers::Rule::ALL`] order (post-dedup counts).
    pub rule_warnings: [u64; pallas_checkers::Rule::ALL.len()],
    /// Whether a persistent store is configured
    /// ([`EngineConfig::store_path`]). All `store_*` counters stay 0
    /// when it is not.
    pub store_enabled: bool,
    /// Unit outcomes served from the persistent store (memory-cache
    /// misses answered from disk with zero Extract/Check work).
    pub store_unit_hits: u64,
    /// Memory-cache misses the store had never seen (unknown unit
    /// name).
    pub store_unit_misses: u64,
    /// Memory-cache misses where the store knew the unit name but its
    /// content fingerprint had changed — the incremental-recheck case.
    pub store_unit_stale: u64,
    /// Functions reused from per-function store records during Extract
    /// (only changed functions re-extract on a stale unit).
    pub store_func_hits: u64,
    /// Functions extracted because the store had never seen them.
    pub store_func_misses: u64,
    /// Functions re-extracted because their content hash changed.
    pub store_func_stale: u64,
    /// Unit records currently live in the store.
    pub store_units_resident: u64,
    /// Function records currently live in the store.
    pub store_functions_resident: u64,
    /// Store log size in bytes.
    pub store_file_bytes: u64,
    /// Store compactions performed by this process.
    pub store_compactions: u64,
}

impl EngineStats {
    /// Cumulative warnings emitted for one rule.
    pub fn warnings_for(&self, rule: pallas_checkers::Rule) -> u64 {
        let idx = pallas_checkers::Rule::ALL
            .iter()
            .position(|&r| r == rule)
            .expect("every rule is in Rule::ALL");
        self.rule_warnings[idx]
    }

    /// Invocation count for one stage.
    pub fn stage_runs(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Merge => self.merges,
            Stage::Parse => self.parses,
            Stage::Spec => self.spec_parses,
            Stage::Extract => self.extracts,
            Stage::Check => self.checks,
        }
    }

    /// Cumulative time spent in one stage.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.stage_nanos[stage.index()])
    }

    /// Frontend (merge + parse + spec + extract) invocation total —
    /// the quantity a warm cache drives down.
    pub fn frontend_runs(&self) -> u64 {
        self.merges + self.parses + self.spec_parses + self.extracts
    }
}

/// Frontend artifacts shared between repeated checks of one unit.
#[derive(Debug)]
struct Frontend {
    merged_src: String,
    merge_map: MergeMap,
    // Arc so a warm check shares the parsed AST and extracted path
    // database with every AnalyzedUnit it hands out instead of
    // deep-cloning both per hit.
    ast: Arc<Ast>,
    spec: FastPathSpec,
    db: Arc<PathDb>,
}

#[derive(Debug, Default)]
struct Counters {
    units_checked: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    merges: AtomicU64,
    parses: AtomicU64,
    spec_parses: AtomicU64,
    extracts: AtomicU64,
    checks: AtomicU64,
    paths_enumerated: AtomicU64,
    paths_pruned: AtomicU64,
    loops_summarized: AtomicU64,
    vars_havocked: AtomicU64,
    store_unit_hits: AtomicU64,
    store_unit_misses: AtomicU64,
    store_unit_stale: AtomicU64,
    store_func_hits: AtomicU64,
    store_func_misses: AtomicU64,
    store_func_stale: AtomicU64,
    stage_nanos: [AtomicU64; 5],
    rule_warnings: [AtomicU64; pallas_checkers::Rule::ALL.len()],
}

#[derive(Debug)]
struct EngineInner {
    config: EngineConfig,
    cache: Mutex<BoundedCache<u64, Arc<Frontend>>>,
    store: Option<Mutex<StoreLayer>>,
    counters: Counters,
}

/// The staged, caching analysis engine. Cloning is cheap and clones
/// share one cache and one set of counters.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default extraction configuration.
    pub fn new() -> Self {
        Engine::with_config(ExtractConfig::default())
    }

    /// An engine with an explicit extraction configuration (and the
    /// default cache bound). The configuration is part of every cache
    /// key, so engines never serve artifacts extracted under
    /// different limits.
    pub fn with_config(config: ExtractConfig) -> Self {
        Engine::with_engine_config(EngineConfig { extract: config, ..EngineConfig::default() })
    }

    /// An engine with full engine-level configuration, including the
    /// frontend cache bound and the optional persistent store. A store
    /// that cannot be opened (or had to be salvaged) is reported on
    /// stderr and the engine degrades to recomputation — construction
    /// never fails over persistence.
    pub fn with_engine_config(config: EngineConfig) -> Self {
        let store = config.store_path.as_ref().and_then(|path| {
            match StoreLayer::open(path) {
                Ok((layer, report)) => {
                    if let Some(recovery) = &report.recovery {
                        eprintln!(
                            "pallas: warning: analysis store {}: {} — dropped {} byte(s){}; \
                             affected results will be recomputed",
                            path.display(),
                            recovery.reason,
                            recovery.dropped_bytes,
                            if recovery.reset { " (store reset)" } else { "" },
                        );
                    }
                    Some(Mutex::new(layer))
                }
                Err(err) => {
                    eprintln!(
                        "pallas: warning: cannot open analysis store {}: {err}; \
                         continuing without persistence",
                        path.display(),
                    );
                    None
                }
            }
        });
        Engine {
            inner: Arc::new(EngineInner {
                cache: Mutex::new(BoundedCache::new(config.cache_capacity)),
                store,
                config,
                counters: Counters::default(),
            }),
        }
    }

    /// An engine running only the given rules (default extraction
    /// configuration and cache bound).
    pub fn with_rules(rules: RuleSet) -> Self {
        Engine::with_engine_config(EngineConfig { rules, ..EngineConfig::default() })
    }

    /// The engine's extraction configuration.
    pub fn config(&self) -> &ExtractConfig {
        &self.inner.config.extract
    }

    /// The rules this engine's Check stage runs.
    pub fn rules(&self) -> &RuleSet {
        &self.inner.config.rules
    }

    /// The engine-level configuration (extraction + cache bound).
    pub fn engine_config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let (evictions, resident) = {
            let cache = self.inner.cache.lock().expect("engine cache");
            (cache.evictions(), cache.len() as u64)
        };
        let (store_units, store_functions, store_bytes, store_compactions) =
            match self.inner.store.as_ref().and_then(|s| s.lock().ok()) {
                Some(store) => (
                    store.units_resident(),
                    store.functions_resident(),
                    store.file_bytes(),
                    store.compactions(),
                ),
                None => (0, 0, 0, 0),
            };
        EngineStats {
            units_checked: load(&c.units_checked),
            cache_hits: load(&c.cache_hits),
            cache_misses: load(&c.cache_misses),
            cache_evictions: evictions,
            cached_frontends: resident,
            cache_capacity: self.inner.config.cache_capacity as u64,
            merges: load(&c.merges),
            parses: load(&c.parses),
            spec_parses: load(&c.spec_parses),
            extracts: load(&c.extracts),
            checks: load(&c.checks),
            paths_enumerated: load(&c.paths_enumerated),
            paths_pruned: load(&c.paths_pruned),
            loops_summarized: load(&c.loops_summarized),
            vars_havocked: load(&c.vars_havocked),
            stage_nanos: [
                load(&c.stage_nanos[0]),
                load(&c.stage_nanos[1]),
                load(&c.stage_nanos[2]),
                load(&c.stage_nanos[3]),
                load(&c.stage_nanos[4]),
            ],
            rule_warnings: std::array::from_fn(|i| load(&c.rule_warnings[i])),
            store_enabled: self.inner.store.is_some(),
            store_unit_hits: load(&c.store_unit_hits),
            store_unit_misses: load(&c.store_unit_misses),
            store_unit_stale: load(&c.store_unit_stale),
            store_func_hits: load(&c.store_func_hits),
            store_func_misses: load(&c.store_func_misses),
            store_func_stale: load(&c.store_func_stale),
            store_units_resident: store_units,
            store_functions_resident: store_functions,
            store_file_bytes: store_bytes,
            store_compactions,
        }
    }

    /// Fsyncs the persistent store, if one is configured. Called on
    /// graceful shutdown (daemon drain, end of a CLI run); appends are
    /// already written through, this makes them crash-durable.
    pub fn flush_store(&self) -> std::io::Result<()> {
        if let Some(store) = &self.inner.store {
            let guard = store
                .lock()
                .map_err(|_| std::io::Error::other("store poisoned"))?;
            if pallas_trace::enabled() {
                pallas_trace::instant(pallas_trace::Layer::Store, "store-flush", vec![]);
            }
            guard.flush()?;
        }
        Ok(())
    }

    /// Number of frontends currently cached.
    pub fn cached_frontends(&self) -> usize {
        self.inner.cache.lock().expect("engine cache").len()
    }

    /// Drops every cached frontend (counters are kept).
    pub fn clear_cache(&self) {
        self.inner.cache.lock().expect("engine cache").clear();
    }

    /// Runs the staged pipeline on one unit, reusing cached frontend
    /// artifacts when this engine has checked an identical unit
    /// (same name, files, spec, and configuration) before.
    ///
    /// # Errors
    ///
    /// Returns [`PallasError`] if the merged source or the spec fails
    /// to parse. Errors are never cached: a failing unit is re-tried
    /// from scratch on every call.
    pub fn check_unit(&self, unit: &SourceUnit) -> Result<AnalyzedUnit, PallasError> {
        self.check_unit_with_rules(unit, &self.inner.config.rules)
    }

    /// Like [`Engine::check_unit`], but runs the given rule set
    /// instead of the engine's configured one. The selection
    /// participates in the frontend cache key, so scoped and default
    /// requests share one cache without ever sharing artifacts across
    /// selections — this is how the daemon honors per-request
    /// `--only-rule` / `--disable-rule` without a second engine.
    pub fn check_unit_with_rules(
        &self,
        unit: &SourceUnit,
        rules: &RuleSet,
    ) -> Result<AnalyzedUnit, PallasError> {
        let started = Instant::now();
        let mut unit_span = pallas_trace::span(pallas_trace::Layer::Unit, &unit.name);
        let counters = &self.inner.counters;
        let mut timings = Vec::with_capacity(Stage::ALL.len());
        let key =
            fingerprint::fingerprint_unit_with_rules(unit, &self.inner.config.extract, rules);
        let cached = self.inner.cache.lock().expect("engine cache").get(&key);
        let hit = cached.is_some();
        if pallas_trace::enabled() {
            pallas_trace::instant(
                pallas_trace::Layer::Cache,
                if hit { "cache-hit" } else { "cache-miss" },
                vec![("fingerprint", pallas_trace::AttrValue::U64(key))],
            );
        }
        // The store layer sits under the memory cache: a memory miss
        // first consults the disk record (zero Extract/Check work on a
        // hit); a disk miss computes and persists. `disk_warnings`
        // carries a disk hit's finished warnings past the Check stage;
        // `persist_keys` carries a computed unit's function keys to the
        // persist step after Check.
        let mut disk_warnings: Option<Vec<Warning>> = None;
        let mut persist_keys: Option<Vec<u64>> = None;
        let frontend = match cached {
            Some(frontend) => {
                counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                for stage in [Stage::Merge, Stage::Parse, Stage::Spec, Stage::Extract] {
                    timings.push(StageTiming { stage, elapsed: Duration::ZERO, cached: true });
                }
                frontend
            }
            None => {
                counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                match self.store_unit_lookup(unit, key) {
                    Some((functions, warnings)) => {
                        // Disk hit: re-run only the cheap base stages
                        // (the AST feeds reports), splice the stored
                        // path database and warnings in, and mark
                        // Extract/Check as served-from-cache.
                        let (merged_src, merge_map, ast, spec) =
                            self.build_base(unit, &mut timings)?;
                        let mut db = PathDb::new(unit.name.clone());
                        for fp in functions {
                            db.insert(fp);
                        }
                        timings.push(StageTiming {
                            stage: Stage::Extract,
                            elapsed: Duration::ZERO,
                            cached: true,
                        });
                        disk_warnings = Some(warnings);
                        let frontend = Arc::new(Frontend {
                            merged_src,
                            merge_map,
                            ast: Arc::new(ast),
                            spec,
                            db: Arc::new(db),
                        });
                        self.cache_frontend(key, &frontend);
                        frontend
                    }
                    None => {
                        let (frontend, func_keys) = self.build_frontend(unit, &mut timings)?;
                        persist_keys = func_keys;
                        let frontend = Arc::new(frontend);
                        self.cache_frontend(key, &frontend);
                        frontend
                    }
                }
            }
        };
        let (warnings, checker_timings, lint) = match disk_warnings {
            Some(warnings) => {
                // The stored warnings are the Check stage's exact
                // output for this fingerprint (rule set included), so
                // Check is served from the store like Extract.
                timings.push(StageTiming {
                    stage: Stage::Check,
                    elapsed: Duration::ZERO,
                    cached: true,
                });
                let lint = frontend.spec.lint();
                (warnings, Vec::new(), lint)
            }
            None => {
                let check_span =
                    pallas_trace::span(pallas_trace::Layer::Stage, Stage::Check.name());
                let check_started = Instant::now();
                let (warnings, checker_timings) = run_rules_timed(
                    &CheckContext {
                        db: &frontend.db,
                        spec: &frontend.spec,
                        ast: &frontend.ast,
                    },
                    rules,
                );
                let lint = frontend.spec.lint();
                drop(check_span);
                counters.checks.fetch_add(1, Ordering::Relaxed);
                timings.push(StageTiming {
                    stage: Stage::Check,
                    elapsed: check_started.elapsed(),
                    cached: false,
                });
                (warnings, checker_timings, lint)
            }
        };
        if let (Some(func_keys), Some(store)) = (&persist_keys, &self.inner.store) {
            if let Ok(mut guard) = store.lock() {
                guard.put_unit(store_layer::unit_key(key), &unit.name, key, func_keys, &warnings);
            }
        }
        for w in &warnings {
            if let Some(idx) =
                pallas_checkers::Rule::ALL.iter().position(|&r| r == w.rule)
            {
                counters.rule_warnings[idx].fetch_add(1, Ordering::Relaxed);
            }
        }
        unit_span.attr_bool("cached", hit);
        unit_span.attr_u64("warnings", warnings.len() as u64);
        for t in &timings {
            counters.stage_nanos[t.stage.index()]
                .fetch_add(t.elapsed.as_nanos() as u64, Ordering::Relaxed);
        }
        counters.units_checked.fetch_add(1, Ordering::Relaxed);
        Ok(AnalyzedUnit {
            name: unit.name.clone(),
            merged_src: frontend.merged_src.clone(),
            merge_map: frontend.merge_map.clone(),
            ast: frontend.ast.clone(),
            db: frontend.db.clone(),
            spec: frontend.spec.clone(),
            warnings,
            lint,
            elapsed: started.elapsed(),
            stage_timings: timings,
            checker_timings,
        })
    }

    /// Convenience wrapper: a single in-memory source plus spec text.
    pub fn check_source(
        &self,
        name: &str,
        src: &str,
        spec_text: &str,
    ) -> Result<AnalyzedUnit, PallasError> {
        self.check_unit(
            &SourceUnit::new(name).with_file(format!("{name}.c"), src).with_spec(spec_text),
        )
    }

    /// Checks many units with work-stealing parallelism across the
    /// host's available cores, preserving input order.
    pub fn check_many(&self, units: &[SourceUnit]) -> Vec<Result<AnalyzedUnit, PallasError>> {
        self.check_many_jobs(units, default_jobs())
    }

    /// Like [`check_many`](Engine::check_many) with an explicit worker
    /// count. `jobs == 1` runs inline on the calling thread; results
    /// are byte-identical across worker counts.
    pub fn check_many_jobs(
        &self,
        units: &[SourceUnit],
        jobs: usize,
    ) -> Vec<Result<AnalyzedUnit, PallasError>> {
        self.check_many_with(units, jobs, Engine::check_unit)
    }

    /// The scheduling core of [`check_many_jobs`](Engine::check_many_jobs)
    /// with the per-unit work function exposed — instrumentation and
    /// fault-injection tests substitute their own `f`. A panic in `f`
    /// is confined to its unit and surfaces as
    /// [`PallasErrorKind::Internal`].
    pub fn check_many_with<F>(
        &self,
        units: &[SourceUnit],
        jobs: usize,
        f: F,
    ) -> Vec<Result<AnalyzedUnit, PallasError>>
    where
        F: Fn(&Engine, &SourceUnit) -> Result<AnalyzedUnit, PallasError> + Sync,
    {
        schedule::run_tasks(units, jobs, |unit| f(self, unit))
            .into_iter()
            .zip(units)
            .map(|(outcome, unit)| match outcome {
                Ok(result) => result,
                Err(panic_msg) => Err(PallasError {
                    unit: unit.name.clone(),
                    kind: PallasErrorKind::Internal(panic_msg),
                }),
            })
            .collect()
    }

    /// [`check_many_jobs`](Engine::check_many_jobs) with the legacy
    /// contiguous-chunk partitioning instead of work stealing. Kept as
    /// the baseline the `engine` benchmark measures against; prefer
    /// the work-stealing entry points everywhere else.
    pub fn check_many_chunked(
        &self,
        units: &[SourceUnit],
        jobs: usize,
    ) -> Vec<Result<AnalyzedUnit, PallasError>> {
        schedule::run_tasks_chunked(units, jobs, |unit| self.check_unit(unit))
            .into_iter()
            .zip(units)
            .map(|(outcome, unit)| match outcome {
                Ok(result) => result,
                Err(panic_msg) => Err(PallasError {
                    unit: unit.name.clone(),
                    kind: PallasErrorKind::Internal(panic_msg),
                }),
            })
            .collect()
    }

    /// Inserts a built (or disk-restored) frontend into the memory
    /// cache, reporting evictions to the tracer.
    fn cache_frontend(&self, key: u64, frontend: &Arc<Frontend>) {
        let mut cache = self.inner.cache.lock().expect("engine cache");
        let evictions_before = cache.evictions();
        cache.insert(key, Arc::clone(frontend));
        let evicted = cache.evictions() - evictions_before;
        drop(cache);
        if evicted > 0 && pallas_trace::enabled() {
            pallas_trace::instant(
                pallas_trace::Layer::Cache,
                "cache-evict",
                vec![("evicted", pallas_trace::AttrValue::U64(evicted))],
            );
        }
    }

    /// Consults the persistent store for a complete unit outcome,
    /// classifying the miss (never seen vs stale content) for the
    /// counters. Returns the unit's function path sets (source order)
    /// plus its warnings on a hit.
    fn store_unit_lookup(
        &self,
        unit: &SourceUnit,
        fingerprint: u64,
    ) -> Option<(Vec<pallas_sym::FunctionPaths>, Vec<Warning>)> {
        let store = self.inner.store.as_ref()?;
        let counters = &self.inner.counters;
        let guard = store.lock().ok()?;
        let outcome = guard.get_unit(store_layer::unit_key(fingerprint)).and_then(
            |(func_keys, warnings)| {
                let mut functions = Vec::with_capacity(func_keys.len());
                for k in func_keys {
                    functions.push(guard.get_function_record(k)?);
                }
                Some((functions, warnings))
            },
        );
        let event = match &outcome {
            Some(_) => {
                counters.store_unit_hits.fetch_add(1, Ordering::Relaxed);
                "store-hit"
            }
            None => match guard.last_unit_fingerprint(&unit.name) {
                Some(last) if last != fingerprint => {
                    counters.store_unit_stale.fetch_add(1, Ordering::Relaxed);
                    "store-stale"
                }
                _ => {
                    counters.store_unit_misses.fetch_add(1, Ordering::Relaxed);
                    "store-miss"
                }
            },
        };
        drop(guard);
        if pallas_trace::enabled() {
            pallas_trace::instant(
                pallas_trace::Layer::Store,
                event,
                vec![("fingerprint", pallas_trace::AttrValue::U64(fingerprint))],
            );
        }
        outcome
    }

    /// Runs the four frontend stages, recording a timing per stage.
    /// With a store configured, Extract reuses per-function records
    /// whose content hash is unchanged, re-extracting (and persisting)
    /// only the rest; the returned keys (one per function, source
    /// order) feed the unit record persisted after Check.
    fn build_frontend(
        &self,
        unit: &SourceUnit,
        timings: &mut Vec<StageTiming>,
    ) -> Result<(Frontend, Option<Vec<u64>>), PallasError> {
        let counters = &self.inner.counters;
        let (merged_src, merge_map, ast, spec) = self.build_base(unit, timings)?;

        let mut span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Extract.name());
        let t = Instant::now();
        counters.extracts.fetch_add(1, Ordering::Relaxed);
        let (db, func_keys) = match &self.inner.store {
            Some(store) => {
                let keys = store_layer::function_content_keys(
                    &ast,
                    &merged_src,
                    &self.inner.config.extract,
                );
                let mut fx =
                    FunctionExtractor::new(&ast, &merged_src, &self.inner.config.extract);
                let mut db = PathDb::new(unit.name.clone());
                for (name, fkey) in &keys {
                    let reused =
                        store.lock().ok().and_then(|g| g.get_function(*fkey, name));
                    match reused {
                        Some(fp) => {
                            counters.store_func_hits.fetch_add(1, Ordering::Relaxed);
                            if pallas_trace::enabled() {
                                pallas_trace::instant(
                                    pallas_trace::Layer::Store,
                                    "store-func-hit",
                                    vec![(
                                        "function",
                                        pallas_trace::AttrValue::Str(name.clone()),
                                    )],
                                );
                            }
                            db.insert(fp);
                        }
                        None => {
                            let stale = store
                                .lock()
                                .ok()
                                .and_then(|g| g.last_function_key(&unit.name, name))
                                .is_some_and(|last| last != *fkey);
                            let counter = if stale {
                                &counters.store_func_stale
                            } else {
                                &counters.store_func_misses
                            };
                            counter.fetch_add(1, Ordering::Relaxed);
                            if pallas_trace::enabled() {
                                pallas_trace::instant(
                                    pallas_trace::Layer::Store,
                                    if stale { "store-func-stale" } else { "store-func-miss" },
                                    vec![(
                                        "function",
                                        pallas_trace::AttrValue::Str(name.clone()),
                                    )],
                                );
                            }
                            let fp = fx.extract_function(name);
                            counters
                                .paths_enumerated
                                .fetch_add(fp.records.len() as u64, Ordering::Relaxed);
                            counters
                                .paths_pruned
                                .fetch_add(fp.pruned as u64, Ordering::Relaxed);
                            if let Ok(mut guard) = store.lock() {
                                guard.put_function(*fkey, &fp, &unit.name);
                            }
                            db.insert(fp);
                        }
                    }
                }
                let (loops, havocs) = fx.loop_summary_stats();
                counters.loops_summarized.fetch_add(loops, Ordering::Relaxed);
                counters.vars_havocked.fetch_add(havocs, Ordering::Relaxed);
                (db, Some(keys.into_iter().map(|(_, k)| k).collect()))
            }
            None => {
                // Same extraction as `pallas_sym::extract`, but through
                // the incremental entry point so the loop-summary
                // counters are observable.
                let mut fx =
                    FunctionExtractor::new(&ast, &merged_src, &self.inner.config.extract);
                let mut db = PathDb::new(unit.name.clone());
                for func in ast.functions() {
                    db.insert(fx.extract_function(&func.sig.name));
                }
                counters
                    .paths_enumerated
                    .fetch_add(db.path_count() as u64, Ordering::Relaxed);
                counters.paths_pruned.fetch_add(db.pruned_paths() as u64, Ordering::Relaxed);
                let (loops, havocs) = fx.loop_summary_stats();
                counters.loops_summarized.fetch_add(loops, Ordering::Relaxed);
                counters.vars_havocked.fetch_add(havocs, Ordering::Relaxed);
                (db, None)
            }
        };
        timings.push(StageTiming { stage: Stage::Extract, elapsed: t.elapsed(), cached: false });
        span.attr_u64("functions", db.functions.len() as u64);
        span.attr_u64("paths", db.path_count() as u64);
        span.attr_u64("pruned", db.pruned_paths() as u64);
        drop(span);

        Ok((Frontend { merged_src, merge_map, ast: Arc::new(ast), spec, db: Arc::new(db) }, func_keys))
    }

    /// Runs the Merge, Parse, and Spec stages — the cheap part of the
    /// frontend that re-runs even on a persistent-store hit (reports
    /// need the AST and spec; only Extract and Check are persisted).
    fn build_base(
        &self,
        unit: &SourceUnit,
        timings: &mut Vec<StageTiming>,
    ) -> Result<(String, MergeMap, Ast, FastPathSpec), PallasError> {
        let counters = &self.inner.counters;
        let stage = |s: Stage, timings: &mut Vec<StageTiming>, elapsed: Duration| {
            timings.push(StageTiming { stage: s, elapsed, cached: false });
        };

        let span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Merge.name());
        let t = Instant::now();
        let (merged_src, merge_map) = unit.merge();
        counters.merges.fetch_add(1, Ordering::Relaxed);
        stage(Stage::Merge, timings, t.elapsed());
        drop(span);

        let mut span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Parse.name());
        let t = Instant::now();
        counters.parses.fetch_add(1, Ordering::Relaxed);
        let ast = parse(&merged_src).map_err(|e| PallasError {
            unit: unit.name.clone(),
            kind: PallasErrorKind::Parse(e),
        })?;
        stage(Stage::Parse, timings, t.elapsed());
        span.attr_u64("bytes", merged_src.len() as u64);
        drop(span);

        let span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Spec.name());
        let t = Instant::now();
        counters.spec_parses.fetch_add(1, Ordering::Relaxed);
        let mut spec = parse_spec(&unit.spec_text).map_err(|e| PallasError {
            unit: unit.name.clone(),
            kind: PallasErrorKind::Spec(e),
        })?;
        for pragma in ast.pragmas() {
            let fragment = parse_pragma(pragma).map_err(|e| PallasError {
                unit: unit.name.clone(),
                kind: PallasErrorKind::Spec(e),
            })?;
            spec.merge(fragment);
        }
        if spec.unit.is_empty() {
            spec.unit = unit.name.clone();
        }
        stage(Stage::Spec, timings, t.elapsed());
        drop(span);

        Ok((merged_src, merge_map, ast, spec))
    }
}

/// Default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize) -> SourceUnit {
        SourceUnit::new(format!("u{i}"))
            .with_file("f.c", format!("int f{i}(int x) {{ return x + {i}; }}"))
            .with_spec(format!("fastpath f{i};"))
    }

    #[test]
    fn stage_timings_cover_all_stages_in_order() {
        let engine = Engine::new();
        let report = engine.check_unit(&unit(0)).unwrap();
        let stages: Vec<Stage> = report.stage_timings.iter().map(|t| t.stage).collect();
        assert_eq!(stages, Stage::ALL);
        assert!(report.stage_timings.iter().all(|t| !t.cached));
        assert_eq!(report.checker_timings.len(), pallas_checkers::Rule::ALL.len());
    }

    #[test]
    fn scoped_engine_runs_only_selected_rules() {
        use pallas_checkers::Rule;
        // Two findable bugs (1.2 overwrite + 4.1 fault); a scoped
        // engine sees only the enabled rule and times only it.
        let unit = SourceUnit::new("scoped")
            .with_file("s.c", "int f(int m) { m = 1; return 0; }")
            .with_spec("fastpath f; immutable m; fault dead;");
        let full = Engine::new().check_unit(&unit).unwrap();
        assert_eq!(full.warnings.len(), 2, "{:#?}", full.warnings);
        let scoped = Engine::with_rules(RuleSet::only([Rule::ImmutableOverwrite]));
        let report = scoped.check_unit(&unit).unwrap();
        assert_eq!(report.warnings.len(), 1, "{:#?}", report.warnings);
        assert_eq!(report.warnings[0].rule, Rule::ImmutableOverwrite);
        assert_eq!(report.checker_timings.len(), 1);
        assert_eq!(scoped.stats().warnings_for(Rule::ImmutableOverwrite), 1);
        assert_eq!(scoped.stats().warnings_for(Rule::FaultMissing), 0);
    }

    #[test]
    fn second_check_hits_the_cache() {
        let engine = Engine::new();
        engine.check_unit(&unit(0)).unwrap();
        let warm = engine.check_unit(&unit(0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.units_checked, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.extracts, 1);
        assert_eq!(stats.checks, 2);
        assert!(warm.stage_timings[..4].iter().all(|t| t.cached));
        assert!(!warm.stage_timings[4].cached, "check never caches");
    }

    #[test]
    fn cache_is_keyed_by_configuration() {
        let unit = unit(0);
        let engine = Engine::new();
        engine.check_unit(&unit).unwrap();
        // A differently-configured engine shares nothing.
        let shallow = Engine::with_config(ExtractConfig {
            inline_depth: 0,
            ..ExtractConfig::default()
        });
        shallow.check_unit(&unit).unwrap();
        assert_eq!(shallow.stats().cache_misses, 1);
    }

    #[test]
    fn clones_share_cache_and_counters() {
        let engine = Engine::new();
        let clone = engine.clone();
        engine.check_unit(&unit(0)).unwrap();
        clone.check_unit(&unit(0)).unwrap();
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cached_frontends(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let engine = Engine::new();
        let bad = SourceUnit::new("bad").with_file("b.c", "int f( {").with_spec("");
        assert!(engine.check_unit(&bad).is_err());
        assert!(engine.check_unit(&bad).is_err());
        assert_eq!(engine.cached_frontends(), 0);
        assert_eq!(engine.stats().parses, 2, "failed units re-run from scratch");
    }

    #[test]
    fn check_many_matches_sequential_results() {
        let units: Vec<SourceUnit> = (0..12).map(unit).collect();
        let engine = Engine::new();
        let parallel = engine.check_many_jobs(&units, 4);
        let sequential: Vec<_> = units.iter().map(|u| Engine::new().check_unit(u)).collect();
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.name, s.name);
            assert_eq!(p.warnings, s.warnings);
        }
    }

    #[test]
    fn panicking_unit_yields_internal_error_for_that_unit_only() {
        let units: Vec<SourceUnit> = (0..6).map(unit).collect();
        let engine = Engine::new();
        let results = engine.check_many_with(&units, 3, |engine, unit| {
            assert!(unit.name != "u3", "injected fault in u3");
            engine.check_unit(unit)
        });
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.unit, "u3");
                match &err.kind {
                    PallasErrorKind::Internal(msg) => {
                        assert!(msg.contains("injected fault"), "{msg}")
                    }
                    other => panic!("expected Internal, got {other:?}"),
                }
            } else {
                assert_eq!(r.as_ref().unwrap().name, format!("u{i}"));
            }
        }
    }

    #[test]
    fn clear_cache_forces_rebuild() {
        let engine = Engine::new();
        engine.check_unit(&unit(0)).unwrap();
        engine.clear_cache();
        engine.check_unit(&unit(0)).unwrap();
        assert_eq!(engine.stats().cache_misses, 2);
    }

    #[test]
    fn cache_stays_within_its_bound_across_many_distinct_units() {
        let capacity = 4;
        let engine = Engine::with_engine_config(EngineConfig {
            cache_capacity: capacity,
            ..EngineConfig::default()
        });
        // 3× capacity distinct units: residency must stay flat at the
        // bound while evictions absorb the difference.
        for i in 0..capacity * 3 {
            engine.check_unit(&unit(i)).unwrap();
            assert!(engine.cached_frontends() <= capacity);
        }
        let stats = engine.stats();
        assert_eq!(stats.cached_frontends, capacity as u64);
        assert_eq!(stats.cache_capacity, capacity as u64);
        assert_eq!(stats.cache_evictions, (capacity * 2) as u64);
        assert_eq!(stats.cache_misses, (capacity * 3) as u64);
    }

    #[test]
    fn recently_checked_unit_survives_eviction_pressure() {
        let engine = Engine::with_engine_config(EngineConfig {
            cache_capacity: 3,
            ..EngineConfig::default()
        });
        for wave in 0..4 {
            engine.check_unit(&unit(0)).unwrap(); // keep u0 hot
            engine.check_unit(&unit(100 + wave)).unwrap(); // one-off
        }
        let stats = engine.stats();
        assert!(stats.cache_hits >= 3, "hot unit should keep hitting: {stats:?}");
    }

    #[test]
    fn zero_capacity_engine_rebuilds_every_time() {
        let engine = Engine::with_engine_config(EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        engine.check_unit(&unit(0)).unwrap();
        engine.check_unit(&unit(0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cached_frontends, 0);
    }

    /// A scratch store path under the system temp dir; the returned
    /// guard removes the directory on drop.
    fn store_path(tag: &str) -> (PathBuf, impl Drop) {
        struct Cleanup(PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
        let dir = std::env::temp_dir()
            .join(format!("pallas-engine-store-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        (dir.join("analysis.store"), Cleanup(dir))
    }

    fn store_engine(path: &std::path::Path) -> Engine {
        Engine::with_engine_config(EngineConfig {
            store_path: Some(path.to_path_buf()),
            ..EngineConfig::default()
        })
    }

    fn buggy_unit() -> SourceUnit {
        SourceUnit::new("persist")
            .with_file(
                "p.c",
                "int helper(int x) { return x + 1; }\n\
                 int lone(int m) { return m * 2; }\n\
                 int fast(int m) { m = helper(m); return 0; }\n",
            )
            .with_spec("fastpath fast; immutable m; fault dead;")
    }

    #[test]
    fn persistent_store_serves_a_fresh_engine_from_disk() {
        let (path, _cleanup) = store_path("warm");
        let unit = buggy_unit();
        let cold = {
            let engine = store_engine(&path);
            let analyzed = engine.check_unit(&unit).unwrap();
            let stats = engine.stats();
            assert_eq!(stats.store_unit_hits, 0);
            assert_eq!(stats.store_unit_misses, 1);
            assert_eq!(stats.store_func_misses, 3);
            assert!(stats.store_units_resident == 1 && stats.store_functions_resident == 3);
            engine.flush_store().unwrap();
            analyzed
        };
        // A brand-new engine (fresh process state) on the same store:
        // the whole unit comes back from disk with zero Extract/Check
        // stage work.
        let engine = store_engine(&path);
        let warm = engine.check_unit(&unit).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.store_unit_hits, 1, "{stats:?}");
        assert_eq!(stats.extracts, 0, "extract must not run on a store hit");
        assert_eq!(stats.checks, 0, "check must not run on a store hit");
        assert_eq!(stats.paths_enumerated, 0);
        assert_eq!(stats.merges, 1, "base stages still run");
        let by_stage = |a: &AnalyzedUnit, s: Stage| {
            a.stage_timings.iter().find(|t| t.stage == s).copied().unwrap()
        };
        assert!(by_stage(&warm, Stage::Extract).cached);
        assert!(by_stage(&warm, Stage::Check).cached);
        assert!(!by_stage(&warm, Stage::Parse).cached);
        // Persisted results are the computed results, exactly.
        assert_eq!(warm.warnings, cold.warnings);
        assert_eq!(warm.db, cold.db);
        assert_eq!(crate::report::render_ndjson(&warm), crate::report::render_ndjson(&cold));
        assert_eq!(
            crate::report::render_unit_report(&warm),
            crate::report::render_unit_report(&cold)
        );
        // And the warm engine's memory cache was seeded from disk.
        engine.check_unit(&unit).unwrap();
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.stats().store_unit_hits, 1, "memory hit skips the store");
    }

    #[test]
    fn mutating_one_function_recomputes_only_that_function() {
        let (path, _cleanup) = store_path("mutate");
        store_engine(&path).check_unit(&buggy_unit()).unwrap();

        // Edit `lone`, which no other function references: the unit is
        // stale (fingerprint changed) but only `lone` re-extracts.
        let mut edited = buggy_unit();
        edited.files[0].1 = edited.files[0].1.replace("m * 2", "m * 3");
        let engine = store_engine(&path);
        let analyzed = engine.check_unit(&edited).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.store_unit_hits, 0);
        assert_eq!(stats.store_unit_stale, 1, "known unit, changed content: {stats:?}");
        assert_eq!(stats.store_func_hits, 2, "helper and fast are unchanged");
        assert_eq!(stats.store_func_stale, 1, "only lone re-extracts");
        assert_eq!(stats.store_func_misses, 0);
        assert_eq!(stats.checks, 1, "warnings re-run over the reassembled db");

        // The incremental result is exactly what a from-scratch engine
        // computes.
        let scratch = Engine::new().check_unit(&edited).unwrap();
        assert_eq!(analyzed.warnings, scratch.warnings);
        assert_eq!(analyzed.db, scratch.db);
        assert_eq!(
            crate::report::render_ndjson(&analyzed),
            crate::report::render_ndjson(&scratch)
        );
    }

    #[test]
    fn spec_only_change_reuses_every_function() {
        let (path, _cleanup) = store_path("spec");
        store_engine(&path).check_unit(&buggy_unit()).unwrap();
        let mut respecced = buggy_unit();
        respecced.spec_text = "fastpath fast; immutable m;".into();
        let engine = store_engine(&path);
        engine.check_unit(&respecced).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.store_unit_stale, 1);
        assert_eq!(stats.store_func_hits, 3, "extraction is spec-independent: {stats:?}");
        assert_eq!(stats.paths_enumerated, 0);
    }

    #[test]
    fn corrupted_store_degrades_to_recompute_with_identical_results() {
        let (path, _cleanup) = store_path("corrupt");
        let unit = buggy_unit();
        store_engine(&path).check_unit(&unit).unwrap();
        // Flip a byte in the middle of the log: the salvage scan drops
        // the corrupt suffix and the engine recomputes it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let engine = store_engine(&path);
        let recovered = engine.check_unit(&unit).unwrap();
        let scratch = Engine::new().check_unit(&unit).unwrap();
        assert_eq!(recovered.warnings, scratch.warnings);
        assert_eq!(
            crate::report::render_ndjson(&recovered),
            crate::report::render_ndjson(&scratch)
        );
        assert_eq!(engine.stats().store_unit_hits, 0, "corrupt records never serve hits");
        // The recompute re-persisted everything: a third engine is warm.
        let warm = store_engine(&path);
        warm.check_unit(&unit).unwrap();
        assert_eq!(warm.stats().store_unit_hits, 1);
    }

    #[test]
    fn unopenable_store_path_disables_persistence_without_failing() {
        let engine = Engine::with_engine_config(EngineConfig {
            store_path: Some(PathBuf::from("/nonexistent-dir/analysis.store")),
            ..EngineConfig::default()
        });
        let analyzed = engine.check_unit(&buggy_unit()).unwrap();
        assert!(!analyzed.warnings.is_empty());
        assert!(!engine.stats().store_enabled);
    }

    #[test]
    fn rule_selection_keys_store_records_apart() {
        use pallas_checkers::Rule;
        let (path, _cleanup) = store_path("rules");
        let unit = buggy_unit();
        store_engine(&path).check_unit(&unit).unwrap();
        // A scoped engine must not reuse the full-rule unit record.
        let scoped = Engine::with_engine_config(EngineConfig {
            store_path: Some(path.clone()),
            rules: RuleSet::only([Rule::ImmutableOverwrite]),
            ..EngineConfig::default()
        });
        let analyzed = scoped.check_unit(&unit).unwrap();
        assert_eq!(scoped.stats().store_unit_hits, 0);
        assert!(analyzed.warnings.iter().all(|w| w.rule == Rule::ImmutableOverwrite));
        // But per-function records are selection-independent.
        assert_eq!(scoped.stats().store_func_hits, 3);
    }
}
