//! The staged analysis engine.
//!
//! [`Engine`] runs the pipeline as five explicit stages —
//! **Merge → Parse → Spec → Extract → Check** — each producing a typed
//! artifact plus a [`StageTiming`]. The first four stages (the
//! *frontend*) are memoized in a content-addressed cache keyed by an
//! FNV-1a fingerprint over the unit's name, files, spec text, and
//! extraction configuration ([`fingerprint`]), so re-checking the same
//! unit — as the `repro` harness does when Tables 1, 7, and 8 all
//! evaluate the same corpus — merges, parses, and extracts it exactly
//! once. The Check stage always runs (it is cheap relative to
//! extraction and its warnings are what callers came for).
//!
//! Batches go through a work-stealing scheduler ([`schedule`]) that
//! keeps skewed workloads balanced, and every unit is panic-isolated:
//! an internal panic while checking one unit becomes
//! [`PallasErrorKind::Internal`](crate::PallasErrorKind) for that unit
//! instead of tearing down the batch.
//!
//! [`Pallas`](crate::Pallas) remains the stateless one-shot facade; it
//! delegates to a fresh `Engine` per call. Hold an `Engine` (or clone
//! its handle — clones share the cache) whenever the same units may be
//! checked more than once.
//!
//! ```
//! use pallas_core::{Engine, SourceUnit};
//!
//! # fn main() -> Result<(), pallas_core::PallasError> {
//! let engine = Engine::new();
//! let unit = SourceUnit::new("demo")
//!     .with_file("demo.c", "int f(void) { return 0; }")
//!     .with_spec("fastpath f;");
//! engine.check_unit(&unit)?;
//! let again = engine.check_unit(&unit)?; // frontend served from cache
//! assert!(again.stage_timings.iter().any(|t| t.cached));
//! assert_eq!(engine.stats().parses, 1);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod fingerprint;
pub mod schedule;

use crate::pipeline::{AnalyzedUnit, PallasError, PallasErrorKind};
use crate::unit::{MergeMap, SourceUnit};
use cache::BoundedCache;
use pallas_checkers::{run_rules_timed, CheckContext, RuleSet};
use pallas_lang::{parse, Ast};
use pallas_spec::{parse_pragma, parse_spec, FastPathSpec};
use pallas_sym::{extract, ExtractConfig, PathDb};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The five pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Concatenate the unit's files into one buffer.
    Merge,
    /// Parse the merged buffer into an AST.
    Parse,
    /// Parse the spec document and fold in inline pragmas.
    Spec,
    /// Extract the symbolic path database.
    Extract,
    /// Run the checker families over the artifacts.
    Check,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 5] =
        [Stage::Merge, Stage::Parse, Stage::Spec, Stage::Extract, Stage::Check];

    /// Lower-case stage name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Merge => "merge",
            Stage::Parse => "parse",
            Stage::Spec => "spec",
            Stage::Extract => "extract",
            Stage::Check => "check",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock record of one stage over one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: Stage,
    /// Time spent (zero when served from cache).
    pub elapsed: Duration,
    /// Whether the artifact came from the frontend cache.
    pub cached: bool,
}

/// Engine-level configuration: the extraction limits, the enabled
/// rule set, and the frontend cache bound. The extraction config and
/// the rule set participate in every cache key; the cache bound only
/// controls memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Extraction limits (part of the frontend cache key).
    pub extract: ExtractConfig,
    /// The registry rules the Check stage runs (part of the frontend
    /// cache key, so selections never share cached artifacts with
    /// differently-scoped runs). Defaults to every registered rule.
    pub rules: RuleSet,
    /// Maximum cached frontends; `0` disables the cache. Long-lived
    /// holders (the `pallas-service` daemon) must keep this bounded
    /// or distinct units grow the process without limit.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            extract: ExtractConfig::default(),
            rules: RuleSet::all(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Default frontend cache bound. Sized for corpus-scale batches: the
/// full evaluation corpus is ~100 units, so one order of magnitude
/// above that keeps every workload in this repo hit-for-hit identical
/// to the old unbounded cache while capping daemon memory.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Snapshot of an engine's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Units checked (cache hits included).
    pub units_checked: u64,
    /// Frontend cache hits.
    pub cache_hits: u64,
    /// Frontend cache misses (frontends built).
    pub cache_misses: u64,
    /// Frontends evicted by the cache bound.
    pub cache_evictions: u64,
    /// Frontends currently resident in the cache.
    pub cached_frontends: u64,
    /// The cache bound (`0` = caching disabled).
    pub cache_capacity: u64,
    /// Merge stage invocations.
    pub merges: u64,
    /// Parse stage invocations.
    pub parses: u64,
    /// Spec stage invocations.
    pub spec_parses: u64,
    /// Extract stage invocations.
    pub extracts: u64,
    /// Check stage invocations.
    pub checks: u64,
    /// Paths extracted across all Extract stage invocations (cache
    /// hits excluded — they re-serve previously extracted paths).
    pub paths_enumerated: u64,
    /// Decision arms the feasibility oracle pruned as contradictory
    /// across all Extract stage invocations.
    pub paths_pruned: u64,
    /// Cumulative nanoseconds per stage, in [`Stage::ALL`] order.
    pub stage_nanos: [u64; 5],
    /// Cumulative warnings emitted per registry rule, in
    /// [`pallas_checkers::Rule::ALL`] order (post-dedup counts).
    pub rule_warnings: [u64; pallas_checkers::Rule::ALL.len()],
}

impl EngineStats {
    /// Cumulative warnings emitted for one rule.
    pub fn warnings_for(&self, rule: pallas_checkers::Rule) -> u64 {
        let idx = pallas_checkers::Rule::ALL
            .iter()
            .position(|&r| r == rule)
            .expect("every rule is in Rule::ALL");
        self.rule_warnings[idx]
    }

    /// Invocation count for one stage.
    pub fn stage_runs(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Merge => self.merges,
            Stage::Parse => self.parses,
            Stage::Spec => self.spec_parses,
            Stage::Extract => self.extracts,
            Stage::Check => self.checks,
        }
    }

    /// Cumulative time spent in one stage.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.stage_nanos[stage.index()])
    }

    /// Frontend (merge + parse + spec + extract) invocation total —
    /// the quantity a warm cache drives down.
    pub fn frontend_runs(&self) -> u64 {
        self.merges + self.parses + self.spec_parses + self.extracts
    }
}

/// Frontend artifacts shared between repeated checks of one unit.
#[derive(Debug)]
struct Frontend {
    merged_src: String,
    merge_map: MergeMap,
    ast: Ast,
    spec: FastPathSpec,
    db: PathDb,
}

#[derive(Debug, Default)]
struct Counters {
    units_checked: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    merges: AtomicU64,
    parses: AtomicU64,
    spec_parses: AtomicU64,
    extracts: AtomicU64,
    checks: AtomicU64,
    paths_enumerated: AtomicU64,
    paths_pruned: AtomicU64,
    stage_nanos: [AtomicU64; 5],
    rule_warnings: [AtomicU64; pallas_checkers::Rule::ALL.len()],
}

#[derive(Debug)]
struct EngineInner {
    config: EngineConfig,
    cache: Mutex<BoundedCache<u64, Arc<Frontend>>>,
    counters: Counters,
}

/// The staged, caching analysis engine. Cloning is cheap and clones
/// share one cache and one set of counters.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default extraction configuration.
    pub fn new() -> Self {
        Engine::with_config(ExtractConfig::default())
    }

    /// An engine with an explicit extraction configuration (and the
    /// default cache bound). The configuration is part of every cache
    /// key, so engines never serve artifacts extracted under
    /// different limits.
    pub fn with_config(config: ExtractConfig) -> Self {
        Engine::with_engine_config(EngineConfig { extract: config, ..EngineConfig::default() })
    }

    /// An engine with full engine-level configuration, including the
    /// frontend cache bound.
    pub fn with_engine_config(config: EngineConfig) -> Self {
        Engine {
            inner: Arc::new(EngineInner {
                cache: Mutex::new(BoundedCache::new(config.cache_capacity)),
                config,
                counters: Counters::default(),
            }),
        }
    }

    /// An engine running only the given rules (default extraction
    /// configuration and cache bound).
    pub fn with_rules(rules: RuleSet) -> Self {
        Engine::with_engine_config(EngineConfig { rules, ..EngineConfig::default() })
    }

    /// The engine's extraction configuration.
    pub fn config(&self) -> &ExtractConfig {
        &self.inner.config.extract
    }

    /// The rules this engine's Check stage runs.
    pub fn rules(&self) -> &RuleSet {
        &self.inner.config.rules
    }

    /// The engine-level configuration (extraction + cache bound).
    pub fn engine_config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let (evictions, resident) = {
            let cache = self.inner.cache.lock().expect("engine cache");
            (cache.evictions(), cache.len() as u64)
        };
        EngineStats {
            units_checked: load(&c.units_checked),
            cache_hits: load(&c.cache_hits),
            cache_misses: load(&c.cache_misses),
            cache_evictions: evictions,
            cached_frontends: resident,
            cache_capacity: self.inner.config.cache_capacity as u64,
            merges: load(&c.merges),
            parses: load(&c.parses),
            spec_parses: load(&c.spec_parses),
            extracts: load(&c.extracts),
            checks: load(&c.checks),
            paths_enumerated: load(&c.paths_enumerated),
            paths_pruned: load(&c.paths_pruned),
            stage_nanos: [
                load(&c.stage_nanos[0]),
                load(&c.stage_nanos[1]),
                load(&c.stage_nanos[2]),
                load(&c.stage_nanos[3]),
                load(&c.stage_nanos[4]),
            ],
            rule_warnings: std::array::from_fn(|i| load(&c.rule_warnings[i])),
        }
    }

    /// Number of frontends currently cached.
    pub fn cached_frontends(&self) -> usize {
        self.inner.cache.lock().expect("engine cache").len()
    }

    /// Drops every cached frontend (counters are kept).
    pub fn clear_cache(&self) {
        self.inner.cache.lock().expect("engine cache").clear();
    }

    /// Runs the staged pipeline on one unit, reusing cached frontend
    /// artifacts when this engine has checked an identical unit
    /// (same name, files, spec, and configuration) before.
    ///
    /// # Errors
    ///
    /// Returns [`PallasError`] if the merged source or the spec fails
    /// to parse. Errors are never cached: a failing unit is re-tried
    /// from scratch on every call.
    pub fn check_unit(&self, unit: &SourceUnit) -> Result<AnalyzedUnit, PallasError> {
        self.check_unit_with_rules(unit, &self.inner.config.rules)
    }

    /// Like [`Engine::check_unit`], but runs the given rule set
    /// instead of the engine's configured one. The selection
    /// participates in the frontend cache key, so scoped and default
    /// requests share one cache without ever sharing artifacts across
    /// selections — this is how the daemon honors per-request
    /// `--only-rule` / `--disable-rule` without a second engine.
    pub fn check_unit_with_rules(
        &self,
        unit: &SourceUnit,
        rules: &RuleSet,
    ) -> Result<AnalyzedUnit, PallasError> {
        let started = Instant::now();
        let mut unit_span = pallas_trace::span(pallas_trace::Layer::Unit, &unit.name);
        let counters = &self.inner.counters;
        let mut timings = Vec::with_capacity(Stage::ALL.len());
        let key =
            fingerprint::fingerprint_unit_with_rules(unit, &self.inner.config.extract, rules);
        let cached = self.inner.cache.lock().expect("engine cache").get(&key);
        let hit = cached.is_some();
        if pallas_trace::enabled() {
            pallas_trace::instant(
                pallas_trace::Layer::Cache,
                if hit { "cache-hit" } else { "cache-miss" },
                vec![("fingerprint", pallas_trace::AttrValue::U64(key))],
            );
        }
        let frontend = match cached {
            Some(frontend) => {
                counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                for stage in [Stage::Merge, Stage::Parse, Stage::Spec, Stage::Extract] {
                    timings.push(StageTiming { stage, elapsed: Duration::ZERO, cached: true });
                }
                frontend
            }
            None => {
                counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                let frontend = Arc::new(self.build_frontend(unit, &mut timings)?);
                let mut cache = self.inner.cache.lock().expect("engine cache");
                let evictions_before = cache.evictions();
                cache.insert(key, Arc::clone(&frontend));
                let evicted = cache.evictions() - evictions_before;
                drop(cache);
                if evicted > 0 && pallas_trace::enabled() {
                    pallas_trace::instant(
                        pallas_trace::Layer::Cache,
                        "cache-evict",
                        vec![("evicted", pallas_trace::AttrValue::U64(evicted))],
                    );
                }
                frontend
            }
        };
        let check_span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Check.name());
        let check_started = Instant::now();
        let (warnings, checker_timings) = run_rules_timed(
            &CheckContext { db: &frontend.db, spec: &frontend.spec, ast: &frontend.ast },
            rules,
        );
        let lint = frontend.spec.lint();
        drop(check_span);
        counters.checks.fetch_add(1, Ordering::Relaxed);
        timings.push(StageTiming {
            stage: Stage::Check,
            elapsed: check_started.elapsed(),
            cached: false,
        });
        for w in &warnings {
            if let Some(idx) =
                pallas_checkers::Rule::ALL.iter().position(|&r| r == w.rule)
            {
                counters.rule_warnings[idx].fetch_add(1, Ordering::Relaxed);
            }
        }
        unit_span.attr_bool("cached", hit);
        unit_span.attr_u64("warnings", warnings.len() as u64);
        for t in &timings {
            counters.stage_nanos[t.stage.index()]
                .fetch_add(t.elapsed.as_nanos() as u64, Ordering::Relaxed);
        }
        counters.units_checked.fetch_add(1, Ordering::Relaxed);
        Ok(AnalyzedUnit {
            name: unit.name.clone(),
            merged_src: frontend.merged_src.clone(),
            merge_map: frontend.merge_map.clone(),
            ast: frontend.ast.clone(),
            db: frontend.db.clone(),
            spec: frontend.spec.clone(),
            warnings,
            lint,
            elapsed: started.elapsed(),
            stage_timings: timings,
            checker_timings,
        })
    }

    /// Convenience wrapper: a single in-memory source plus spec text.
    pub fn check_source(
        &self,
        name: &str,
        src: &str,
        spec_text: &str,
    ) -> Result<AnalyzedUnit, PallasError> {
        self.check_unit(
            &SourceUnit::new(name).with_file(format!("{name}.c"), src).with_spec(spec_text),
        )
    }

    /// Checks many units with work-stealing parallelism across the
    /// host's available cores, preserving input order.
    pub fn check_many(&self, units: &[SourceUnit]) -> Vec<Result<AnalyzedUnit, PallasError>> {
        self.check_many_jobs(units, default_jobs())
    }

    /// Like [`check_many`](Engine::check_many) with an explicit worker
    /// count. `jobs == 1` runs inline on the calling thread; results
    /// are byte-identical across worker counts.
    pub fn check_many_jobs(
        &self,
        units: &[SourceUnit],
        jobs: usize,
    ) -> Vec<Result<AnalyzedUnit, PallasError>> {
        self.check_many_with(units, jobs, Engine::check_unit)
    }

    /// The scheduling core of [`check_many_jobs`](Engine::check_many_jobs)
    /// with the per-unit work function exposed — instrumentation and
    /// fault-injection tests substitute their own `f`. A panic in `f`
    /// is confined to its unit and surfaces as
    /// [`PallasErrorKind::Internal`].
    pub fn check_many_with<F>(
        &self,
        units: &[SourceUnit],
        jobs: usize,
        f: F,
    ) -> Vec<Result<AnalyzedUnit, PallasError>>
    where
        F: Fn(&Engine, &SourceUnit) -> Result<AnalyzedUnit, PallasError> + Sync,
    {
        schedule::run_tasks(units, jobs, |unit| f(self, unit))
            .into_iter()
            .zip(units)
            .map(|(outcome, unit)| match outcome {
                Ok(result) => result,
                Err(panic_msg) => Err(PallasError {
                    unit: unit.name.clone(),
                    kind: PallasErrorKind::Internal(panic_msg),
                }),
            })
            .collect()
    }

    /// [`check_many_jobs`](Engine::check_many_jobs) with the legacy
    /// contiguous-chunk partitioning instead of work stealing. Kept as
    /// the baseline the `engine` benchmark measures against; prefer
    /// the work-stealing entry points everywhere else.
    pub fn check_many_chunked(
        &self,
        units: &[SourceUnit],
        jobs: usize,
    ) -> Vec<Result<AnalyzedUnit, PallasError>> {
        schedule::run_tasks_chunked(units, jobs, |unit| self.check_unit(unit))
            .into_iter()
            .zip(units)
            .map(|(outcome, unit)| match outcome {
                Ok(result) => result,
                Err(panic_msg) => Err(PallasError {
                    unit: unit.name.clone(),
                    kind: PallasErrorKind::Internal(panic_msg),
                }),
            })
            .collect()
    }

    /// Runs the four frontend stages, recording a timing per stage.
    fn build_frontend(
        &self,
        unit: &SourceUnit,
        timings: &mut Vec<StageTiming>,
    ) -> Result<Frontend, PallasError> {
        let counters = &self.inner.counters;
        let stage = |s: Stage, timings: &mut Vec<StageTiming>, elapsed: Duration| {
            timings.push(StageTiming { stage: s, elapsed, cached: false });
        };

        let span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Merge.name());
        let t = Instant::now();
        let (merged_src, merge_map) = unit.merge();
        counters.merges.fetch_add(1, Ordering::Relaxed);
        stage(Stage::Merge, timings, t.elapsed());
        drop(span);

        let mut span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Parse.name());
        let t = Instant::now();
        counters.parses.fetch_add(1, Ordering::Relaxed);
        let ast = parse(&merged_src).map_err(|e| PallasError {
            unit: unit.name.clone(),
            kind: PallasErrorKind::Parse(e),
        })?;
        stage(Stage::Parse, timings, t.elapsed());
        span.attr_u64("bytes", merged_src.len() as u64);
        drop(span);

        let span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Spec.name());
        let t = Instant::now();
        counters.spec_parses.fetch_add(1, Ordering::Relaxed);
        let mut spec = parse_spec(&unit.spec_text).map_err(|e| PallasError {
            unit: unit.name.clone(),
            kind: PallasErrorKind::Spec(e),
        })?;
        for pragma in ast.pragmas() {
            let fragment = parse_pragma(pragma).map_err(|e| PallasError {
                unit: unit.name.clone(),
                kind: PallasErrorKind::Spec(e),
            })?;
            spec.merge(fragment);
        }
        if spec.unit.is_empty() {
            spec.unit = unit.name.clone();
        }
        stage(Stage::Spec, timings, t.elapsed());
        drop(span);

        let mut span = pallas_trace::span(pallas_trace::Layer::Stage, Stage::Extract.name());
        let t = Instant::now();
        counters.extracts.fetch_add(1, Ordering::Relaxed);
        let db = extract(&unit.name, &ast, &merged_src, &self.inner.config.extract);
        counters.paths_enumerated.fetch_add(db.path_count() as u64, Ordering::Relaxed);
        counters.paths_pruned.fetch_add(db.pruned_paths() as u64, Ordering::Relaxed);
        stage(Stage::Extract, timings, t.elapsed());
        span.attr_u64("functions", db.functions.len() as u64);
        span.attr_u64("paths", db.path_count() as u64);
        span.attr_u64("pruned", db.pruned_paths() as u64);
        drop(span);

        Ok(Frontend { merged_src, merge_map, ast, spec, db })
    }
}

/// Default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize) -> SourceUnit {
        SourceUnit::new(format!("u{i}"))
            .with_file("f.c", format!("int f{i}(int x) {{ return x + {i}; }}"))
            .with_spec(format!("fastpath f{i};"))
    }

    #[test]
    fn stage_timings_cover_all_stages_in_order() {
        let engine = Engine::new();
        let report = engine.check_unit(&unit(0)).unwrap();
        let stages: Vec<Stage> = report.stage_timings.iter().map(|t| t.stage).collect();
        assert_eq!(stages, Stage::ALL);
        assert!(report.stage_timings.iter().all(|t| !t.cached));
        assert_eq!(report.checker_timings.len(), pallas_checkers::Rule::ALL.len());
    }

    #[test]
    fn scoped_engine_runs_only_selected_rules() {
        use pallas_checkers::Rule;
        // Two findable bugs (1.2 overwrite + 4.1 fault); a scoped
        // engine sees only the enabled rule and times only it.
        let unit = SourceUnit::new("scoped")
            .with_file("s.c", "int f(int m) { m = 1; return 0; }")
            .with_spec("fastpath f; immutable m; fault dead;");
        let full = Engine::new().check_unit(&unit).unwrap();
        assert_eq!(full.warnings.len(), 2, "{:#?}", full.warnings);
        let scoped = Engine::with_rules(RuleSet::only([Rule::ImmutableOverwrite]));
        let report = scoped.check_unit(&unit).unwrap();
        assert_eq!(report.warnings.len(), 1, "{:#?}", report.warnings);
        assert_eq!(report.warnings[0].rule, Rule::ImmutableOverwrite);
        assert_eq!(report.checker_timings.len(), 1);
        assert_eq!(scoped.stats().warnings_for(Rule::ImmutableOverwrite), 1);
        assert_eq!(scoped.stats().warnings_for(Rule::FaultMissing), 0);
    }

    #[test]
    fn second_check_hits_the_cache() {
        let engine = Engine::new();
        engine.check_unit(&unit(0)).unwrap();
        let warm = engine.check_unit(&unit(0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.units_checked, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.extracts, 1);
        assert_eq!(stats.checks, 2);
        assert!(warm.stage_timings[..4].iter().all(|t| t.cached));
        assert!(!warm.stage_timings[4].cached, "check never caches");
    }

    #[test]
    fn cache_is_keyed_by_configuration() {
        let unit = unit(0);
        let engine = Engine::new();
        engine.check_unit(&unit).unwrap();
        // A differently-configured engine shares nothing.
        let shallow = Engine::with_config(ExtractConfig {
            inline_depth: 0,
            ..ExtractConfig::default()
        });
        shallow.check_unit(&unit).unwrap();
        assert_eq!(shallow.stats().cache_misses, 1);
    }

    #[test]
    fn clones_share_cache_and_counters() {
        let engine = Engine::new();
        let clone = engine.clone();
        engine.check_unit(&unit(0)).unwrap();
        clone.check_unit(&unit(0)).unwrap();
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cached_frontends(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let engine = Engine::new();
        let bad = SourceUnit::new("bad").with_file("b.c", "int f( {").with_spec("");
        assert!(engine.check_unit(&bad).is_err());
        assert!(engine.check_unit(&bad).is_err());
        assert_eq!(engine.cached_frontends(), 0);
        assert_eq!(engine.stats().parses, 2, "failed units re-run from scratch");
    }

    #[test]
    fn check_many_matches_sequential_results() {
        let units: Vec<SourceUnit> = (0..12).map(unit).collect();
        let engine = Engine::new();
        let parallel = engine.check_many_jobs(&units, 4);
        let sequential: Vec<_> = units.iter().map(|u| Engine::new().check_unit(u)).collect();
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.name, s.name);
            assert_eq!(p.warnings, s.warnings);
        }
    }

    #[test]
    fn panicking_unit_yields_internal_error_for_that_unit_only() {
        let units: Vec<SourceUnit> = (0..6).map(unit).collect();
        let engine = Engine::new();
        let results = engine.check_many_with(&units, 3, |engine, unit| {
            assert!(unit.name != "u3", "injected fault in u3");
            engine.check_unit(unit)
        });
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.unit, "u3");
                match &err.kind {
                    PallasErrorKind::Internal(msg) => {
                        assert!(msg.contains("injected fault"), "{msg}")
                    }
                    other => panic!("expected Internal, got {other:?}"),
                }
            } else {
                assert_eq!(r.as_ref().unwrap().name, format!("u{i}"));
            }
        }
    }

    #[test]
    fn clear_cache_forces_rebuild() {
        let engine = Engine::new();
        engine.check_unit(&unit(0)).unwrap();
        engine.clear_cache();
        engine.check_unit(&unit(0)).unwrap();
        assert_eq!(engine.stats().cache_misses, 2);
    }

    #[test]
    fn cache_stays_within_its_bound_across_many_distinct_units() {
        let capacity = 4;
        let engine = Engine::with_engine_config(EngineConfig {
            cache_capacity: capacity,
            ..EngineConfig::default()
        });
        // 3× capacity distinct units: residency must stay flat at the
        // bound while evictions absorb the difference.
        for i in 0..capacity * 3 {
            engine.check_unit(&unit(i)).unwrap();
            assert!(engine.cached_frontends() <= capacity);
        }
        let stats = engine.stats();
        assert_eq!(stats.cached_frontends, capacity as u64);
        assert_eq!(stats.cache_capacity, capacity as u64);
        assert_eq!(stats.cache_evictions, (capacity * 2) as u64);
        assert_eq!(stats.cache_misses, (capacity * 3) as u64);
    }

    #[test]
    fn recently_checked_unit_survives_eviction_pressure() {
        let engine = Engine::with_engine_config(EngineConfig {
            cache_capacity: 3,
            ..EngineConfig::default()
        });
        for wave in 0..4 {
            engine.check_unit(&unit(0)).unwrap(); // keep u0 hot
            engine.check_unit(&unit(100 + wave)).unwrap(); // one-off
        }
        let stats = engine.stats();
        assert!(stats.cache_hits >= 3, "hot unit should keep hitting: {stats:?}");
    }

    #[test]
    fn zero_capacity_engine_rebuilds_every_time() {
        let engine = Engine::with_engine_config(EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        engine.check_unit(&unit(0)).unwrap();
        engine.check_unit(&unit(0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cached_frontends, 0);
    }
}
