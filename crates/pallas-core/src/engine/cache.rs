//! Bounded frontend cache with second-chance (clock) eviction.
//!
//! The staged engine originally memoized frontends in an unbounded
//! map, which is fine for one-shot CLI runs but not for a long-lived
//! daemon ([`pallas-service`]) where the key space is every distinct
//! `(source, spec, config)` ever submitted. [`BoundedCache`] caps the
//! entry count and evicts with the second-chance policy: entries get a
//! referenced bit on every hit, and the clock hand skips (and clears)
//! referenced entries once before evicting, so recently re-used
//! frontends survive a scan of one-off units. Second-chance gives
//! LRU-like behaviour with O(1) hits and amortized O(1) inserts, and
//! needs no per-access list surgery under the cache mutex.
//!
//! [`pallas-service`]: https://example.org/pallas

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A capacity-bounded map with second-chance eviction.
///
/// `capacity == 0` disables caching entirely: every `insert` is a
/// no-op and every `get` misses. (A daemon can run cache-less for
/// A/B measurements without special-casing its request path.)
#[derive(Debug)]
pub struct BoundedCache<K, V> {
    capacity: usize,
    map: HashMap<K, Slot<V>>,
    /// Clock order: front is the next eviction candidate.
    clock: VecDeque<K>,
    evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    referenced: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        BoundedCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            clock: VecDeque::with_capacity(capacity.min(1024)),
            evictions: 0,
        }
    }

    /// Looks up `key`, marking the entry recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let slot = self.map.get_mut(key)?;
        slot.referenced = true;
        Some(slot.value.clone())
    }

    /// Inserts `key → value`, evicting the first un-referenced entry
    /// in clock order once the cache is full. Re-inserting an existing
    /// key replaces its value in place.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get_mut(&key) {
            slot.value = value;
            slot.referenced = true;
            return;
        }
        while self.map.len() >= self.capacity {
            let candidate = self.clock.pop_front().expect("clock tracks every entry");
            let slot = self.map.get_mut(&candidate).expect("clock keys live in the map");
            if slot.referenced {
                // Second chance: clear the bit and rotate to the back.
                slot.referenced = false;
                self.clock.push_back(candidate);
            } else {
                self.map.remove(&candidate);
                self.evictions += 1;
            }
        }
        self.clock.push_back(key.clone());
        self.map.insert(key, Slot { value, referenced: false });
    }

    /// Current entry count (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total evictions performed since construction (survives
    /// [`clear`](BoundedCache::clear)).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every entry without counting evictions.
    pub fn clear(&mut self) {
        self.map.clear();
        self.clock.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at_most_capacity_entries() {
        let mut cache = BoundedCache::new(4);
        for i in 0..12 {
            cache.insert(i, i * 10);
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 8);
        // The newest entry is always resident.
        assert_eq!(cache.get(&11), Some(110));
    }

    #[test]
    fn referenced_entries_survive_a_scan() {
        let mut cache = BoundedCache::new(3);
        cache.insert("hot", 1);
        cache.insert("a", 2);
        cache.insert("b", 3);
        // Touch `hot`, then stream one-off keys through the cache.
        for i in 0..6 {
            assert_eq!(cache.get(&"hot"), Some(1), "hot entry evicted at step {i}");
            cache.insert(["c", "d", "e", "f", "g", "h"][i], 10 + i as i32);
        }
        assert_eq!(cache.get(&"hot"), Some(1));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut cache = BoundedCache::new(2);
        cache.insert("k", 1);
        cache.insert("k", 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&"k"), Some(2));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = BoundedCache::new(0);
        cache.insert("k", 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"k"), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_eviction_count() {
        let mut cache = BoundedCache::new(2);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(3, 3);
        assert_eq!(cache.evictions(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 1);
        cache.insert(4, 4);
        assert_eq!(cache.get(&4), Some(4));
    }

    #[test]
    fn eviction_loop_terminates_when_everything_is_referenced() {
        let mut cache = BoundedCache::new(3);
        for i in 0..3 {
            cache.insert(i, i);
        }
        for i in 0..3 {
            cache.get(&i);
        }
        cache.insert(99, 99);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&99), Some(99));
    }
}
