//! Work-stealing task scheduler for batch checking.
//!
//! [`run_tasks`] distributes items over `jobs` worker threads through
//! a `crossbeam::deque` injector; idle workers steal from busy ones,
//! so a batch whose expensive items cluster together (the common shape
//! of real corpora — a few huge fast paths among many small ones)
//! stays balanced. [`run_tasks_chunked`] keeps the old contiguous
//! partitioning as a benchmark baseline.
//!
//! Every task runs under `catch_unwind`: one panicking item becomes an
//! `Err(message)` in its own output slot instead of tearing down the
//! whole batch.

use crossbeam::deque::{Injector, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Runs `f` over every item with work-stealing distribution,
/// preserving input order in the output. A panicking task yields
/// `Err(panic message)` for that item only.
pub fn run_tasks<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    let mut batch = pallas_trace::span(pallas_trace::Layer::Sched, "batch");
    batch.attr_u64("items", items.len() as u64);
    batch.attr_u64("jobs", jobs as u64);
    if jobs == 1 {
        return items.iter().map(|item| run_caught(&f, item)).collect();
    }
    let injector = Injector::new();
    for index in 0..items.len() {
        injector.push(index);
    }
    let workers: Vec<Worker<usize>> = (0..jobs).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for (worker_index, local) in workers.into_iter().enumerate() {
            let (injector, stealers, slots, f) = (&injector, &stealers, &slots, &f);
            scope.spawn(move |_| {
                let mut span = pallas_trace::span(pallas_trace::Layer::Sched, "worker");
                span.attr_u64("worker", worker_index as u64);
                let mut ran = 0u64;
                while let Some(index) = find_task(&local, injector, stealers) {
                    *slots[index].lock().expect("result slot") = Some(run_caught(f, &items[index]));
                    ran += 1;
                }
                span.attr_u64("tasks", ran);
            });
        }
    })
    .expect("workers are panic-isolated by catch_unwind");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot").expect("every task ran"))
        .collect()
}

/// The classic find-task loop: local queue first, then a batch from
/// the injector, then steals from other workers; retries while any
/// source reports a race.
fn find_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
) -> Option<usize> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            injector
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
        })
        .find(|steal| !steal.is_retry())
        .and_then(|steal| steal.success())
    })
}

/// The pre-engine strategy: split items into `jobs` contiguous chunks,
/// one thread per chunk, no rebalancing. Kept as the baseline the
/// `engine` benchmark compares work stealing against; skewed workloads
/// serialize their expensive cluster on a single thread here.
pub fn run_tasks_chunked<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(|item| run_caught(&f, item)).collect();
    }
    let mut out: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    let chunk_size = items.len().div_ceil(jobs).max(1);
    let mut pairs: Vec<(&mut Option<Result<R, String>>, &T)> =
        out.iter_mut().zip(items.iter()).collect();
    crossbeam::thread::scope(|scope| {
        for chunk in pairs.chunks_mut(chunk_size) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in chunk.iter_mut() {
                    **slot = Some(run_caught(f, item));
                }
            });
        }
    })
    .expect("workers are panic-isolated by catch_unwind");
    drop(pairs);
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

fn run_caught<T, R>(f: &impl Fn(&T) -> R, item: &T) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "task panicked with a non-string payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let results = run_tasks(&items, 8, |&n| n * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i * 2));
        }
    }

    #[test]
    fn panic_isolated_to_its_item() {
        let items: Vec<usize> = (0..16).collect();
        let results = run_tasks(&items, 4, |&n| {
            assert!(n != 7, "task 7 exploded");
            n
        });
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("task 7 exploded"), "{msg}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &i);
            }
        }
    }

    #[test]
    fn single_job_runs_inline() {
        let results = run_tasks(&[1, 2, 3], 1, |&n| n + 1);
        assert_eq!(results.len(), 3);
        assert_eq!(results[2].as_ref().unwrap(), &4);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let results = run_tasks::<u32, u32, _>(&[], 4, |&n| n);
        assert!(results.is_empty());
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let results = run_tasks(&[10, 20], 16, |&n| n);
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].as_ref().unwrap(), &20);
    }

    #[test]
    fn chunked_baseline_agrees_with_stealing() {
        let items: Vec<usize> = (0..50).collect();
        let a = run_tasks(&items, 4, |&n| n * n);
        let b = run_tasks_chunked(&items, 4, |&n| n * n);
        assert_eq!(a, b);
    }

    /// The scheduling win, demonstrated independently of core count:
    /// a skewed workload whose cost is blocking time (sleeps overlap
    /// even on one CPU). The heavy cluster sits at the front, so the
    /// chunked baseline serializes all of it on worker 0 (makespan ≥
    /// 8 × 20ms), while stealing spreads it across the four workers.
    #[test]
    fn stealing_beats_chunking_on_a_skewed_blocking_workload() {
        use std::time::{Duration, Instant};
        let costs: Vec<Duration> = (0..24)
            .map(|i| Duration::from_millis(if i < 8 { 20 } else { 1 }))
            .collect();
        type Runner = fn(&[Duration], usize, fn(&Duration)) -> Vec<Result<(), String>>;
        let run = |f: Runner| {
            let started = Instant::now();
            let results = f(&costs, 4, |d| std::thread::sleep(*d));
            assert!(results.iter().all(Result::is_ok));
            started.elapsed()
        };
        let chunked = run(run_tasks_chunked::<Duration, (), fn(&Duration)>);
        let stealing = run(run_tasks::<Duration, (), fn(&Duration)>);
        // Chunked floor: 6 heavy + light on worker 0 ≥ 120ms. Stealing
        // spreads the heavy items: ~2 per worker ≈ 40ms. Assert with a
        // wide margin so scheduler jitter cannot flake the test.
        assert!(
            stealing < chunked * 3 / 4,
            "work stealing ({stealing:?}) should beat chunking ({chunked:?}) on skewed load"
        );
    }

    #[test]
    fn chunked_baseline_isolates_panics_too() {
        let results = run_tasks_chunked(&[0, 1, 2], 3, |&n| {
            assert!(n != 1, "boom");
            n
        });
        assert!(results[0].is_ok() && results[2].is_ok());
        assert!(results[1].is_err());
    }
}
