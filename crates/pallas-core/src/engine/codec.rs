//! Binary codec for persisted analysis artifacts.
//!
//! The persistent store ([`super::store_layer`]) holds two payload
//! shapes: a *function record* (one serialized
//! [`FunctionPaths`]) and a *unit record* (the function-record keys
//! that make up the unit's path database, in source order, plus the
//! unit's warnings). Everything is little-endian and length-prefixed;
//! enum variants are tagged by `u8` through exhaustive matches so a
//! variant added to [`Sym`], [`Event`], [`BinOp`], or [`UnOp`] is a
//! compile error here — the fix is a new tag plus a
//! [`super::store_layer::STORE_FORMAT_VERSION`] bump.
//!
//! Decoding is total: any malformed input yields [`DecodeError`], which
//! the store layer treats as a cache miss (recompute), never a panic.
//! The round trip is exact — a decoded value is `==` to the encoded
//! one — which is what makes persisted findings render byte-identically
//! to freshly computed ones.

use pallas_checkers::{parse_rule, Warning};
use pallas_lang::ast::{BinOp, UnOp};
use pallas_sym::{Event, FunctionPaths, OutputRecord, PathRecord, Sym, SymNode};

/// A malformed or foreign payload. Carries the reason for tests and
/// trace messages; the store layer's only decision is "treat as miss".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

type R<T> = Result<T, DecodeError>;

fn bad<T>(what: &str) -> R<T> {
    Err(DecodeError(what.to_string()))
}

// ---------------------------------------------------------------- writer

#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn boolean(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn strs(&mut self, v: &[String]) {
        self.u32(v.len() as u32);
        for s in v {
            self.str(s);
        }
    }
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

// ---------------------------------------------------------------- reader

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return bad("short payload");
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> R<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> R<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> R<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> R<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn boolean(&mut self) -> R<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => bad("invalid bool"),
        }
    }
    fn str(&mut self) -> R<String> {
        let len = self.u32()? as usize;
        match std::str::from_utf8(self.take(len)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => bad("invalid utf-8"),
        }
    }
    fn strs(&mut self) -> R<Vec<String>> {
        let n = self.u32()? as usize;
        // Each string needs at least its 4-byte length prefix; this
        // bound rejects absurd counts before allocating.
        if self.buf.len() - self.at < n * 4 {
            return bad("implausible vec length");
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.str()?);
        }
        Ok(v)
    }
    /// True when every byte has been consumed — decoders require this
    /// so trailing garbage is corruption, not silently ignored.
    pub(crate) fn finished(&self) -> bool {
        self.at == self.buf.len()
    }
}

// ------------------------------------------------------------- operators

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Shl => 5,
        BinOp::Shr => 6,
        BinOp::Lt => 7,
        BinOp::Gt => 8,
        BinOp::Le => 9,
        BinOp::Ge => 10,
        BinOp::Eq => 11,
        BinOp::Ne => 12,
        BinOp::BitAnd => 13,
        BinOp::BitXor => 14,
        BinOp::BitOr => 15,
        BinOp::And => 16,
        BinOp::Or => 17,
    }
}

fn binop_from(tag: u8) -> R<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Shl,
        6 => BinOp::Shr,
        7 => BinOp::Lt,
        8 => BinOp::Gt,
        9 => BinOp::Le,
        10 => BinOp::Ge,
        11 => BinOp::Eq,
        12 => BinOp::Ne,
        13 => BinOp::BitAnd,
        14 => BinOp::BitXor,
        15 => BinOp::BitOr,
        16 => BinOp::And,
        17 => BinOp::Or,
        _ => return bad("unknown binop tag"),
    })
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::BitNot => 2,
        UnOp::Deref => 3,
        UnOp::Addr => 4,
        UnOp::PreInc => 5,
        UnOp::PreDec => 6,
        UnOp::PostInc => 7,
        UnOp::PostDec => 8,
    }
}

fn unop_from(tag: u8) -> R<UnOp> {
    Ok(match tag {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::BitNot,
        3 => UnOp::Deref,
        4 => UnOp::Addr,
        5 => UnOp::PreInc,
        6 => UnOp::PreDec,
        7 => UnOp::PostInc,
        8 => UnOp::PostDec,
        _ => return bad("unknown unop tag"),
    })
}

// ------------------------------------------------------------------ sym

fn write_sym(w: &mut Writer, sym: Sym) {
    match sym.node() {
        SymNode::Input(name) => {
            w.u8(0);
            w.str(name);
        }
        SymNode::Int(v) => {
            w.u8(1);
            w.i64(*v);
        }
        SymNode::Str(s) => {
            w.u8(2);
            w.str(s);
        }
        SymNode::Temp(n) => {
            w.u8(3);
            w.u32(*n);
        }
        SymNode::Call { callee, args } => {
            w.u8(4);
            w.str(callee);
            w.u32(args.len() as u32);
            for &a in args {
                write_sym(w, a);
            }
        }
        SymNode::Unary(op, a) => {
            w.u8(5);
            w.u8(unop_tag(*op));
            write_sym(w, *a);
        }
        SymNode::Binary(op, a, b) => {
            w.u8(6);
            w.u8(binop_tag(*op));
            write_sym(w, *a);
            write_sym(w, *b);
        }
        SymNode::Unknown => w.u8(7),
    }
}

// Decoding interns through the *raw* constructors: persisted trees were
// already folded/widened when they were built, so re-applying the
// budget here would change shapes (and hence rendered bytes) for
// values that legitimately sit at the budget boundary. Raw interning
// reproduces the encoded structure exactly, node for node.
fn read_sym(r: &mut Reader<'_>) -> R<Sym> {
    Ok(match r.u8()? {
        0 => Sym::input(r.str()?),
        1 => Sym::int(r.i64()?),
        2 => Sym::str_lit(r.str()?),
        3 => Sym::temp(r.u32()?),
        4 => {
            let callee = r.str()?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                args.push(read_sym(r)?);
            }
            Sym::call(callee, args)
        }
        5 => {
            let op = unop_from(r.u8()?)?;
            Sym::unary_raw(op, read_sym(r)?)
        }
        6 => {
            let op = binop_from(r.u8()?)?;
            let a = read_sym(r)?;
            let b = read_sym(r)?;
            Sym::binary_raw(op, a, b)
        }
        7 => Sym::unknown(),
        _ => return bad("unknown sym tag"),
    })
}

fn write_opt_sym(w: &mut Writer, sym: Option<Sym>) {
    match sym {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            write_sym(w, s);
        }
    }
}

fn read_opt_sym(r: &mut Reader<'_>) -> R<Option<Sym>> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(read_sym(r)?),
        _ => return bad("invalid option tag"),
    })
}

// ---------------------------------------------------------------- events

fn write_event(w: &mut Writer, event: &Event) {
    match event {
        Event::Cond { line, text, symbolic, vars, taken, depth } => {
            w.u8(0);
            w.u32(*line);
            w.str(text);
            w.str(symbolic);
            w.strs(vars);
            w.u8(match taken {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
            w.u8(*depth);
        }
        Event::State { line, lvalue, value, text, reads, depth } => {
            w.u8(1);
            w.u32(*line);
            w.str(lvalue);
            write_sym(w, *value);
            w.str(text);
            w.strs(reads);
            w.u8(*depth);
        }
        Event::Call { line, callee, arg_vars, assigned_to, in_condition, depth } => {
            w.u8(2);
            w.u32(*line);
            w.str(callee);
            w.strs(arg_vars);
            match assigned_to {
                None => w.u8(0),
                Some(s) => {
                    w.u8(1);
                    w.str(s);
                }
            }
            w.boolean(*in_condition);
            w.u8(*depth);
        }
        Event::Decl { line, name, has_init, depth } => {
            w.u8(3);
            w.u32(*line);
            w.str(name);
            w.boolean(*has_init);
            w.u8(*depth);
        }
    }
}

fn read_event(r: &mut Reader<'_>) -> R<Event> {
    Ok(match r.u8()? {
        0 => Event::Cond {
            line: r.u32()?,
            text: r.str()?,
            symbolic: r.str()?,
            vars: r.strs()?,
            taken: match r.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                _ => return bad("invalid taken tag"),
            },
            depth: r.u8()?,
        },
        1 => Event::State {
            line: r.u32()?,
            lvalue: r.str()?,
            value: read_sym(r)?,
            text: r.str()?,
            reads: r.strs()?,
            depth: r.u8()?,
        },
        2 => Event::Call {
            line: r.u32()?,
            callee: r.str()?,
            arg_vars: r.strs()?,
            assigned_to: match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                _ => return bad("invalid option tag"),
            },
            in_condition: r.boolean()?,
            depth: r.u8()?,
        },
        3 => Event::Decl {
            line: r.u32()?,
            name: r.str()?,
            has_init: r.boolean()?,
            depth: r.u8()?,
        },
        _ => return bad("unknown event tag"),
    })
}

// ------------------------------------------------------- function paths

fn write_function_paths(w: &mut Writer, fp: &FunctionPaths) {
    w.str(&fp.name);
    w.str(&fp.signature);
    w.strs(&fp.params);
    w.u32(fp.line);
    w.u32(fp.records.len() as u32);
    for rec in &fp.records {
        w.u64(rec.index as u64);
        w.u32(rec.events.len() as u32);
        for e in &rec.events {
            write_event(w, e);
        }
        w.u32(rec.output.line);
        w.str(&rec.output.text);
        write_opt_sym(w, rec.output.value);
        w.strs(&rec.output.vars);
    }
    w.boolean(fp.truncated);
    w.u64(fp.pruned as u64);
}

fn read_function_paths(r: &mut Reader<'_>) -> R<FunctionPaths> {
    let name = r.str()?;
    let signature = r.str()?;
    let params = r.strs()?;
    let line = r.u32()?;
    let n_records = r.u32()? as usize;
    let mut records = Vec::with_capacity(n_records.min(4096));
    for _ in 0..n_records {
        let index = r.u64()? as usize;
        let n_events = r.u32()? as usize;
        let mut events = Vec::with_capacity(n_events.min(4096));
        for _ in 0..n_events {
            events.push(read_event(r)?);
        }
        let output = OutputRecord {
            line: r.u32()?,
            text: r.str()?,
            value: read_opt_sym(r)?,
            vars: r.strs()?,
        };
        records.push(PathRecord { index, events, output });
    }
    let truncated = r.boolean()?;
    let pruned = r.u64()? as usize;
    Ok(FunctionPaths { name, signature, params, line, records, truncated, pruned })
}

/// Serializes one function's extracted paths (a *function record*
/// payload). Unit-independent: the unit name lives in [`PathDb`], not
/// here, so identical functions in different units share one record.
///
/// [`PathDb`]: pallas_sym::PathDb
pub(crate) fn encode_function_paths(fp: &FunctionPaths) -> Vec<u8> {
    let mut w = Writer::default();
    write_function_paths(&mut w, fp);
    w.into_bytes()
}

/// Decodes a function record. Errors mean "recompute", never panic.
pub(crate) fn decode_function_paths(bytes: &[u8]) -> R<FunctionPaths> {
    let mut r = Reader::new(bytes);
    let fp = read_function_paths(&mut r)?;
    if !r.finished() {
        return bad("trailing bytes");
    }
    Ok(fp)
}

// ------------------------------------------------------------- warnings

fn write_warning(w: &mut Writer, warning: &Warning) {
    w.str(warning.rule.number());
    w.str(&warning.unit);
    w.str(&warning.function);
    w.u32(warning.line);
    w.str(&warning.message);
}

fn read_warning(r: &mut Reader<'_>) -> R<Warning> {
    let number = r.str()?;
    let Some(rule) = parse_rule(&number) else {
        return bad("unknown rule number");
    };
    Ok(Warning {
        rule,
        unit: r.str()?,
        function: r.str()?,
        line: r.u32()?,
        message: r.str()?,
    })
}

// ---------------------------------------------------------- unit record

/// Serializes a *unit record* payload: the content keys of the
/// function records making up the unit's path database (source order)
/// plus the unit's finished warnings.
pub(crate) fn encode_unit_record(function_keys: &[u64], warnings: &[Warning]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(function_keys.len() as u32);
    for &k in function_keys {
        w.u64(k);
    }
    w.u32(warnings.len() as u32);
    for warning in warnings {
        write_warning(&mut w, warning);
    }
    w.into_bytes()
}

/// Decodes a unit record into `(function_keys, warnings)`.
pub(crate) fn decode_unit_record(bytes: &[u8]) -> R<(Vec<u64>, Vec<Warning>)> {
    let mut r = Reader::new(bytes);
    let n_keys = r.u32()? as usize;
    let mut keys = Vec::with_capacity(n_keys.min(65536));
    for _ in 0..n_keys {
        keys.push(r.u64()?);
    }
    let n_warnings = r.u32()? as usize;
    let mut warnings = Vec::with_capacity(n_warnings.min(65536));
    for _ in 0..n_warnings {
        warnings.push(read_warning(&mut r)?);
    }
    if !r.finished() {
        return bad("trailing bytes");
    }
    Ok((keys, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_checkers::Rule;

    fn sample_function_paths() -> FunctionPaths {
        FunctionPaths {
            name: "get_page_fast".into(),
            signature: "int get_page_fast(gfp_t gfp_mask, int order)".into(),
            params: vec!["gfp_mask".into(), "order".into()],
            line: 12,
            records: vec![
                PathRecord {
                    index: 0,
                    events: vec![
                        Event::Decl { line: 13, name: "page".into(), has_init: false, depth: 0 },
                        Event::Cond {
                            line: 14,
                            text: "order == 0".into(),
                            symbolic: "(S#order) == (I#0)".into(),
                            vars: vec!["order".into()],
                            taken: Some(true),
                            depth: 0,
                        },
                        Event::State {
                            line: 15,
                            lvalue: "page".into(),
                            value: Sym::binary_raw(
                                BinOp::Add,
                                Sym::input("base"),
                                Sym::unary_raw(UnOp::Neg, Sym::int(-3)),
                            ),
                            text: "page = base + -(-3)".into(),
                            reads: vec!["base".into()],
                            depth: 0,
                        },
                        Event::Call {
                            line: 16,
                            callee: "prep_page".into(),
                            arg_vars: vec!["page".into()],
                            assigned_to: Some("rc".into()),
                            in_condition: false,
                            depth: 1,
                        },
                    ],
                    output: OutputRecord {
                        line: 17,
                        text: "page".into(),
                        value: Some(Sym::call(
                            "prep_page",
                            vec![Sym::temp(4), Sym::str_lit("tag"), Sym::unknown()],
                        )),
                        vars: vec!["page".into()],
                    },
                },
                PathRecord {
                    index: 1,
                    events: vec![],
                    output: OutputRecord {
                        line: 19,
                        text: String::new(),
                        value: None,
                        vars: vec![],
                    },
                },
            ],
            truncated: true,
            pruned: 7,
        }
    }

    #[test]
    fn function_paths_roundtrip_exactly() {
        let fp = sample_function_paths();
        let bytes = encode_function_paths(&fp);
        assert_eq!(decode_function_paths(&bytes).unwrap(), fp);
    }

    #[test]
    fn every_operator_roundtrips() {
        use BinOp::*;
        for op in [
            Add, Sub, Mul, Div, Rem, Shl, Shr, Lt, Gt, Le, Ge, Eq, Ne, BitAnd, BitXor,
            BitOr, And, Or,
        ] {
            let sym = Sym::binary_raw(op, Sym::input("a"), Sym::temp(1));
            let mut w = Writer::default();
            write_sym(&mut w, sym);
            let bytes = w.into_bytes();
            assert_eq!(read_sym(&mut Reader::new(&bytes)).unwrap(), sym);
        }
        for op in [
            UnOp::Neg,
            UnOp::Not,
            UnOp::BitNot,
            UnOp::Deref,
            UnOp::Addr,
            UnOp::PreInc,
            UnOp::PreDec,
            UnOp::PostInc,
            UnOp::PostDec,
        ] {
            let sym = Sym::unary_raw(op, Sym::int(i64::MIN));
            let mut w = Writer::default();
            write_sym(&mut w, sym);
            let bytes = w.into_bytes();
            assert_eq!(read_sym(&mut Reader::new(&bytes)).unwrap(), sym);
        }
    }

    #[test]
    fn unit_record_roundtrips() {
        let warnings = vec![
            Warning {
                rule: Rule::ImmutableOverwrite,
                unit: "mm/page_alloc".into(),
                function: "get_page_fast".into(),
                line: 42,
                message: "immutable `gfp_mask` overwritten".into(),
            },
            Warning {
                rule: Rule::FastPathExpensive,
                unit: "mm/page_alloc".into(),
                function: "slowish".into(),
                line: 7,
                message: "expensive call".into(),
            },
        ];
        let keys = vec![0xdead_beef, 0, u64::MAX];
        let bytes = encode_unit_record(&keys, &warnings);
        let (k, w) = decode_unit_record(&bytes).unwrap();
        assert_eq!(k, keys);
        assert_eq!(w, warnings);
    }

    #[test]
    fn malformed_payloads_error_instead_of_panicking() {
        let fp = sample_function_paths();
        let good = encode_function_paths(&fp);
        // Truncations at every prefix length must fail cleanly (or, for
        // the full length, succeed) — never panic.
        for cut in 0..good.len() {
            let _ = decode_function_paths(&good[..cut]);
        }
        // Unknown tags and trailing garbage are errors.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_function_paths(&trailing).is_err());
        assert!(decode_function_paths(&[0xFF; 16]).is_err());
        // A warning with an unregistered rule number is an error.
        let mut w = Writer::default();
        w.u32(0); // no function keys
        w.u32(1); // one warning
        w.str("9.9");
        w.str("u");
        w.str("f");
        w.u32(1);
        w.str("m");
        assert!(decode_unit_record(&w.into_bytes()).is_err());
    }

    #[test]
    fn random_bytes_never_panic_the_decoders() {
        // Tiny deterministic LCG fuzz over both decoders.
        let mut state = 0x1234_5678_u64;
        for len in 0..200usize {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bytes.push((state >> 33) as u8);
            }
            let _ = decode_function_paths(&bytes);
            let _ = decode_unit_record(&bytes);
        }
    }
}
