//! Source units and the merge step.
//!
//! The first step of the Pallas pipeline (paper §4): "it combines the
//! source codes of the target fast path and the relevant header files
//! into a single large file, as the Clang static analyzer cannot
//! execute inter-procedural analysis for multiple files."

use std::fmt;

/// A translation unit before merging: a named collection of source
/// files (headers first, then the implementation, by convention).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceUnit {
    /// Unit name used in reports, e.g. `mm/page_alloc`.
    pub name: String,
    /// `(file name, contents)` pairs in merge order.
    pub files: Vec<(String, String)>,
    /// Semantic spec text (the user's protocol input); inline
    /// `@pallas` pragmas in the sources merge on top of this.
    pub spec_text: String,
}

impl SourceUnit {
    /// Creates an empty unit.
    pub fn new(name: impl Into<String>) -> Self {
        SourceUnit { name: name.into(), ..SourceUnit::default() }
    }

    /// Adds a source file.
    pub fn with_file(mut self, name: impl Into<String>, contents: impl Into<String>) -> Self {
        self.files.push((name.into(), contents.into()));
        self
    }

    /// Sets the spec document.
    pub fn with_spec(mut self, spec_text: impl Into<String>) -> Self {
        self.spec_text = spec_text.into();
        self
    }

    /// Merges all files into one buffer, returning the merged source
    /// and a line index mapping merged lines back to their files.
    pub fn merge(&self) -> (String, MergeMap) {
        let mut merged = String::new();
        let mut map = MergeMap::default();
        for (name, contents) in &self.files {
            let start_line = merged.lines().count() as u32 + 1;
            merged.push_str(contents);
            if !merged.ends_with('\n') {
                merged.push('\n');
            }
            let end_line = merged.lines().count() as u32;
            map.spans.push(FileSpan { file: name.clone(), start_line, end_line });
        }
        (merged, map)
    }

    /// Total source line count across files.
    pub fn line_count(&self) -> usize {
        self.files.iter().map(|(_, c)| c.lines().count()).sum()
    }
}

/// Maps merged-buffer lines back to original files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeMap {
    spans: Vec<FileSpan>,
}

/// The merged-line range occupied by one file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileSpan {
    file: String,
    start_line: u32,
    end_line: u32,
}

impl MergeMap {
    /// Resolves a merged 1-based line to `(file name, file-local line)`.
    pub fn resolve(&self, merged_line: u32) -> Option<(&str, u32)> {
        self.spans
            .iter()
            .find(|s| merged_line >= s.start_line && merged_line <= s.end_line)
            .map(|s| (s.file.as_str(), merged_line - s.start_line + 1))
    }
}

impl fmt::Display for SourceUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit `{}` ({} files, {} lines)", self.name, self.files.len(), self.line_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_concatenates_in_order() {
        let unit = SourceUnit::new("u")
            .with_file("a.h", "int one;\n")
            .with_file("b.c", "int two;\nint three;\n");
        let (merged, map) = unit.merge();
        assert_eq!(merged, "int one;\nint two;\nint three;\n");
        assert_eq!(map.resolve(1), Some(("a.h", 1)));
        assert_eq!(map.resolve(2), Some(("b.c", 1)));
        assert_eq!(map.resolve(3), Some(("b.c", 2)));
        assert_eq!(map.resolve(99), None);
    }

    #[test]
    fn merge_adds_missing_trailing_newline() {
        let unit = SourceUnit::new("u").with_file("a.c", "int x;").with_file("b.c", "int y;");
        let (merged, _) = unit.merge();
        assert_eq!(merged, "int x;\nint y;\n");
    }

    #[test]
    fn line_count_sums_files() {
        let unit = SourceUnit::new("u").with_file("a", "1\n2\n").with_file("b", "3\n");
        assert_eq!(unit.line_count(), 3);
        assert!(unit.to_string().contains("2 files"));
    }
}
