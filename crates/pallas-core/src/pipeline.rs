//! The Pallas driver facade: merge → parse → spec → extract → check.
//!
//! [`Pallas`] is the stateless entry point kept for API compatibility;
//! every call delegates to a fresh staged [`Engine`](crate::Engine),
//! which owns the actual pipeline, the frontend cache, and the
//! work-stealing batch scheduler. Callers that check units repeatedly
//! should hold an `Engine` directly to benefit from caching.

use crate::engine::{default_jobs, Engine, StageTiming};
use crate::unit::{MergeMap, SourceUnit};
use pallas_checkers::{CheckerTiming, Warning};
use pallas_lang::{Ast, ParseError};
use pallas_spec::{FastPathSpec, SpecError};
use pallas_sym::{ExtractConfig, PathDb};
use std::fmt;
use std::time::Duration;

/// An error from analyzing a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PallasError {
    /// Unit the error occurred in.
    pub unit: String,
    /// What went wrong.
    pub kind: PallasErrorKind,
}

/// Error variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PallasErrorKind {
    /// The merged source failed to parse.
    Parse(ParseError),
    /// The spec document or an inline pragma failed to parse.
    Spec(SpecError),
    /// The analysis itself panicked; the batch schedulers confine the
    /// panic to the offending unit and report its message here.
    Internal(String),
}

impl fmt::Display for PallasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            PallasErrorKind::Parse(e) => write!(f, "unit `{}`: {e}", self.unit),
            PallasErrorKind::Spec(e) => write!(f, "unit `{}`: {e}", self.unit),
            PallasErrorKind::Internal(msg) => {
                write!(f, "unit `{}`: internal error: {msg}", self.unit)
            }
        }
    }
}

impl std::error::Error for PallasError {}

/// The result of analyzing one unit.
#[derive(Debug, Clone)]
pub struct AnalyzedUnit {
    /// Unit name.
    pub name: String,
    /// Merged source text.
    pub merged_src: String,
    /// Merged-line → file mapping.
    pub merge_map: MergeMap,
    /// Parsed AST of the merged unit, shared with the engine's frontend
    /// cache — a warm check hands out another reference instead of
    /// deep-cloning the tree.
    pub ast: std::sync::Arc<Ast>,
    /// Extracted path database, shared like [`ast`](Self::ast).
    pub db: std::sync::Arc<PathDb>,
    /// Effective spec (document + inline pragmas).
    pub spec: FastPathSpec,
    /// Checker warnings, sorted and deduplicated.
    pub warnings: Vec<Warning>,
    /// Spec lint findings (dead or contradictory annotations).
    pub lint: Vec<pallas_spec::LintIssue>,
    /// Wall-clock time spent on this unit.
    pub elapsed: Duration,
    /// Per-stage timings in pipeline order; cached stages carry
    /// `cached: true` and zero elapsed time.
    pub stage_timings: Vec<StageTiming>,
    /// Per-checker-family timings from the Check stage.
    pub checker_timings: Vec<CheckerTiming>,
}

impl AnalyzedUnit {
    /// Warnings of one rule.
    pub fn warnings_for(&self, rule: pallas_checkers::Rule) -> Vec<&Warning> {
        self.warnings.iter().filter(|w| w.rule == rule).collect()
    }

    /// Whether any frontend stage was served from the engine cache.
    pub fn from_cache(&self) -> bool {
        self.stage_timings.iter().any(|t| t.cached)
    }
}

/// The Pallas toolkit driver.
///
/// Holds the extraction configuration; `check_*` methods run the whole
/// staged pipeline over units through a one-shot [`Engine`]. Because
/// the engine is created per call, no frontend caching happens across
/// `Pallas` calls — use [`Engine`] directly for that.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pallas {
    config: ExtractConfig,
}

impl Pallas {
    /// Creates a driver with the default configuration
    /// (loop unrolling 1, callee inlining depth 1, 4096-path cap).
    pub fn new() -> Self {
        Pallas::default()
    }

    /// Overrides the extraction configuration.
    pub fn with_config(mut self, config: ExtractConfig) -> Self {
        self.config = config;
        self
    }

    /// The current extraction configuration.
    pub fn config(&self) -> &ExtractConfig {
        &self.config
    }

    /// A staged engine configured like this driver. Hold onto it to
    /// reuse cached frontends across calls.
    pub fn engine(&self) -> Engine {
        Engine::with_config(self.config)
    }

    /// Runs the full pipeline on one unit.
    ///
    /// # Errors
    ///
    /// Returns [`PallasError`] if the merged source or the spec fails
    /// to parse.
    pub fn check_unit(&self, unit: &SourceUnit) -> Result<AnalyzedUnit, PallasError> {
        self.engine().check_unit(unit)
    }

    /// Convenience wrapper: a single in-memory source plus spec text.
    pub fn check_source(
        &self,
        name: &str,
        src: &str,
        spec_text: &str,
    ) -> Result<AnalyzedUnit, PallasError> {
        self.engine().check_source(name, src, spec_text)
    }

    /// Checks many units in parallel with work stealing across the
    /// host's cores, preserving input order in the output. A unit
    /// whose analysis panics yields [`PallasErrorKind::Internal`] for
    /// that unit only.
    pub fn check_many(&self, units: &[SourceUnit]) -> Vec<Result<AnalyzedUnit, PallasError>> {
        self.engine().check_many_jobs(units, default_jobs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pallas_checkers::Rule;

    const BUGGY: &str = "\
typedef unsigned int gfp_t;
int noio(gfp_t m);
int alloc_fast(gfp_t gfp_mask) {
  gfp_mask = noio(gfp_mask);
  return 0;
}";

    #[test]
    fn end_to_end_single_source() {
        let report = Pallas::new()
            .check_source("mm", BUGGY, "fastpath alloc_fast; immutable gfp_mask;")
            .unwrap();
        assert_eq!(report.warnings.len(), 1);
        assert_eq!(report.warnings[0].rule, Rule::ImmutableOverwrite);
        assert_eq!(report.warnings_for(Rule::ImmutableOverwrite).len(), 1);
        assert_eq!(report.warnings_for(Rule::FaultMissing).len(), 0);
    }

    #[test]
    fn inline_pragmas_merge_with_spec() {
        let src = "\
/* @pallas immutable gfp_mask; */
typedef unsigned int gfp_t;
int noio(gfp_t m);
int alloc_fast(gfp_t gfp_mask) {
  gfp_mask = noio(gfp_mask);
  return 0;
}";
        let report = Pallas::new().check_source("mm", src, "fastpath alloc_fast;").unwrap();
        assert_eq!(report.warnings.len(), 1);
        assert!(report.spec.immutable.contains(&"gfp_mask".to_string()));
    }

    #[test]
    fn multi_file_unit_merges_headers() {
        let unit = SourceUnit::new("net/demo")
            .with_file("demo.h", "typedef unsigned int gfp_t;\nint noio(gfp_t m);\n")
            .with_file("demo.c", "int alloc_fast(gfp_t gfp_mask) {\n  gfp_mask = noio(gfp_mask);\n  return 0;\n}\n")
            .with_spec("fastpath alloc_fast; immutable gfp_mask;");
        let report = Pallas::new().check_unit(&unit).unwrap();
        assert_eq!(report.warnings.len(), 1);
        // The warning's merged line resolves into demo.c.
        let (file, local) = report.merge_map.resolve(report.warnings[0].line).unwrap();
        assert_eq!(file, "demo.c");
        assert_eq!(local, 2);
    }

    #[test]
    fn parse_errors_are_reported_with_unit() {
        let err = Pallas::new().check_source("bad", "int f( {", "").unwrap_err();
        assert_eq!(err.unit, "bad");
        assert!(matches!(err.kind, PallasErrorKind::Parse(_)));
    }

    #[test]
    fn spec_errors_are_reported_with_unit() {
        let err = Pallas::new()
            .check_source("bad", "int f(void) { return 0; }", "bogus keyword;")
            .unwrap_err();
        assert!(matches!(err.kind, PallasErrorKind::Spec(_)));
    }

    #[test]
    fn bad_inline_pragma_is_a_spec_error() {
        let err = Pallas::new()
            .check_source("bad", "/* @pallas nonsense here; */ int f(void) { return 0; }", "")
            .unwrap_err();
        assert!(matches!(err.kind, PallasErrorKind::Spec(_)));
    }

    #[test]
    fn check_many_preserves_order() {
        let units: Vec<SourceUnit> = (0..8)
            .map(|i| {
                SourceUnit::new(format!("u{i}"))
                    .with_file("f.c", format!("int f{i}(int x) {{ return x + {i}; }}"))
                    .with_spec(format!("fastpath f{i};"))
            })
            .collect();
        let results = Pallas::new().check_many(&units);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().name, format!("u{i}"));
        }
    }

    #[test]
    fn clean_unit_has_no_warnings() {
        let report = Pallas::new()
            .check_source(
                "ok",
                "int fast(int order) { if (order == 0) return 1; return 0; }",
                "fastpath fast; cond order0: order; returns 0, 1;",
            )
            .unwrap();
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn elapsed_time_recorded() {
        // `elapsed` can legitimately round to zero on coarse clocks, so
        // assert the robust invariant: every stage reported a timing.
        let report = Pallas::new().check_source("t", "int f(void) { return 0; }", "").unwrap();
        assert_eq!(report.stage_timings.len(), 5);
        assert!(!report.from_cache(), "one-shot drivers start cold");
    }

    #[test]
    fn internal_errors_render_with_unit_and_message() {
        let err = PallasError {
            unit: "mm/slab".into(),
            kind: PallasErrorKind::Internal("index out of bounds".into()),
        };
        assert_eq!(err.to_string(), "unit `mm/slab`: internal error: index out of bounds");
    }
}
