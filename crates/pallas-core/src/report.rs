//! Textual reports over analyzed units.

use crate::engine::{EngineStats, Stage};
use crate::pipeline::AnalyzedUnit;
use pallas_checkers::Rule;
use pallas_spec::ElementClass;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders warnings as tab-separated values for machine consumption:
/// `unit, rule, class, function, file, line, message` per row.
pub fn render_tsv(unit: &AnalyzedUnit) -> String {
    let mut out = String::from("unit\trule\tclass\tfunction\tfile\tline\tmessage\n");
    for w in &unit.warnings {
        let (file, line) = unit
            .merge_map
            .resolve(w.line)
            .map(|(f, l)| (f.to_string(), l))
            .unwrap_or_else(|| ("<merged>".to_string(), w.line));
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            w.unit,
            w.rule.number(),
            w.rule.class(),
            w.function,
            file,
            line,
            w.message
        );
    }
    out
}

/// Renders a human-readable report for one analyzed unit: the spec
/// facts consumed, path-database statistics, and warnings grouped by
/// element class.
pub fn render_unit_report(unit: &AnalyzedUnit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Pallas report: {} ===", unit.name);
    let _ = writeln!(
        out,
        "spec: {} fact(s); fast path(s): {}",
        unit.spec.fact_count(),
        if unit.spec.fastpath.is_empty() { "-".to_string() } else { unit.spec.fastpath.join(", ") }
    );
    // Deliberately timing-free: the report must be byte-identical for
    // identical inputs (daemon responses are compared against one-shot
    // output); wall-clock detail lives in `render_stage_stats`.
    let _ = writeln!(
        out,
        "path database: {} function(s), {} path(s)",
        unit.db.functions.len(),
        unit.db.path_count(),
    );
    let (loops, nesting) = unit
        .ast
        .functions()
        .map(|f| pallas_cfg::loop_stats(&pallas_cfg::build_cfg(&unit.ast, f)))
        .fold((0, 0), |(l, n), (fl, fn_)| (l + fl, n.max(fn_)));
    if loops > 0 {
        let _ = writeln!(out, "structure: {loops} loop(s), max nesting {nesting} (bounded unrolling applies)");
    }
    for issue in &unit.lint {
        let _ = writeln!(out, "{issue}");
    }
    if unit.warnings.is_empty() {
        let _ = writeln!(out, "no warnings.");
        return out;
    }
    let _ = writeln!(out, "{} warning(s):", unit.warnings.len());
    for class in ElementClass::ALL {
        let in_class: Vec<_> =
            unit.warnings.iter().filter(|w| w.rule.class() == class).collect();
        if in_class.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  [{class}]");
        for w in in_class {
            let location = match unit.merge_map.resolve(w.line) {
                Some((file, line)) => format!("{file}:{line}"),
                None => format!("line {}", w.line),
            };
            let _ = writeln!(
                out,
                "    {} {} ({location}, `{}`): {}",
                w.rule,
                w.rule.finding(),
                w.function,
                w.message
            );
        }
    }
    out
}

/// Renders one unit's per-stage and per-checker timing breakdown.
pub fn render_stage_stats(unit: &AnalyzedUnit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "--- stages: {} ---", unit.name);
    for t in &unit.stage_timings {
        let note = if t.cached { " (cached)" } else { "" };
        let _ = writeln!(out, "  {:<8} {:>12?}{note}", t.stage.name(), t.elapsed);
    }
    for t in &unit.checker_timings {
        let _ = writeln!(
            out,
            "  check/{:<24} {:>12?}  {} warning(s)",
            t.name, t.elapsed, t.warnings
        );
    }
    out
}

/// Escapes `s` as the contents of a JSON string literal (quotes not
/// included), appending to `out`. Control characters, `"`, and `\` are
/// escaped; everything else passes through as UTF-8. The appending form
/// is the primitive: render paths that emit many findings reuse one
/// buffer instead of allocating a `String` per field.
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Allocating convenience wrapper over [`json_escape_into`].
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    json_escape_into(&mut out, s);
    out
}

/// One warning as a single-line JSON object. This is *the* finding
/// serializer: `pallas check --json` emits these lines and the
/// `pallas-service` daemon embeds the same bytes in its responses, so
/// the two surfaces can never drift apart.
///
/// Schema (field order is fixed):
/// `{"type":"finding","unit":s,"rule":s,"class":s,"function":s,"file":s,"line":n,"message":s}`
pub fn finding_json(unit: &AnalyzedUnit, w: &pallas_checkers::Warning) -> String {
    let mut out = String::new();
    finding_json_into(&mut out, unit, w);
    out
}

/// Appends one warning's finding object ([`finding_json`]) to `out`,
/// escaping fields in place — no intermediate strings.
pub fn finding_json_into(out: &mut String, unit: &AnalyzedUnit, w: &pallas_checkers::Warning) {
    out.push_str("{\"type\":\"finding\",\"unit\":\"");
    json_escape_into(out, &w.unit);
    out.push_str("\",\"rule\":\"");
    out.push_str(w.rule.number());
    out.push_str("\",\"class\":\"");
    json_escape_into(out, &w.rule.class().to_string());
    out.push_str("\",\"function\":\"");
    json_escape_into(out, &w.function);
    out.push_str("\",\"file\":\"");
    match unit.merge_map.resolve(w.line) {
        Some((file, line)) => {
            json_escape_into(out, file);
            let _ = write!(out, "\",\"line\":{line}");
        }
        None => {
            let _ = write!(out, "<merged>\",\"line\":{}", w.line);
        }
    }
    out.push_str(",\"message\":\"");
    json_escape_into(out, &w.message);
    out.push_str("\"}");
}

/// Renders one analyzed unit as NDJSON: one `finding` object per
/// warning ([`finding_json`]), one `lint` object per spec lint issue,
/// and a trailing `unit` summary object. Every field is deterministic
/// (no timings), so the output is byte-stable across runs and safe to
/// pin with golden files.
pub fn render_ndjson(unit: &AnalyzedUnit) -> String {
    let mut out = String::new();
    render_ndjson_into(&mut out, unit);
    out
}

/// Appends [`render_ndjson`]'s output to `out`. Callers that render
/// many units (the daemon, benchmarks) clear and reuse one buffer
/// across calls instead of allocating a fresh `String` per unit; the
/// bytes appended are identical to `render_ndjson`'s.
pub fn render_ndjson_into(out: &mut String, unit: &AnalyzedUnit) {
    for w in &unit.warnings {
        finding_json_into(out, unit, w);
        out.push('\n');
    }
    for issue in &unit.lint {
        out.push_str("{\"type\":\"lint\",\"unit\":\"");
        json_escape_into(out, &unit.name);
        out.push_str("\",\"message\":\"");
        json_escape_into(out, &issue.to_string());
        out.push_str("\"}\n");
    }
    out.push_str("{\"type\":\"unit\",\"unit\":\"");
    json_escape_into(out, &unit.name);
    let _ = writeln!(
        out,
        "\",\"functions\":{},\"paths\":{},\"warnings\":{},\"lint\":{}}}",
        unit.db.functions.len(),
        unit.db.path_count(),
        unit.warnings.len(),
        unit.lint.len(),
    );
}

/// Renders an engine's cumulative counters: units checked, cache
/// behaviour (memory and disk layers in one labelled table), and
/// per-stage invocation counts with total time.
pub fn render_engine_stats(stats: &EngineStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== engine: {} unit-check(s), {} cache hit(s), {} miss(es), {} eviction(s) ===",
        stats.units_checked, stats.cache_hits, stats.cache_misses, stats.cache_evictions
    );
    let _ = writeln!(
        out,
        "  {:<7} {:>8} {:>8} {:>8}  residency",
        "cache:", "hit(s)", "miss(es)", "stale"
    );
    let _ = writeln!(
        out,
        "  {:<7} {:>8} {:>8} {:>8}  {}/{} frontend(s) resident",
        "memory",
        stats.cache_hits,
        stats.cache_misses,
        "-",
        stats.cached_frontends,
        stats.cache_capacity
    );
    if stats.store_enabled {
        let _ = writeln!(
            out,
            "  {:<7} {:>8} {:>8} {:>8}  {} unit(s) + {} function(s), {} byte(s)",
            "disk",
            stats.store_unit_hits,
            stats.store_unit_misses,
            stats.store_unit_stale,
            stats.store_units_resident,
            stats.store_functions_resident,
            stats.store_file_bytes
        );
        let _ = writeln!(
            out,
            "  {:<7} {:>8} {:>8} {:>8}  {} compaction(s)",
            "  func",
            stats.store_func_hits,
            stats.store_func_misses,
            stats.store_func_stale,
            stats.store_compactions
        );
    } else {
        let _ = writeln!(
            out,
            "  {:<7} {:>8} {:>8} {:>8}  (no store configured)",
            "disk", "-", "-", "-"
        );
    }
    let _ = writeln!(
        out,
        "  paths: {} enumerated, {} arm(s) pruned as infeasible",
        stats.paths_enumerated, stats.paths_pruned
    );
    let _ = writeln!(
        out,
        "  loops: {} summarized, {} binding(s) havocked at loop exits",
        stats.loops_summarized, stats.vars_havocked
    );
    for stage in Stage::ALL {
        let _ = writeln!(
            out,
            "  {:<8} {:>6} run(s)  {:>12?} total",
            stage.name(),
            stats.stage_runs(stage),
            stats.stage_total(stage)
        );
    }
    out
}

/// Per-rule warning counts across many units (one Table 1 cell set).
pub fn warning_counts_by_rule(units: &[&AnalyzedUnit]) -> BTreeMap<Rule, usize> {
    let mut counts = BTreeMap::new();
    for unit in units {
        for w in &unit.warnings {
            *counts.entry(w.rule).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pallas;

    fn analyzed() -> AnalyzedUnit {
        Pallas::new()
            .check_source(
                "mm/demo",
                "typedef unsigned int gfp_t;\n\
                 int noio(gfp_t m);\n\
                 int alloc_fast(gfp_t gfp_mask) {\n\
                   gfp_mask = noio(gfp_mask);\n\
                   return 0;\n\
                 }",
                "fastpath alloc_fast; immutable gfp_mask; fault ENOSPC;",
            )
            .unwrap()
    }

    #[test]
    fn report_contains_warnings_grouped_by_class() {
        let unit = analyzed();
        let report = render_unit_report(&unit);
        assert!(report.contains("Pallas report: mm/demo"));
        assert!(report.contains("[Path State]"));
        assert!(report.contains("[Fault Handling]"));
        assert!(report.contains("immutable"));
    }

    #[test]
    fn clean_unit_reports_no_warnings() {
        let unit = Pallas::new()
            .check_source("ok", "int f(void) { return 0; }", "fastpath f;")
            .unwrap();
        assert!(render_unit_report(&unit).contains("no warnings."));
    }

    #[test]
    fn tsv_export_has_header_and_rows() {
        let unit = analyzed();
        let tsv = render_tsv(&unit);
        let lines: Vec<&str> = tsv.lines().collect();
        assert!(lines[0].starts_with("unit\trule"));
        assert_eq!(lines.len(), 1 + unit.warnings.len());
        // Warnings export in source order: the 4.1 finding at line 3
        // precedes the 1.2 finding at line 4.
        assert!(lines[1].contains("4.1"));
        assert!(lines[2].contains("1.2"));
        assert!(lines[1].contains("mm/demo.c"));
    }

    #[test]
    fn loop_structure_reported() {
        let unit = Pallas::new()
            .check_source(
                "loopy",
                "int f(int n) { while (n) { n--; } return n; }",
                "fastpath f;",
            )
            .unwrap();
        assert!(render_unit_report(&unit).contains("1 loop(s)"));
    }

    #[test]
    fn stage_stats_list_every_stage_and_checker() {
        let unit = analyzed();
        let stats = render_stage_stats(&unit);
        for stage in Stage::ALL {
            assert!(stats.contains(stage.name()), "missing {stage} in:\n{stats}");
        }
        assert!(stats.contains("check/"), "{stats}");
    }

    #[test]
    fn engine_stats_report_cache_behaviour() {
        let engine = crate::engine::Engine::new();
        let unit = crate::unit::SourceUnit::new("t")
            .with_file("t.c", "int f(void) { return 0; }")
            .with_spec("fastpath f;");
        engine.check_unit(&unit).unwrap();
        engine.check_unit(&unit).unwrap();
        let text = render_engine_stats(&engine.stats());
        assert!(text.contains("2 unit-check(s), 1 cache hit(s), 1 miss(es)"), "{text}");
        assert!(text.contains("extract"), "{text}");
        assert!(text.contains("(no store configured)"), "{text}");
    }

    #[test]
    fn engine_stats_report_renders_the_disk_cache_rows() {
        let stats = crate::engine::EngineStats {
            units_checked: 3,
            cache_misses: 3,
            store_enabled: true,
            store_unit_hits: 1,
            store_unit_misses: 1,
            store_unit_stale: 1,
            store_func_hits: 4,
            store_func_misses: 2,
            store_func_stale: 1,
            store_units_resident: 3,
            store_functions_resident: 7,
            store_file_bytes: 4096,
            store_compactions: 1,
            ..Default::default()
        };
        let text = render_engine_stats(&stats);
        assert!(text.contains("memory"), "{text}");
        assert!(text.contains("disk"), "{text}");
        assert!(text.contains("3 unit(s) + 7 function(s), 4096 byte(s)"), "{text}");
        assert!(text.contains("1 compaction(s)"), "{text}");
        assert!(!text.contains("(no store configured)"), "{text}");
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn ndjson_lists_findings_then_summary() {
        let unit = analyzed();
        let text = render_ndjson(&unit);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), unit.warnings.len() + unit.lint.len() + 1);
        assert!(lines[0].starts_with("{\"type\":\"finding\",\"unit\":\"mm/demo\""), "{text}");
        // Source order: the 4.1 finding at line 3 comes first.
        assert!(lines[0].contains("\"rule\":\"4.1\""), "{text}");
        assert!(lines[1].contains("\"rule\":\"1.2\""), "{text}");
        assert!(lines[0].contains("\"file\":\"mm/demo.c\""), "{text}");
        let last = lines.last().unwrap();
        assert!(last.starts_with("{\"type\":\"unit\""), "{text}");
        assert!(last.contains(&format!("\"warnings\":{}", unit.warnings.len())), "{text}");
    }

    #[test]
    fn ndjson_is_deterministic_across_runs() {
        assert_eq!(render_ndjson(&analyzed()), render_ndjson(&analyzed()));
    }

    #[test]
    fn reused_buffer_rendering_is_byte_identical() {
        // The daemon and benchmarks render through one reused buffer;
        // the appended bytes must match the allocating path exactly.
        let unit = analyzed();
        let mut buf = String::from("stale contents from a previous unit");
        buf.clear();
        render_ndjson_into(&mut buf, &unit);
        assert_eq!(buf, render_ndjson(&unit));
        for w in &unit.warnings {
            buf.clear();
            finding_json_into(&mut buf, &unit, w);
            assert_eq!(buf, finding_json(&unit, w));
        }
    }

    #[test]
    fn counts_by_rule_aggregate() {
        let unit = analyzed();
        let counts = warning_counts_by_rule(&[&unit]);
        assert_eq!(counts.get(&Rule::ImmutableOverwrite), Some(&1));
        assert_eq!(counts.get(&Rule::FaultMissing), Some(&1));
        assert_eq!(counts.values().sum::<usize>(), unit.warnings.len());
    }
}
