//! Ground truth and warning scoring.
//!
//! Every corpus unit ships the list of bugs known to be present (the
//! paper's manual-validation step, made machine-checkable). Scoring a
//! unit's warnings against its ground truth yields the validated-bug /
//! warning split of Table 1's last column and the paper's 69% accuracy
//! figure.

use pallas_checkers::{Rule, Warning};
use std::fmt;

/// A bug known to exist in a corpus unit.
#[derive(Debug, Clone, PartialEq)]
pub struct KnownBug {
    /// Stable identifier, e.g. `mm/page_alloc#gfp-overwrite`.
    pub id: String,
    /// The rule whose checker should catch it.
    pub rule: Rule,
    /// Function the bug lives in.
    pub function: String,
    /// Short description for reports (Table 7's "Error" column).
    pub description: String,
    /// Observed consequence (Table 7's "Consequence" column).
    pub consequence: String,
    /// Latent period in years (`None` where the tracker has no dates,
    /// as for Chromium in the paper).
    pub latent_years: Option<f32>,
    /// Whether Pallas is expected to detect the bug. The one `false`
    /// entry in the corpus is Table 8's semantic-exception miss (a
    /// page-state value only known at runtime).
    pub detectable: bool,
}

impl KnownBug {
    /// Creates a detectable bug record.
    pub fn new(
        id: impl Into<String>,
        rule: Rule,
        function: impl Into<String>,
        description: impl Into<String>,
        consequence: impl Into<String>,
    ) -> Self {
        KnownBug {
            id: id.into(),
            rule,
            function: function.into(),
            description: description.into(),
            consequence: consequence.into(),
            latent_years: None,
            detectable: true,
        }
    }

    /// Sets the latent period.
    pub fn with_latent_years(mut self, years: f32) -> Self {
        self.latent_years = Some(years);
        self
    }

    /// Marks the bug as undetectable by static analysis (Table 8's
    /// semantic exception).
    pub fn undetectable(mut self) -> Self {
        self.detectable = false;
        self
    }

    /// Whether a warning matches this bug (same rule, same function).
    pub fn matches(&self, w: &Warning) -> bool {
        self.rule == w.rule && self.function == w.function
    }
}

/// The scoring of one unit's warnings against its ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Score {
    /// Warnings matching a known bug (validated bugs, Table 1's "B").
    pub true_positives: Vec<Warning>,
    /// Warnings matching no known bug (Table 1's `W − B`).
    pub false_positives: Vec<Warning>,
    /// Detectable known bugs no warning matched (Table 8 misses).
    pub missed: Vec<KnownBug>,
    /// Known bugs marked undetectable (expected misses).
    pub expected_misses: Vec<KnownBug>,
}

impl Score {
    /// Total warnings emitted.
    pub fn warning_count(&self) -> usize {
        self.true_positives.len() + self.false_positives.len()
    }

    /// Validated-bug count.
    pub fn bug_count(&self) -> usize {
        self.true_positives.len()
    }

    /// Warning accuracy: validated bugs / warnings (the paper reports
    /// 69%). Returns `None` when no warnings were emitted.
    pub fn accuracy(&self) -> Option<f64> {
        if self.warning_count() == 0 {
            None
        } else {
            Some(self.bug_count() as f64 / self.warning_count() as f64)
        }
    }

    /// Merges another score into this one (for whole-corpus totals).
    pub fn merge(&mut self, other: Score) {
        self.true_positives.extend(other.true_positives);
        self.false_positives.extend(other.false_positives);
        self.missed.extend(other.missed);
        self.expected_misses.extend(other.expected_misses);
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} warnings, {} validated bugs, {} false positives, {} missed",
            self.warning_count(),
            self.bug_count(),
            self.false_positives.len(),
            self.missed.len()
        )?;
        if let Some(acc) = self.accuracy() {
            write!(f, " (accuracy {:.0}%)", acc * 100.0)?;
        }
        Ok(())
    }
}

/// Scores warnings against the ground truth.
///
/// Each warning is a true positive if *some* known bug matches it;
/// each detectable known bug is missed if *no* warning matches it.
/// (Several warnings may validate the same bug — the paper counts
/// validated warnings, so we do too.)
pub fn score(warnings: &[Warning], truth: &[KnownBug]) -> Score {
    let mut s = Score::default();
    for w in warnings {
        if truth.iter().any(|b| b.detectable && b.matches(w)) {
            s.true_positives.push(w.clone());
        } else {
            s.false_positives.push(w.clone());
        }
    }
    for b in truth {
        if !b.detectable {
            s.expected_misses.push(b.clone());
        } else if !warnings.iter().any(|w| b.matches(w)) {
            s.missed.push(b.clone());
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warning(rule: Rule, function: &str) -> Warning {
        Warning {
            rule,
            unit: "u".into(),
            function: function.into(),
            line: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn matching_warning_is_true_positive() {
        let truth = vec![KnownBug::new("b1", Rule::FaultMissing, "f", "d", "crash")];
        let ws = vec![warning(Rule::FaultMissing, "f")];
        let s = score(&ws, &truth);
        assert_eq!(s.bug_count(), 1);
        assert!(s.false_positives.is_empty());
        assert!(s.missed.is_empty());
        assert_eq!(s.accuracy(), Some(1.0));
    }

    #[test]
    fn unmatched_warning_is_false_positive() {
        let truth = vec![KnownBug::new("b1", Rule::FaultMissing, "f", "d", "crash")];
        let ws = vec![warning(Rule::FaultMissing, "g")];
        let s = score(&ws, &truth);
        assert_eq!(s.bug_count(), 0);
        assert_eq!(s.false_positives.len(), 1);
        assert_eq!(s.missed.len(), 1);
        assert_eq!(s.accuracy(), Some(0.0));
    }

    #[test]
    fn undetectable_bug_is_expected_miss() {
        let truth =
            vec![KnownBug::new("b1", Rule::OutputDefined, "f", "d", "loss").undetectable()];
        let s = score(&[], &truth);
        assert!(s.missed.is_empty());
        assert_eq!(s.expected_misses.len(), 1);
        assert_eq!(s.accuracy(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = score(
            &[warning(Rule::CondMissing, "f")],
            &[KnownBug::new("b", Rule::CondMissing, "f", "d", "perf")],
        );
        let b = score(&[warning(Rule::CondMissing, "g")], &[]);
        a.merge(b);
        assert_eq!(a.warning_count(), 2);
        assert_eq!(a.bug_count(), 1);
        assert_eq!(a.accuracy(), Some(0.5));
        assert!(a.to_string().contains("2 warnings"));
    }

    #[test]
    fn rule_must_match_not_just_function() {
        let truth = vec![KnownBug::new("b1", Rule::FaultMissing, "f", "d", "crash")];
        let ws = vec![warning(Rule::CondMissing, "f")];
        let s = score(&ws, &truth);
        assert_eq!(s.bug_count(), 0);
        assert_eq!(s.false_positives.len(), 1);
    }
}
