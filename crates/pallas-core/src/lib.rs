//! # pallas-core
//!
//! The Pallas toolkit driver: the four-step pipeline of the paper's §4
//! (merge sources into one unit → build the control-flow/path database
//! → take the user's semantic spec → filter every execution path
//! through the rule checkers), plus warning reports and ground-truth
//! scoring for the evaluation harness.
//!
//! ```
//! use pallas_core::Pallas;
//!
//! # fn main() -> Result<(), pallas_core::PallasError> {
//! let report = Pallas::new().check_source(
//!     "mm/page_alloc",
//!     "typedef unsigned int gfp_t;\n\
//!      int noio(gfp_t m);\n\
//!      int alloc_fast(gfp_t gfp_mask) { gfp_mask = noio(gfp_mask); return 0; }",
//!     "fastpath alloc_fast; immutable gfp_mask;",
//! )?;
//! assert_eq!(report.warnings.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod pipeline;
pub mod report;
pub mod truth;
pub mod unit;

pub use engine::{Engine, EngineConfig, EngineStats, Stage, StageTiming, STORE_FORMAT_VERSION};
pub use pipeline::{AnalyzedUnit, Pallas, PallasError, PallasErrorKind};
pub use report::{
    finding_json, finding_json_into, json_escape, json_escape_into, render_engine_stats,
    render_ndjson, render_ndjson_into, render_stage_stats, render_tsv, render_unit_report,
    warning_counts_by_rule,
};
pub use truth::{score, KnownBug, Score};
pub use unit::{MergeMap, SourceUnit};
