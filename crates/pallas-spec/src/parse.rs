//! Parser for the Pallas specification DSL.
//!
//! The DSL is statement-oriented; statements end with `;` and `#`
//! starts a comment. It is deliberately tiny — the paper's claim is
//! that the semantic input fits in "a few lines of code":
//!
//! ```text
//! unit mm/page_alloc;
//! fastpath get_page_fast;
//! slowpath __alloc_pages_slowpath;
//! immutable gfp_mask, nodemask;
//! correlated preferred_zone -> nodemask;
//! cond order0: order;
//! order remote before oom;
//! returns 0, -12, ENOMEM;
//! match_slow_return;
//! check_return;
//! fault ENOSPC;
//! assist struct inet_cork;
//! cache icache for inode;
//! ```

use crate::spec::{CacheSpec, CondSpec, FastPathSpec, RetValue};
use std::fmt;

/// An error produced while parsing a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number in the spec text.
    pub line: u32,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parses a complete spec document.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the offending line on malformed input.
pub fn parse_spec(text: &str) -> Result<FastPathSpec, SpecError> {
    let mut spec = FastPathSpec::default();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_stmt(stmt, line_no, &mut spec)?;
        }
    }
    Ok(spec)
}

/// Parses a single pragma body (the text after `@pallas` in a source
/// comment) into a spec fragment. Several pragmas merge via
/// [`FastPathSpec::merge`].
pub fn parse_pragma(body: &str) -> Result<FastPathSpec, SpecError> {
    parse_spec(body)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn err(line: u32, msg: impl Into<String>) -> SpecError {
    SpecError { message: msg.into(), line }
}

fn parse_stmt(stmt: &str, line: u32, spec: &mut FastPathSpec) -> Result<(), SpecError> {
    let (kw, rest) = match stmt.split_once(char::is_whitespace) {
        Some((k, r)) => (k, r.trim()),
        None => (stmt, ""),
    };
    match kw {
        "unit" => {
            if rest.is_empty() {
                return Err(err(line, "unit requires a name"));
            }
            spec.unit = rest.to_string();
        }
        "fastpath" => {
            for name in split_list(rest) {
                spec.fastpath.push(name);
            }
            if spec.fastpath.is_empty() {
                return Err(err(line, "fastpath requires at least one function name"));
            }
        }
        "slowpath" => {
            for name in split_list(rest) {
                spec.slowpath.push(name);
            }
        }
        "immutable" => {
            let vars = split_list(rest);
            if vars.is_empty() {
                return Err(err(line, "immutable requires at least one variable"));
            }
            spec.immutable.extend(vars);
        }
        "correlated" => {
            let (x, y) = rest
                .split_once("->")
                .ok_or_else(|| err(line, "correlated requires `X -> Y`"))?;
            spec.correlated.push((x.trim().to_string(), y.trim().to_string()));
        }
        "cond" => {
            let (name, vars) = rest
                .split_once(':')
                .ok_or_else(|| err(line, "cond requires `name: var, ...`"))?;
            let vars = split_list(vars);
            if vars.is_empty() {
                return Err(err(line, "cond requires at least one variable"));
            }
            spec.conds.push(CondSpec { name: name.trim().to_string(), vars });
        }
        "order" => {
            let (a, b) = rest
                .split_once(" before ")
                .ok_or_else(|| err(line, "order requires `X before Y`"))?;
            spec.orders.push((a.trim().to_string(), b.trim().to_string()));
        }
        "returns" => {
            let values = split_list(rest);
            if values.is_empty() {
                return Err(err(line, "returns requires at least one value"));
            }
            for v in values {
                match v.parse::<i64>() {
                    Ok(i) => spec.returns.push(RetValue::Int(i)),
                    Err(_) => spec.returns.push(RetValue::Name(v)),
                }
            }
        }
        "match_slow_return" => spec.match_slow_return = true,
        "check_return" => spec.check_return = true,
        "fault" => {
            let faults = split_list(rest);
            if faults.is_empty() {
                return Err(err(line, "fault requires at least one state name"));
            }
            spec.faults.extend(faults);
        }
        "assist" => {
            let name = rest
                .strip_prefix("struct")
                .map(str::trim)
                .unwrap_or(rest);
            if name.is_empty() {
                return Err(err(line, "assist requires a struct name"));
            }
            spec.assist_structs.push(name.to_string());
        }
        "cache" => {
            let (cache, state) = rest
                .split_once(" for ")
                .ok_or_else(|| err(line, "cache requires `CACHE for STATE`"))?;
            spec.caches.push(CacheSpec {
                cache: cache.trim().to_string(),
                state: state.trim().to_string(),
            });
        }
        "pair" => {
            let (acq, rel) = rest
                .split_once("->")
                .ok_or_else(|| err(line, "pair requires `ACQUIRE -> RELEASE`"))?;
            spec.pairs.push((acq.trim().to_string(), rel.trim().to_string()));
        }
        "expensive" => {
            let helpers = split_list(rest);
            if helpers.is_empty() {
                return Err(err(line, "expensive requires at least one helper name"));
            }
            spec.expensive.extend(helpers);
        }
        other => return Err(err(line, format!("unknown spec keyword `{other}`"))),
    }
    Ok(())
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_document() {
        let spec = parse_spec(
            "unit mm/page_alloc;\n\
             fastpath get_page_fast;\n\
             slowpath __alloc_pages_slowpath;\n\
             immutable gfp_mask, nodemask;\n\
             correlated preferred_zone -> nodemask;\n\
             cond order0: order;\n\
             cond remote: zone_local;\n\
             order remote before oom; # comment\n\
             returns 0, -12, ENOMEM;\n\
             match_slow_return;\n\
             check_return;\n\
             fault ENOSPC;\n\
             assist struct per_cpu_pages;\n\
             cache pcp for zone_state;\n",
        )
        .unwrap();
        assert_eq!(spec.unit, "mm/page_alloc");
        assert_eq!(spec.immutable, vec!["gfp_mask", "nodemask"]);
        assert_eq!(spec.correlated, vec![("preferred_zone".into(), "nodemask".into())]);
        assert_eq!(spec.conds.len(), 2);
        assert_eq!(spec.orders, vec![("remote".into(), "oom".into())]);
        assert_eq!(
            spec.returns,
            vec![RetValue::Int(0), RetValue::Int(-12), RetValue::Name("ENOMEM".into())]
        );
        assert!(spec.match_slow_return);
        assert!(spec.check_return);
        assert_eq!(spec.faults, vec!["ENOSPC"]);
        assert_eq!(spec.assist_structs, vec!["per_cpu_pages"]);
        assert_eq!(spec.caches.len(), 1);
        assert_eq!(spec.fact_count(), 12);
    }

    #[test]
    fn multiple_statements_on_one_line() {
        let spec = parse_spec("fastpath f; slowpath g; immutable x;").unwrap();
        assert_eq!(spec.fastpath, vec!["f"]);
        assert_eq!(spec.slowpath, vec!["g"]);
        assert_eq!(spec.immutable, vec!["x"]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = parse_spec("# whole-line comment\n\n  fastpath f; # trailing\n").unwrap();
        assert_eq!(spec.fastpath, vec!["f"]);
    }

    #[test]
    fn cond_with_multiple_vars() {
        let spec = parse_spec("cond pred: map, rps_flow_table;").unwrap();
        assert_eq!(spec.conds[0].vars, vec!["map", "rps_flow_table"]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_spec("fastpath f;\nbogus_keyword x;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus_keyword"));
    }

    #[test]
    fn malformed_clauses_rejected() {
        assert!(parse_spec("correlated a b;").is_err());
        assert!(parse_spec("order a then b;").is_err());
        assert!(parse_spec("cond noname;").is_err());
        assert!(parse_spec("cache x;").is_err());
        assert!(parse_spec("immutable ;").is_err());
        assert!(parse_spec("returns ;").is_err());
        assert!(parse_spec("pair a b;").is_err());
        assert!(parse_spec("expensive ;").is_err());
    }

    #[test]
    fn pair_and_expensive_clauses_parse() {
        let spec = parse_spec("pair acquire_buf -> release_buf;\nexpensive sync_flush, slow_log;").unwrap();
        assert_eq!(spec.pairs, vec![("acquire_buf".into(), "release_buf".into())]);
        assert_eq!(spec.expensive, vec!["sync_flush", "slow_log"]);
    }

    #[test]
    fn assist_without_struct_keyword() {
        let spec = parse_spec("assist inet_cork;").unwrap();
        assert_eq!(spec.assist_structs, vec!["inet_cork"]);
    }

    #[test]
    fn pragma_fragments_merge() {
        let mut spec = parse_pragma("fastpath f;").unwrap();
        spec.merge(parse_pragma("immutable gfp_mask;").unwrap());
        spec.merge(parse_pragma("fault ENOSPC;").unwrap());
        assert_eq!(spec.fastpath, vec!["f"]);
        assert_eq!(spec.immutable, vec!["gfp_mask"]);
        assert_eq!(spec.faults, vec!["ENOSPC"]);
    }

    #[test]
    fn negative_returns_parse_as_ints() {
        let spec = parse_spec("returns -5;").unwrap();
        assert_eq!(spec.returns, vec![RetValue::Int(-5)]);
    }
}
