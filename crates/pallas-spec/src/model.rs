//! The generalized fast-path element model (paper Figure 2).
//!
//! The paper abstracts every fast path into five element classes:
//! path states (`Sin`, `Sf`, `So`, ...), trigger conditions (`Ct`,
//! `Cfau`, `Cerr`), path outputs (`Sout`, `Serr`, `Sfau`), fault
//! handling, and assistant data structures. [`FastPathModel`] names the
//! elements present in a concrete fast path and renders the Figure 2
//! diagram for it.
//!
//! Two further classes extend the taxonomy beyond the paper, mined
//! from the consequence categories the study dataset tags but none of
//! the twelve paper rules address: resource-release pairing (the
//! MemoryLeak class) and fast-path work amplification (the
//! PerformanceDegradation class). [`ElementClass::PAPER`] keeps the
//! original five for the paper-pinned tables.

use std::fmt;

/// The element classes of a fast path (paper §3, Table 1 rows, plus
/// the two study-mined extension classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementClass {
    /// Input/intermediate/final states (`Sin`, `Sf`, `So`).
    PathState,
    /// Conditions triggering path switches (`Ct`, `Cfau`, `Cerr`).
    TriggerCondition,
    /// Return values (`Sout`, `Serr`, `Sfau`).
    PathOutput,
    /// Exception/fault handling along the path.
    FaultHandling,
    /// Caches and other helper structures.
    AssistantDataStructure,
    /// Acquire/release pairing of resources held across the path
    /// (study MemoryLeak consequence class).
    ResourceRelease,
    /// Work the fast path performs that belongs on the slow path
    /// (study PerformanceDegradation consequence class).
    WorkAmplification,
}

impl ElementClass {
    /// All classes in Table 1 order, extension classes last.
    pub const ALL: [ElementClass; 7] = [
        ElementClass::PathState,
        ElementClass::TriggerCondition,
        ElementClass::PathOutput,
        ElementClass::FaultHandling,
        ElementClass::AssistantDataStructure,
        ElementClass::ResourceRelease,
        ElementClass::WorkAmplification,
    ];

    /// The five classes of the paper's Table 1, in table order — the
    /// rows of every paper-pinned table (Tables 2–5). The extension
    /// classes deliberately stay out so the reproduced numbers cannot
    /// drift.
    pub const PAPER: [ElementClass; 5] = [
        ElementClass::PathState,
        ElementClass::TriggerCondition,
        ElementClass::PathOutput,
        ElementClass::FaultHandling,
        ElementClass::AssistantDataStructure,
    ];

    /// Short display name matching the paper's tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ElementClass::PathState => "Path State",
            ElementClass::TriggerCondition => "Trigger Condition",
            ElementClass::PathOutput => "Path Output",
            ElementClass::FaultHandling => "Fault Handling",
            ElementClass::AssistantDataStructure => "Assistant Data Structures",
            ElementClass::ResourceRelease => "Resource Release",
            ElementClass::WorkAmplification => "Work Amplification",
        }
    }
}

impl fmt::Display for ElementClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

/// A concrete instantiation of the Figure 2 model for one fast path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FastPathModel {
    /// Workflow name (e.g. "Page allocation").
    pub name: String,
    /// Input state description (`Sin`).
    pub input_state: String,
    /// Trigger condition description (`Ct`).
    pub trigger: String,
    /// Fast-path action (`Sf`).
    pub fast_action: String,
    /// Slow-path action (`S0`).
    pub slow_action: String,
    /// Fault condition (`Cfau`), if the path models one.
    pub fault_condition: Option<String>,
    /// Fault-handling action (`Sfau`).
    pub fault_action: Option<String>,
    /// Error condition (`Cerr`), if modeled.
    pub error_condition: Option<String>,
    /// Normal output (`Sout`).
    pub output: String,
}

impl FastPathModel {
    /// Creates a model with the mandatory elements.
    pub fn new(
        name: impl Into<String>,
        input_state: impl Into<String>,
        trigger: impl Into<String>,
        fast_action: impl Into<String>,
        slow_action: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        FastPathModel {
            name: name.into(),
            input_state: input_state.into(),
            trigger: trigger.into(),
            fast_action: fast_action.into(),
            slow_action: slow_action.into(),
            output: output.into(),
            ..FastPathModel::default()
        }
    }

    /// Adds the fault-handling elements (`Cfau` / `Sfau`).
    pub fn with_fault(mut self, condition: impl Into<String>, action: impl Into<String>) -> Self {
        self.fault_condition = Some(condition.into());
        self.fault_action = Some(action.into());
        self
    }

    /// Adds the error-output condition (`Cerr`).
    pub fn with_error(mut self, condition: impl Into<String>) -> Self {
        self.error_condition = Some(condition.into());
        self
    }

    /// Renders the Figure 2 diagram instantiated with this model's
    /// element names.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Fast-path model: {}\n", self.name));
        out.push_str(&format!("  Sin  : {}\n", self.input_state));
        out.push_str(&format!("  Ct   : {}\n", self.trigger));
        out.push_str("         |-- yes --> fast path\n");
        out.push_str(&format!("         |            Sf: {}\n", self.fast_action));
        if let (Some(cf), Some(sf)) = (&self.fault_condition, &self.fault_action) {
            out.push_str(&format!("         |            Cfau: {cf}\n"));
            out.push_str(&format!("         |              '-- yes --> Sfau: {sf}\n"));
        }
        out.push_str("         '-- no  --> slow path\n");
        out.push_str(&format!("                      S0: {}\n", self.slow_action));
        if let Some(ce) = &self.error_condition {
            out.push_str(&format!("  Cerr : {ce} --> Serr\n"));
        }
        out.push_str(&format!("  Sout : {}\n", self.output));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_enumerated_in_table_order() {
        assert_eq!(ElementClass::ALL.len(), 7);
        assert_eq!(ElementClass::ALL[0].as_str(), "Path State");
        assert_eq!(ElementClass::ALL[4].as_str(), "Assistant Data Structures");
        assert_eq!(ElementClass::ALL[5].as_str(), "Resource Release");
        assert_eq!(ElementClass::ALL[6].as_str(), "Work Amplification");
    }

    #[test]
    fn paper_classes_are_a_prefix_of_all() {
        assert_eq!(ElementClass::PAPER.len(), 5);
        assert_eq!(&ElementClass::ALL[..5], &ElementClass::PAPER[..]);
    }

    #[test]
    fn model_render_contains_all_elements() {
        let m = FastPathModel::new(
            "Page allocation",
            "gfp_mask, order",
            "order == 0",
            "get page from per-cpu lists",
            "lock; get pages from fallback lists",
            "struct page *",
        )
        .with_fault("per-cpu list empty", "refill from buddy")
        .with_error("allocation failed");
        let r = m.render();
        for needle in ["Sin", "Ct", "Sf", "S0", "Cfau", "Sfau", "Cerr", "Sout", "order == 0"] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
    }

    #[test]
    fn minimal_model_renders_without_optional_parts() {
        let m = FastPathModel::new("X", "in", "t", "f", "s", "out");
        let r = m.render();
        assert!(!r.contains("Cfau"));
        assert!(!r.contains("Cerr"));
    }
}
