//! The semantic specification model.
//!
//! A [`FastPathSpec`] captures exactly the "simple, straightforward and
//! high-level semantic information" the paper asks users to provide
//! (§4): which variables are immutable, which variables form trigger
//! conditions, what the legal returns are, which fault states must be
//! handled, and which data structures assist the fast path.

use std::fmt;

/// A named trigger-condition group: the variables whose checking forms
/// one trigger condition (paper `@cond`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CondSpec {
    /// Name used to refer to this condition in `order` clauses.
    pub name: String,
    /// Variables that must all appear in flow-control statements.
    pub vars: Vec<String>,
}

/// A legal return value for Rule 3.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RetValue {
    /// Concrete integer (e.g. `0`, `-5`).
    Int(i64),
    /// Symbolic name (e.g. `EIO`, `NULL`, a variable).
    Name(String),
}

impl fmt::Display for RetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetValue::Int(v) => write!(f, "{v}"),
            RetValue::Name(n) => f.write_str(n),
        }
    }
}

/// A cache relationship for Rule 5.2: updates to `state` must be
/// followed by an update touching `cache`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheSpec {
    /// The assistant data structure acting as a cache (variable or
    /// function-name prefix, e.g. `icache`).
    pub cache: String,
    /// The path state it caches (e.g. `inode`).
    pub state: String,
}

/// The complete semantic specification for one fast path.
///
/// Construct with [`FastPathSpec::new`] plus the builder-style `with_*`
/// methods, or parse the DSL with [`crate::parse_spec`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FastPathSpec {
    /// Unit name (for reports), e.g. `mm/page_alloc`.
    pub unit: String,
    /// Fast-path entry function names.
    pub fastpath: Vec<String>,
    /// Slow-path entry function names (for Rule 3.2 cross-checking).
    pub slowpath: Vec<String>,
    /// Rule 1.1/1.2: immutable variables.
    pub immutable: Vec<String>,
    /// Rule 1.3: correlated variable pairs `X -> Y`.
    pub correlated: Vec<(String, String)>,
    /// Rule 2.1/2.2: trigger-condition groups.
    pub conds: Vec<CondSpec>,
    /// Rule 2.3: `(first, second)` pairs of cond names that must be
    /// checked in this order.
    pub orders: Vec<(String, String)>,
    /// Rule 3.1: legal return values (empty = unconstrained).
    pub returns: Vec<RetValue>,
    /// Rule 3.2: fast-path returns must match slow-path returns.
    pub match_slow_return: bool,
    /// Rule 3.3: callers must check the fast path's return value.
    pub check_return: bool,
    /// Rule 4.1: fault states (identifiers) that must be handled.
    pub faults: Vec<String>,
    /// Rule 5.1: assistant structures whose fields must all be used
    /// (struct tag names, e.g. `inet_cork`).
    pub assist_structs: Vec<String>,
    /// Rule 5.2: cache/state pairs.
    pub caches: Vec<CacheSpec>,
    /// Rules 6.1/6.2: resource acquire/release function pairs
    /// `ACQUIRE -> RELEASE` that must balance on every path.
    pub pairs: Vec<(String, String)>,
    /// Rule 7.1: expensive (slow-path) helpers the fast path must not
    /// call unconditionally or repeatedly.
    pub expensive: Vec<String>,
}

impl FastPathSpec {
    /// Creates an empty spec for the named unit.
    pub fn new(unit: impl Into<String>) -> Self {
        FastPathSpec { unit: unit.into(), ..FastPathSpec::default() }
    }

    /// Names a fast-path entry function.
    pub fn with_fastpath(mut self, f: impl Into<String>) -> Self {
        self.fastpath.push(f.into());
        self
    }

    /// Names a slow-path entry function.
    pub fn with_slowpath(mut self, f: impl Into<String>) -> Self {
        self.slowpath.push(f.into());
        self
    }

    /// Declares an immutable variable.
    pub fn with_immutable(mut self, v: impl Into<String>) -> Self {
        self.immutable.push(v.into());
        self
    }

    /// Declares a correlated pair `x -> y`.
    pub fn with_correlated(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.correlated.push((x.into(), y.into()));
        self
    }

    /// Declares a trigger-condition group.
    pub fn with_cond(mut self, name: impl Into<String>, vars: &[&str]) -> Self {
        self.conds.push(CondSpec {
            name: name.into(),
            vars: vars.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Declares an ordering constraint between two cond names.
    pub fn with_order(mut self, first: impl Into<String>, second: impl Into<String>) -> Self {
        self.orders.push((first.into(), second.into()));
        self
    }

    /// Adds a legal return value.
    pub fn with_return(mut self, v: RetValue) -> Self {
        self.returns.push(v);
        self
    }

    /// Requires fast/slow return agreement (Rule 3.2).
    pub fn with_match_slow_return(mut self) -> Self {
        self.match_slow_return = true;
        self
    }

    /// Requires callers to check the fast path's return (Rule 3.3).
    pub fn with_check_return(mut self) -> Self {
        self.check_return = true;
        self
    }

    /// Declares a fault state that must be handled.
    pub fn with_fault(mut self, f: impl Into<String>) -> Self {
        self.faults.push(f.into());
        self
    }

    /// Declares an assistant structure for Rule 5.1.
    pub fn with_assist_struct(mut self, s: impl Into<String>) -> Self {
        self.assist_structs.push(s.into());
        self
    }

    /// Declares a cache/state pair for Rule 5.2.
    pub fn with_cache(mut self, cache: impl Into<String>, state: impl Into<String>) -> Self {
        self.caches.push(CacheSpec { cache: cache.into(), state: state.into() });
        self
    }

    /// Declares an acquire/release pair for Rules 6.1/6.2.
    pub fn with_pair(mut self, acquire: impl Into<String>, release: impl Into<String>) -> Self {
        self.pairs.push((acquire.into(), release.into()));
        self
    }

    /// Declares an expensive helper for Rule 7.1.
    pub fn with_expensive(mut self, f: impl Into<String>) -> Self {
        self.expensive.push(f.into());
        self
    }

    /// Looks up a cond group by name.
    pub fn cond(&self, name: &str) -> Option<&CondSpec> {
        self.conds.iter().find(|c| c.name == name)
    }

    /// Total number of semantic facts in the spec — the paper's "a few
    /// lines of code" metric reported in the evaluation.
    pub fn fact_count(&self) -> usize {
        self.immutable.len()
            + self.correlated.len()
            + self.conds.len()
            + self.orders.len()
            + usize::from(!self.returns.is_empty())
            + usize::from(self.match_slow_return)
            + usize::from(self.check_return)
            + self.faults.len()
            + self.assist_structs.len()
            + self.caches.len()
            + self.pairs.len()
            + self.expensive.len()
    }

    /// Merges another spec's facts into this one (used when a unit has
    /// several pragma comments).
    pub fn merge(&mut self, other: FastPathSpec) {
        if self.unit.is_empty() {
            self.unit = other.unit;
        }
        self.fastpath.extend(other.fastpath);
        self.slowpath.extend(other.slowpath);
        self.immutable.extend(other.immutable);
        self.correlated.extend(other.correlated);
        self.conds.extend(other.conds);
        self.orders.extend(other.orders);
        self.returns.extend(other.returns);
        self.match_slow_return |= other.match_slow_return;
        self.check_return |= other.check_return;
        self.faults.extend(other.faults);
        self.assist_structs.extend(other.assist_structs);
        self.caches.extend(other.caches);
        self.pairs.extend(other.pairs);
        self.expensive.extend(other.expensive);
    }
}

impl fmt::Display for FastPathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unit {};", self.unit)?;
        for fp in &self.fastpath {
            writeln!(f, "fastpath {fp};")?;
        }
        for sp in &self.slowpath {
            writeln!(f, "slowpath {sp};")?;
        }
        if !self.immutable.is_empty() {
            writeln!(f, "immutable {};", self.immutable.join(", "))?;
        }
        for (x, y) in &self.correlated {
            writeln!(f, "correlated {x} -> {y};")?;
        }
        for c in &self.conds {
            writeln!(f, "cond {}: {};", c.name, c.vars.join(", "))?;
        }
        for (a, b) in &self.orders {
            writeln!(f, "order {a} before {b};")?;
        }
        if !self.returns.is_empty() {
            let vals: Vec<String> = self.returns.iter().map(|r| r.to_string()).collect();
            writeln!(f, "returns {};", vals.join(", "))?;
        }
        if self.match_slow_return {
            writeln!(f, "match_slow_return;")?;
        }
        if self.check_return {
            writeln!(f, "check_return;")?;
        }
        if !self.faults.is_empty() {
            writeln!(f, "fault {};", self.faults.join(", "))?;
        }
        for s in &self.assist_structs {
            writeln!(f, "assist struct {s};")?;
        }
        for c in &self.caches {
            writeln!(f, "cache {} for {};", c.cache, c.state)?;
        }
        for (acq, rel) in &self.pairs {
            writeln!(f, "pair {acq} -> {rel};")?;
        }
        if !self.expensive.is_empty() {
            writeln!(f, "expensive {};", self.expensive.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_facts() {
        let spec = FastPathSpec::new("mm/page_alloc")
            .with_fastpath("get_page_fast")
            .with_slowpath("alloc_pages_slowpath")
            .with_immutable("gfp_mask")
            .with_correlated("preferred_zone", "nodemask")
            .with_cond("order0", &["order"])
            .with_order("remote", "oom")
            .with_return(RetValue::Int(0))
            .with_match_slow_return()
            .with_fault("ENOMEM")
            .with_assist_struct("per_cpu_pages")
            .with_cache("pcp_cache", "zone_state");
        assert_eq!(spec.fact_count(), 9);
        assert!(spec.cond("order0").is_some());
        assert!(spec.cond("missing").is_none());
    }

    #[test]
    fn merge_unions_facts() {
        let mut a = FastPathSpec::new("u").with_immutable("x");
        let b = FastPathSpec::new("u").with_immutable("y").with_check_return();
        a.merge(b);
        assert_eq!(a.immutable, vec!["x", "y"]);
        assert!(a.check_return);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let spec = FastPathSpec::new("net/tcp")
            .with_fastpath("tcp_rcv_fast")
            .with_cond("pred", &["pred_flags", "seq"])
            .with_return(RetValue::Int(0))
            .with_return(RetValue::Name("EIO".into()));
        let text = spec.to_string();
        let parsed = crate::parse_spec(&text).unwrap();
        assert_eq!(parsed.fastpath, spec.fastpath);
        assert_eq!(parsed.conds, spec.conds);
        assert_eq!(parsed.returns, spec.returns);
    }

    #[test]
    fn pair_and_expensive_facts_roundtrip() {
        let spec = FastPathSpec::new("t")
            .with_fastpath("f")
            .with_pair("acquire_buf", "release_buf")
            .with_expensive("sync_flush");
        assert_eq!(spec.fact_count(), 2);
        let parsed = crate::parse_spec(&spec.to_string()).unwrap();
        assert_eq!(parsed.pairs, spec.pairs);
        assert_eq!(parsed.expensive, spec.expensive);
    }

    #[test]
    fn ret_value_display() {
        assert_eq!(RetValue::Int(-5).to_string(), "-5");
        assert_eq!(RetValue::Name("EIO".into()).to_string(), "EIO");
    }
}
