//! # pallas-spec
//!
//! The semantic annotation protocol of Pallas: the tiny DSL through
//! which developers and testers supply the "simple, straightforward and
//! high-level semantic information" (paper §4) that drives the checkers
//! — immutable variables, trigger-condition variables, legal returns,
//! fault states, and assistant data structures.
//!
//! ```
//! use pallas_spec::parse_spec;
//!
//! # fn main() -> Result<(), pallas_spec::SpecError> {
//! let spec = parse_spec(
//!     "unit mm/page_alloc;\n\
//!      fastpath get_page_fast;\n\
//!      immutable gfp_mask, nodemask;",
//! )?;
//! assert_eq!(spec.immutable.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod lint;
pub mod model;
pub mod parse;
pub mod spec;

pub use lint::{LintIssue, LintSeverity};
pub use model::{ElementClass, FastPathModel};
pub use parse::{parse_pragma, parse_spec, SpecError};
pub use spec::{CacheSpec, CondSpec, FastPathSpec, RetValue};
