//! Spec linting: catches inconsistent semantic annotations before the
//! checkers run on them.
//!
//! The paper's protocol is written by hand ("users need to manually
//! specify the start entry of the slow and fast path, and annotate the
//! semantic information", §4), so a typo in a cond name silently turns
//! an `order` clause into a no-op. The linter surfaces such dead or
//! contradictory facts.

use crate::spec::FastPathSpec;
use std::collections::HashSet;
use std::fmt;

/// A lint finding about a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// Severity of the issue.
    pub severity: LintSeverity,
    /// Human-readable description.
    pub message: String,
}

/// How bad a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// The fact is dead or redundant; checking proceeds normally.
    Note,
    /// The fact cannot have its intended effect.
    Warning,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            LintSeverity::Note => "note",
            LintSeverity::Warning => "warning",
        };
        write!(f, "spec {tag}: {}", self.message)
    }
}

impl FastPathSpec {
    /// Lints the spec for dead, duplicate, or contradictory facts.
    pub fn lint(&self) -> Vec<LintIssue> {
        let mut issues = Vec::new();
        let warn = |issues: &mut Vec<LintIssue>, m: String| {
            issues.push(LintIssue { severity: LintSeverity::Warning, message: m })
        };
        let note = |issues: &mut Vec<LintIssue>, m: String| {
            issues.push(LintIssue { severity: LintSeverity::Note, message: m })
        };

        if self.fastpath.is_empty() && self.fact_count() > 0 {
            warn(&mut issues, "semantic facts given but no `fastpath` entry named".into());
        }

        for f in &self.fastpath {
            if self.slowpath.contains(f) {
                warn(
                    &mut issues,
                    format!("`{f}` is named as both fastpath and slowpath"),
                );
            }
        }

        let mut seen = HashSet::new();
        for v in &self.immutable {
            if !seen.insert(v) {
                note(&mut issues, format!("immutable `{v}` declared more than once"));
            }
        }

        let mut cond_names = HashSet::new();
        for c in &self.conds {
            if !cond_names.insert(c.name.as_str()) {
                warn(&mut issues, format!("cond `{}` declared more than once", c.name));
            }
        }
        for (a, b) in &self.orders {
            for name in [a, b] {
                if !cond_names.contains(name.as_str()) {
                    warn(
                        &mut issues,
                        format!("order clause references unknown cond `{name}`"),
                    );
                }
            }
            if a == b {
                warn(&mut issues, format!("order clause `{a} before {b}` is circular"));
            }
        }

        for (x, y) in &self.correlated {
            if x == y {
                warn(&mut issues, format!("correlated pair `{x} -> {y}` relates a variable to itself"));
            }
        }

        for c in &self.caches {
            if c.cache == c.state {
                warn(
                    &mut issues,
                    format!("cache `{}` caches itself; cache and state must differ", c.cache),
                );
            }
        }

        if self.match_slow_return && self.slowpath.is_empty() {
            warn(
                &mut issues,
                "match_slow_return requires a `slowpath` entry to compare against".into(),
            );
        }

        let mut fault_seen = HashSet::new();
        for f in &self.faults {
            if !fault_seen.insert(f) {
                note(&mut issues, format!("fault `{f}` declared more than once"));
            }
        }

        for (acq, rel) in &self.pairs {
            if acq == rel {
                warn(
                    &mut issues,
                    format!("pair `{acq} -> {rel}` acquires and releases via the same function"),
                );
            }
        }

        let mut expensive_seen = HashSet::new();
        for e in &self.expensive {
            if !expensive_seen.insert(e) {
                note(&mut issues, format!("expensive helper `{e}` declared more than once"));
            }
        }

        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FastPathSpec;

    #[test]
    fn clean_spec_lints_clean() {
        let spec = FastPathSpec::new("u")
            .with_fastpath("f")
            .with_slowpath("g")
            .with_immutable("x")
            .with_cond("a", &["v"])
            .with_cond("b", &["w"])
            .with_order("a", "b")
            .with_match_slow_return()
            .with_fault("ENOSPC");
        assert!(spec.lint().is_empty(), "{:#?}", spec.lint());
    }

    #[test]
    fn unknown_order_cond_flagged() {
        let spec = FastPathSpec::new("u").with_fastpath("f").with_order("ghost", "phantom");
        let issues = spec.lint();
        assert_eq!(issues.iter().filter(|i| i.message.contains("unknown cond")).count(), 2);
    }

    #[test]
    fn circular_order_flagged() {
        let spec = FastPathSpec::new("u")
            .with_fastpath("f")
            .with_cond("a", &["v"])
            .with_order("a", "a");
        assert!(spec.lint().iter().any(|i| i.message.contains("circular")));
    }

    #[test]
    fn missing_fastpath_flagged() {
        let spec = FastPathSpec::new("u").with_immutable("x");
        assert!(spec.lint().iter().any(|i| i.message.contains("no `fastpath`")));
    }

    #[test]
    fn fast_and_slow_conflict_flagged() {
        let spec = FastPathSpec::new("u").with_fastpath("f").with_slowpath("f");
        assert!(spec.lint().iter().any(|i| i.message.contains("both fastpath and slowpath")));
    }

    #[test]
    fn duplicates_are_notes() {
        let spec = FastPathSpec::new("u")
            .with_fastpath("f")
            .with_immutable("x")
            .with_immutable("x")
            .with_fault("EIO")
            .with_fault("EIO");
        let issues = spec.lint();
        assert_eq!(issues.len(), 2);
        assert!(issues.iter().all(|i| i.severity == LintSeverity::Note));
    }

    #[test]
    fn match_slow_without_slowpath_flagged() {
        let spec = FastPathSpec::new("u").with_fastpath("f").with_match_slow_return();
        assert!(spec
            .lint()
            .iter()
            .any(|i| i.message.contains("match_slow_return requires")));
    }

    #[test]
    fn self_cache_flagged() {
        let spec = FastPathSpec::new("u").with_fastpath("f").with_cache("x", "x");
        assert!(spec.lint().iter().any(|i| i.message.contains("caches itself")));
    }

    #[test]
    fn self_pair_flagged() {
        let spec = FastPathSpec::new("u").with_fastpath("f").with_pair("get_buf", "get_buf");
        assert!(spec.lint().iter().any(|i| i.message.contains("same function")));
    }

    #[test]
    fn duplicate_expensive_is_note() {
        let spec = FastPathSpec::new("u")
            .with_fastpath("f")
            .with_expensive("sync_flush")
            .with_expensive("sync_flush");
        let issues = spec.lint();
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, LintSeverity::Note);
    }

    #[test]
    fn issue_display() {
        let spec = FastPathSpec::new("u").with_fastpath("f").with_order("g", "h");
        let text = spec.lint()[0].to_string();
        assert!(text.starts_with("spec warning:"));
    }
}
