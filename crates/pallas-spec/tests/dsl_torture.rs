//! DSL torture tests: every statement form under hostile formatting,
//! plus full-document round trips.

use pallas_spec::{parse_spec, RetValue};

#[test]
fn whitespace_and_comment_torture() {
    let spec = parse_spec(
        "   unit   mm/x ;   # trailing comment\n\
         \t fastpath   get_page_fast ;\n\
         immutable a ,   b,c ;\n\
         # full-line comment\n\
         \n\
         correlated   x   ->   y ;\n\
         cond   c1 :  v1 , v2 ;\n\
         order   c1   before   c2 ;\n\
         returns   0 ,  -1 ,   EIO ;\n\
         match_slow_return ;  check_return ;\n\
         fault   ENOSPC ;\n\
         assist   struct   per_cpu ;\n\
         cache   pcp   for   zone ;\n",
    )
    .unwrap();
    assert_eq!(spec.unit, "mm/x");
    assert_eq!(spec.immutable, vec!["a", "b", "c"]);
    assert_eq!(spec.correlated, vec![("x".into(), "y".into())]);
    assert_eq!(spec.conds[0].vars, vec!["v1", "v2"]);
    assert_eq!(spec.orders, vec![("c1".into(), "c2".into())]);
    assert_eq!(
        spec.returns,
        vec![RetValue::Int(0), RetValue::Int(-1), RetValue::Name("EIO".into())]
    );
    assert!(spec.match_slow_return && spec.check_return);
    assert_eq!(spec.assist_structs, vec!["per_cpu"]);
    assert_eq!(spec.caches[0].cache, "pcp");
    assert_eq!(spec.fact_count(), 12);
}

#[test]
fn member_path_variables_allowed() {
    let spec = parse_spec("fastpath f; immutable page->private; cache icache for inode->valid;")
        .unwrap();
    assert_eq!(spec.immutable, vec!["page->private"]);
    assert_eq!(spec.caches[0].state, "inode->valid");
}

#[test]
fn empty_document_is_the_empty_spec() {
    let spec = parse_spec("").unwrap();
    assert_eq!(spec.fact_count(), 0);
    assert!(spec.fastpath.is_empty());
    let spec = parse_spec("\n\n# only comments\n\n").unwrap();
    assert_eq!(spec.fact_count(), 0);
}

#[test]
fn repeated_statements_accumulate() {
    let spec = parse_spec(
        "fastpath a; fastpath b;\nimmutable x;\nimmutable y;\nfault E1;\nfault E2;",
    )
    .unwrap();
    assert_eq!(spec.fastpath, vec!["a", "b"]);
    assert_eq!(spec.immutable, vec!["x", "y"]);
    assert_eq!(spec.faults, vec!["E1", "E2"]);
}

#[test]
fn display_of_every_fact_form_reparses_identically() {
    let original = parse_spec(
        "unit net/full;\nfastpath f;\nslowpath g;\nimmutable a, b;\n\
         correlated x -> y;\ncond c1: v1, v2;\ncond c2: w;\norder c1 before c2;\n\
         returns 0, -5, EIO;\nmatch_slow_return;\ncheck_return;\n\
         fault ENOSPC, EFAULT;\nassist struct inet_cork;\ncache icache for inode;",
    )
    .unwrap();
    let reparsed = parse_spec(&original.to_string()).unwrap();
    assert_eq!(reparsed, original);
}

#[test]
fn error_positions_are_precise() {
    let e = parse_spec("fastpath f;\nimmutable x;\ncond broken\nfault E;").unwrap_err();
    assert_eq!(e.line, 3);
}

#[test]
fn keywords_are_not_greedy_prefixes() {
    // `conditions` is not `cond`; unknown keywords fail cleanly.
    let e = parse_spec("conditions a: b;").unwrap_err();
    assert!(e.message.contains("conditions"));
}

#[test]
fn negative_and_large_returns() {
    let spec = parse_spec("returns -2147483648, 2147483647;").unwrap();
    assert_eq!(
        spec.returns,
        vec![RetValue::Int(i32::MIN as i64), RetValue::Int(i32::MAX as i64)]
    );
}
