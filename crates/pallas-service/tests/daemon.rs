//! End-to-end tests: a real daemon on temp sockets (Unix and TCP),
//! driven through real protocol clients — the transport matrix,
//! request coalescing, pipelined ordering, and protocol-robustness
//! batteries all live here.

use pallas_core::{render_ndjson, render_unit_report, EngineConfig, Pallas, SourceUnit};
use pallas_service::{
    Bind, Client, Request, RuleSelection, Server, ServiceConfig, Value,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A unique socket path per test (parallel test threads must not
/// collide, and UDS paths must stay short).
fn socket_path(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pallas-{}-{tag}-{n}.sock", std::process::id()))
}

fn demo_unit(i: usize) -> SourceUnit {
    SourceUnit::new(format!("mm/demo{i}"))
        .with_file("demo.h", "typedef unsigned int gfp_t;\nint noio(gfp_t m);\n")
        .with_file(
            "demo.c",
            format!(
                "int alloc_fast{i}(gfp_t gfp_mask) {{\n  gfp_mask = noio(gfp_mask);\n  return 0;\n}}\n"
            ),
        )
        .with_spec(format!("fastpath alloc_fast{i}; immutable gfp_mask;"))
}

fn ok(v: &Value) -> bool {
    v.get("ok").and_then(Value::as_bool) == Some(true)
}

fn stat(v: &Value, section: &str, field: &str) -> u64 {
    v.get("stats")
        .and_then(|s| s.get(section))
        .and_then(|s| s.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing stats.{section}.{field} in {v}"))
}

#[test]
fn warm_requests_hit_the_shared_cache_and_match_one_shot_output() {
    let path = socket_path("warm");
    let handle = Server::start(&path, ServiceConfig::default()).unwrap();
    let unit = demo_unit(0);
    // What the one-shot CLI path produces for this unit.
    let one_shot = Pallas::new().check_unit(&unit).unwrap();
    let expected_report = render_unit_report(&one_shot);
    let expected_ndjson = render_ndjson(&one_shot);

    let mut client = Client::connect(&path).unwrap();
    let cold = client.check(&unit).unwrap();
    assert!(ok(&cold), "{cold}");
    assert_eq!(cold.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(cold.get("report").and_then(Value::as_str), Some(expected_report.as_str()));
    assert_eq!(cold.get("ndjson").and_then(Value::as_str), Some(expected_ndjson.as_str()));

    // Second wave, new connection: same engine, warm cache.
    let mut second = Client::connect(&path).unwrap();
    let warm = second.check(&unit).unwrap();
    assert_eq!(warm.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(warm.get("report"), cold.get("report"), "warm report must be byte-identical");
    assert_eq!(warm.get("ndjson"), cold.get("ndjson"));

    let stats = second.stats().unwrap();
    assert!(ok(&stats), "{stats}");
    assert!(stat(&stats, "engine", "cache_hits") > 0, "{stats}");
    assert_eq!(stat(&stats, "service", "completed"), 2);
    assert!(stat(&stats, "request_latency", "count") >= 2);

    assert!(ok(&second.shutdown().unwrap()));
    let summary = handle.wait();
    assert!(summary.contains("hit(s)"), "{summary}");
}

#[test]
fn concurrent_clients_all_get_correct_ordered_responses() {
    let path = socket_path("conc");
    let handle = Server::start(
        &path,
        ServiceConfig { workers: 4, ..ServiceConfig::default() },
    )
    .unwrap();
    let threads: Vec<_> = (0..6)
        .map(|i| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                // Each client issues two rounds over its own units.
                for _round in 0..2 {
                    for j in 0..3 {
                        let unit = demo_unit(i * 10 + j);
                        let response = client.check(&unit).unwrap();
                        assert!(ok(&response), "{response}");
                        assert_eq!(
                            response.get("unit").and_then(Value::as_str),
                            Some(unit.name.as_str()),
                            "responses must pair with their requests in order"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = handle.engine().stats();
    assert_eq!(stats.units_checked, 36);
    assert_eq!(stats.cache_misses, 18, "18 distinct units");
    assert_eq!(stats.cache_hits, 18, "second round fully cached");
    handle.stop();
}

#[test]
fn batch_requests_flow_through_the_work_stealing_pool() {
    let path = socket_path("batch");
    let handle = Server::start(
        &path,
        ServiceConfig { workers: 3, ..ServiceConfig::default() },
    )
    .unwrap();
    let units: Vec<SourceUnit> = (0..8).map(demo_unit).collect();
    let mut client = Client::connect(&path).unwrap();
    let response = client.batch(&units).unwrap();
    assert!(ok(&response), "{response}");
    let results = response.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(results.len(), 8);
    for (i, item) in results.iter().enumerate() {
        assert_eq!(
            item.get("unit").and_then(Value::as_str),
            Some(units[i].name.as_str()),
            "batch results preserve request order"
        );
    }
    handle.stop();
}

#[test]
fn over_queue_depth_burst_gets_explicit_overload_rejections() {
    let path = socket_path("load");
    // One worker, queue of one: a burst of slow requests must shed
    // load instead of hanging.
    let handle = Server::start(
        &path,
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            timeout: Duration::from_secs(10),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    // Distinct units per request: identical ones would coalesce into
    // a single computation and never pressure the queue.
    let burst = 6;
    let threads: Vec<_> = (0..burst)
        .map(|i| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                client.check_delayed(&demo_unit(i), Duration::from_millis(300)).unwrap()
            })
        })
        .collect();
    let responses: Vec<Value> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let overloaded = responses
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("overload"))
        .count();
    let succeeded = responses.iter().filter(|r| ok(r)).count();
    assert!(succeeded >= 1, "at least the running request completes: {responses:?}");
    assert!(overloaded >= 1, "the burst must overflow the 1-deep queue: {responses:?}");
    assert_eq!(succeeded + overloaded, burst, "every request got an explicit answer");
    for r in &responses {
        if !ok(r) {
            let msg = r.get("error").and_then(Value::as_str).unwrap();
            assert!(msg.contains("overloaded"), "{msg}");
        }
    }
    let mut client = Client::connect(&path).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "service", "rejected_overload") as usize, overloaded);
    handle.stop();
}

#[test]
fn timed_out_request_errors_while_daemon_keeps_serving() {
    let path = socket_path("timeout");
    let handle = Server::start(
        &path,
        ServiceConfig {
            workers: 1,
            timeout: Duration::from_millis(100),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&path).unwrap();
    // Deliberately slow: stalls well past the 100ms budget.
    let slow = client.check_delayed(&demo_unit(0), Duration::from_millis(600)).unwrap();
    assert_eq!(slow.get("ok").and_then(Value::as_bool), Some(false), "{slow}");
    assert_eq!(slow.get("kind").and_then(Value::as_str), Some("timeout"), "{slow}");
    assert!(
        slow.get("error").and_then(Value::as_str).unwrap().contains("100ms"),
        "{slow}"
    );
    // The engine call itself cannot be interrupted, so the lone
    // worker stays busy until the stalled job finishes; once it
    // drains, the daemon serves the next request normally.
    std::thread::sleep(Duration::from_millis(600));
    let fine = client.check(&demo_unit(1)).unwrap();
    assert!(ok(&fine), "{fine}");
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "service", "timed_out"), 1);
    handle.stop();
}

#[test]
fn bounded_cache_keeps_daemon_memory_flat_across_many_distinct_units() {
    let path = socket_path("bound");
    let capacity = 8;
    let handle = Server::start(
        &path,
        ServiceConfig {
            engine: EngineConfig { cache_capacity: capacity, ..EngineConfig::default() },
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&path).unwrap();
    for i in 0..capacity * 3 {
        assert!(ok(&client.check(&demo_unit(i)).unwrap()));
        assert!(handle.engine().cached_frontends() <= capacity);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "engine", "cached_frontends"), capacity as u64);
    assert_eq!(stat(&stats, "engine", "cache_evictions"), (capacity * 2) as u64);
    handle.stop();
}

#[test]
fn malformed_and_failing_requests_answer_without_killing_the_connection() {
    let path = socket_path("err");
    let handle = Server::start(&path, ServiceConfig::default()).unwrap();
    let mut client = Client::connect(&path).unwrap();

    let garbage = client.request_line("this is not json").unwrap();
    assert!(garbage.contains("\"ok\":false"), "{garbage}");
    assert!(garbage.contains("malformed request"), "{garbage}");

    let unknown = client.request_line(r#"{"op":"teleport"}"#).unwrap();
    assert!(unknown.contains("unknown op"), "{unknown}");

    // A unit whose source fails to parse: an analysis error, not a
    // dead daemon.
    let bad = SourceUnit::new("bad").with_file("b.c", "int f( {").with_spec("");
    let response = client.check(&bad).unwrap();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(response.get("kind").and_then(Value::as_str), Some("analysis"));

    // Connection still works afterwards.
    assert!(ok(&client.check(&demo_unit(0)).unwrap()));
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "service", "protocol_errors"), 2);
    assert_eq!(stat(&stats, "service", "failed"), 1);
    handle.stop();
}

#[test]
fn rule_scoped_requests_share_the_daemon_without_leaking_across_scopes() {
    let path = socket_path("rules");
    let handle = Server::start(&path, ServiceConfig::default()).unwrap();
    let mut client = Client::connect(&path).unwrap();
    let unit = demo_unit(0);

    // Full run: the demo unit violates Rule 1.2 (immutable overwrite).
    let full = client.check(&unit).unwrap();
    assert!(ok(&full));
    let full_report = full.get("report").and_then(Value::as_str).unwrap().to_string();
    assert!(full_report.contains("Rule 1.2"), "{full_report}");

    // Disabling 1.2 for one request removes its warning...
    let scoped = client
        .check_with_rules(
            &unit,
            pallas_service::RuleSelection { only: vec![], disable: vec!["1.2".into()] },
        )
        .unwrap();
    assert!(ok(&scoped));
    let scoped_report = scoped.get("report").and_then(Value::as_str).unwrap();
    assert!(!scoped_report.contains("Rule 1.2"), "{scoped_report}");
    // ...and the scoped request built its own frontend entry (the
    // selection is part of the cache key), so it was not served the
    // full-run artifacts.
    assert_eq!(scoped.get("cached").and_then(Value::as_bool), Some(false));

    // The default scope is untouched: a repeat full check still warns
    // and hits the warm cache.
    let again = client.check(&unit).unwrap();
    assert!(ok(&again));
    assert_eq!(again.get("report").and_then(Value::as_str), Some(full_report.as_str()));
    assert_eq!(again.get("cached").and_then(Value::as_bool), Some(true));

    // An unknown rule name is a protocol-level error, not a crash.
    let bad = client
        .check_with_rules(
            &unit,
            pallas_service::RuleSelection { only: vec!["9.9".into()], disable: vec![] },
        )
        .unwrap();
    assert!(!ok(&bad));
    assert!(
        bad.get("error").and_then(Value::as_str).unwrap().contains("unknown rule"),
        "{bad}"
    );
    handle.stop();
}

#[test]
fn shutdown_request_drains_and_wait_returns_summary() {
    let path = socket_path("drain");
    let handle = Server::start(
        &path,
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(&path).unwrap();
    assert!(ok(&client.check(&demo_unit(0)).unwrap()));
    assert!(ok(&client.shutdown().unwrap()));
    let summary = handle.wait();
    assert!(summary.contains("served"), "{summary}");
    assert!(!path.exists(), "socket file removed on shutdown");
    // New connections are refused after shutdown.
    assert!(Client::connect(&path).is_err());
}

fn check_line(unit: &SourceUnit, delay: Option<Duration>) -> String {
    Request::Check { unit: unit.clone(), delay, rules: RuleSelection::default() }.to_line()
}

#[test]
fn tcp_and_unix_transports_return_byte_identical_responses() {
    let path = socket_path("tcp");
    let handle = Server::start_with(
        Bind::unix(&path).with_tcp("127.0.0.1:0"),
        ServiceConfig::default(),
    )
    .unwrap();
    let addr = handle.tcp_addr().expect("tcp listener bound");
    let unit = demo_unit(0);
    // Local one-shot analysis is the ground truth for both transports.
    let one_shot = Pallas::new().check_unit(&unit).unwrap();
    let expected_report = render_unit_report(&one_shot);
    let expected_ndjson = render_ndjson(&one_shot);

    let mut unix = Client::connect(&path).unwrap();
    let mut tcp = Client::connect_tcp(addr).unwrap();
    let via_unix = unix.check(&unit).unwrap();
    let via_tcp = tcp.check(&unit).unwrap();
    assert!(ok(&via_unix), "{via_unix}");
    assert!(ok(&via_tcp), "{via_tcp}");
    assert_eq!(
        via_unix.get("report").and_then(Value::as_str),
        Some(expected_report.as_str()),
        "unix response matches local check"
    );
    assert_eq!(
        via_unix.get("ndjson").and_then(Value::as_str),
        Some(expected_ndjson.as_str())
    );
    assert_eq!(via_tcp.get("report"), via_unix.get("report"), "transports agree byte-for-byte");
    assert_eq!(via_tcp.get("ndjson"), via_unix.get("ndjson"));

    let stats = tcp.stats().unwrap();
    assert_eq!(stat(&stats, "service", "unix_connections"), 1, "{stats}");
    assert_eq!(stat(&stats, "service", "tcp_connections"), 1, "{stats}");
    handle.stop();
}

#[test]
fn concurrent_identical_checks_coalesce_into_one_compute() {
    let path = socket_path("coal");
    let handle = Server::start(
        &path,
        ServiceConfig { workers: 4, ..ServiceConfig::default() },
    )
    .unwrap();
    // Eight clients fire the same fingerprint at the same instant;
    // the artificial delay keeps the leader's computation in flight
    // long enough that every other request must ride it.
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let path = path.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                barrier.wait();
                client
                    .request_line(&check_line(&demo_unit(0), Some(Duration::from_millis(500))))
                    .unwrap()
            })
        })
        .collect();
    let responses: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for response in &responses {
        assert!(
            response.contains("\"ok\":true"),
            "every coalesced waiter succeeds: {response}"
        );
        assert_eq!(
            response, &responses[0],
            "all coalesced responses are byte-identical"
        );
    }
    let engine = handle.engine().stats();
    assert_eq!(engine.units_checked, 1, "exactly one engine compute for the burst");
    assert_eq!(engine.cache_misses, 1);
    let mut client = Client::connect(&path).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stat(&stats, "service", "coalesced_hits") as usize,
        clients - 1,
        "{stats}"
    );
    assert_eq!(stat(&stats, "service", "completed"), 1, "{stats}");
    assert_eq!(
        stat(&stats, "request_latency", "count") as usize,
        clients,
        "every waiter's latency is recorded: {stats}"
    );
    handle.stop();
}

#[test]
fn pipelined_mixed_burst_preserves_request_order() {
    let path = socket_path("order");
    let handle = Server::start(
        &path,
        ServiceConfig { workers: 4, ..ServiceConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(&path).unwrap();
    // A slow unique check, a fast unique one, a duplicate of the slow
    // one (coalesces with request 0), an inline stats, and another
    // fast unique. Requests 1/3/4 finish long before 0 and 2, but the
    // responses must come back in request order.
    let slow = demo_unit(50);
    let delay = Some(Duration::from_millis(400));
    let lines = vec![
        check_line(&slow, delay),
        check_line(&demo_unit(51), None),
        check_line(&slow, delay),
        Request::Stats.to_line(),
        check_line(&demo_unit(52), None),
    ];
    let responses = client.pipeline(&lines).unwrap();
    assert_eq!(responses.len(), lines.len());
    let unit_of = |r: &str| {
        pallas_service::json::parse(r)
            .unwrap()
            .get("unit")
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    assert_eq!(unit_of(&responses[0]).as_deref(), Some("mm/demo50"));
    assert_eq!(unit_of(&responses[1]).as_deref(), Some("mm/demo51"));
    assert_eq!(unit_of(&responses[2]).as_deref(), Some("mm/demo50"));
    assert!(responses[3].contains("\"stats\""), "slot 3 is the stats response");
    assert_eq!(unit_of(&responses[4]).as_deref(), Some("mm/demo52"));
    assert_eq!(
        responses[0], responses[2],
        "the duplicate rides the same computation and gets the same bytes"
    );
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "service", "coalesced_hits"), 1, "{stats}");
    handle.stop();
}

#[test]
fn slow_loris_partial_line_does_not_block_other_clients() {
    let path = socket_path("loris");
    let handle = Server::start(&path, ServiceConfig::default()).unwrap();
    // The loris dribbles half a request and stalls mid-line.
    let mut loris = UnixStream::connect(&path).unwrap();
    let line = check_line(&demo_unit(0), None);
    let (head, tail) = line.as_bytes().split_at(line.len() / 2);
    loris.write_all(head).unwrap();
    loris.flush().unwrap();

    // Other connections are served normally while the loris stalls.
    let mut client = Client::connect(&path).unwrap();
    for i in 1..4 {
        let response = client.check(&demo_unit(i)).unwrap();
        assert!(ok(&response), "{response}");
    }

    // The loris eventually completes its line and still gets the
    // right answer — a stalled frame is patience, not an error.
    std::thread::sleep(Duration::from_millis(50));
    loris.write_all(tail).unwrap();
    loris.write_all(b"\n").unwrap();
    loris.flush().unwrap();
    let mut reader = BufReader::new(loris);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let parsed = pallas_service::json::parse(response.trim_end()).unwrap();
    assert!(ok(&parsed), "{parsed}");
    assert_eq!(parsed.get("unit").and_then(Value::as_str), Some("mm/demo0"));
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "service", "protocol_errors"), 0, "{stats}");
    handle.stop();
}

#[test]
fn oversized_request_line_gets_clean_error_and_connection_survives() {
    let path = socket_path("oversz");
    let handle = Server::start(
        &path,
        ServiceConfig { max_line_bytes: 4096, ..ServiceConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(&path).unwrap();
    let huge = format!(r#"{{"op":"check","pad":"{}"}}"#, "x".repeat(64 * 1024));
    let response = client.request_line(&huge).unwrap();
    let parsed = pallas_service::json::parse(&response).unwrap();
    assert!(!ok(&parsed), "{parsed}");
    assert_eq!(parsed.get("kind").and_then(Value::as_str), Some("protocol"), "{parsed}");
    assert!(
        parsed.get("error").and_then(Value::as_str).unwrap().contains("4096"),
        "the error names the limit: {parsed}"
    );
    // Framing recovered: the same connection serves normal requests.
    let fine = client.check(&demo_unit(0)).unwrap();
    assert!(ok(&fine), "{fine}");
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "service", "protocol_errors"), 1, "{stats}");
    handle.stop();
}

#[test]
fn mid_request_disconnect_leaves_daemon_serving_others() {
    let path = socket_path("discon");
    let handle = Server::start(
        &path,
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    )
    .unwrap();
    // A connection that dies mid-line: no newline ever arrives, so no
    // request exists — the fragment is discarded silently.
    {
        let mut dropper = UnixStream::connect(&path).unwrap();
        dropper.write_all(br#"{"op":"check","uni"#).unwrap();
        dropper.flush().unwrap();
    }
    // A connection that submits a slow request, then vanishes before
    // the answer: the computation's result has nowhere to go, and the
    // daemon must shrug it off.
    {
        let mut dropper = UnixStream::connect(&path).unwrap();
        let line = check_line(&demo_unit(90), Some(Duration::from_millis(200)));
        dropper.write_all(line.as_bytes()).unwrap();
        dropper.write_all(b"\n").unwrap();
        dropper.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let it get admitted
    }
    // Every other connection keeps working through it all.
    let mut client = Client::connect(&path).unwrap();
    for i in 0..3 {
        let response = client.check(&demo_unit(i)).unwrap();
        assert!(ok(&response), "{response}");
    }
    std::thread::sleep(Duration::from_millis(300)); // orphan job finishes into the void
    let stats = client.stats().unwrap();
    assert_eq!(
        stat(&stats, "service", "protocol_errors"),
        0,
        "a partial line at EOF is not a protocol error: {stats}"
    );
    assert!(ok(&client.check(&demo_unit(4)).unwrap()));
    handle.stop();
}

#[test]
fn restarted_daemon_answers_from_the_persistent_store() {
    let store_dir =
        std::env::temp_dir().join(format!("pallas-daemon-store-{}", std::process::id()));
    std::fs::create_dir_all(&store_dir).unwrap();
    let store = store_dir.join("daemon.store");
    let _ = std::fs::remove_file(&store);
    let config = || ServiceConfig {
        engine: EngineConfig {
            store_path: Some(store.clone()),
            ..EngineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let unit = demo_unit(7);

    // First daemon lifetime: analyze cold, shut down gracefully (the
    // shutdown path flushes the store).
    let path = socket_path("store1");
    let handle = Server::start(&path, config()).unwrap();
    let mut client = Client::connect(&path).unwrap();
    let cold = client.check(&unit).unwrap();
    assert!(ok(&cold), "{cold}");
    assert_eq!(cold.get("cached").and_then(Value::as_bool), Some(false));
    assert!(ok(&client.shutdown().unwrap()));
    let summary = handle.wait();
    assert!(summary.contains("store:"), "store residency in summary: {summary}");

    // Second daemon, fresh process-level state, same store file: the
    // unit comes back from disk with zero Extract/Check stage work.
    let path = socket_path("store2");
    let handle = Server::start(&path, config()).unwrap();
    let mut client = Client::connect(&path).unwrap();
    let warm = client.check(&unit).unwrap();
    assert!(ok(&warm), "{warm}");
    assert_eq!(
        warm.get("cached").and_then(Value::as_bool),
        Some(true),
        "disk hits count as cached results: {warm}"
    );
    assert_eq!(warm.get("report"), cold.get("report"), "warm report must be byte-identical");
    assert_eq!(warm.get("ndjson"), cold.get("ndjson"));
    let stats = client.stats().unwrap();
    let store_stat = |f: &str| {
        stats
            .get("stats")
            .and_then(|s| s.get("engine"))
            .and_then(|s| s.get("store"))
            .and_then(|s| s.get(f))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("missing stats.engine.store.{f} in {stats}"))
    };
    assert_eq!(store_stat("unit_hits"), 1, "{stats}");
    assert_eq!(stat(&stats, "engine", "cache_hits"), 0, "memory cache starts cold");
    // Proof of zero Extract/Check work: those stage counters never moved.
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("engine"))
            .and_then(|s| s.get("stage_runs"))
            .and_then(|s| s.get("extract"))
            .and_then(Value::as_u64),
        Some(0),
        "{stats}"
    );
    assert!(ok(&client.shutdown().unwrap()));
    handle.wait();
    let _ = std::fs::remove_dir_all(&store_dir);
}
