//! Daemon soak test: sustained mixed load, run once per transport.
//!
//! The same workload runs over the Unix socket and over TCP against
//! the multiplexed server (the transport matrix). Several client
//! threads hammer the daemon with a mix of `check` (warm and cold
//! units), `batch`, and `stats` requests for the soak duration, while
//! a sampler thread polls `stats` and records the queue depth and
//! counter values. Each run must show:
//!
//! * **zero dropped responses** — every request line gets exactly one
//!   well-formed response line back, none of them timeouts, overloads,
//!   or internal errors, and no finished response is orphaned
//!   (`dropped_completions` stays zero);
//! * **flat queue depth** — the pending queue stays within its bound
//!   throughout and drains to zero once the load stops (no leak of
//!   admitted-but-never-finished jobs);
//! * **monotone counters** — `received`, `completed`,
//!   `coalesced_hits`, and the latency-histogram counts never move
//!   backwards between samples.
//!
//! Two check threads rotate over the same small unit window, so
//! simultaneous identical requests coalesce: a request is accounted
//! for either by its own computation (`completed`) or by riding
//! another's (`coalesced_hits`).
//!
//! Duration is controlled by `PALLAS_SOAK_SECS` (default 5, the CI
//! setting). For a real soak run it locally with
//! `PALLAS_SOAK_SECS=60 cargo test -p pallas-service --test soak`.

use pallas_core::SourceUnit;
use pallas_service::{Bind, Client, Server, ServiceConfig, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn soak_duration() -> Duration {
    let secs = std::env::var("PALLAS_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5);
    Duration::from_secs(secs.max(1))
}

fn unit(i: usize) -> SourceUnit {
    SourceUnit::new(format!("soak/u{i}"))
        .with_file(
            "u.c",
            format!(
                "typedef unsigned int gfp_t;\n\
                 int noio(gfp_t m);\n\
                 int fast{i}(gfp_t gfp_mask) {{ gfp_mask = noio(gfp_mask); return {i}; }}\n"
            ),
        )
        .with_spec(format!("fastpath fast{i}; immutable gfp_mask;"))
}

/// One stats sample's monotone slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
struct Counters {
    received: u64,
    completed: u64,
    coalesced: u64,
    latency_count: u64,
}

fn sample(client: &mut Client) -> (Counters, u64, u64) {
    let response = client.stats().expect("stats request");
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    let stats = response.get("stats").expect("stats payload");
    let service = stats.get("service").expect("service section");
    let get = |v: &Value, k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let counters = Counters {
        received: get(service, "received"),
        completed: get(service, "completed"),
        coalesced: get(service, "coalesced_hits"),
        latency_count: stats
            .get("request_latency")
            .map(|h| get(h, "count"))
            .unwrap_or(0),
    };
    (counters, get(service, "queue_depth"), get(service, "dropped_completions"))
}

/// How the soak clients reach the daemon.
#[derive(Clone, Copy)]
enum Transport {
    Unix,
    Tcp,
}

/// Spins up a dual-bound daemon and runs the full mixed workload over
/// the chosen transport.
fn soak_over(transport: Transport) {
    let socket = std::env::temp_dir().join(format!(
        "pallas-soak-{}-{}.sock",
        std::process::id(),
        match transport {
            Transport::Unix => "unix",
            Transport::Tcp => "tcp",
        }
    ));
    let config = ServiceConfig {
        workers: 2,
        queue_depth: 32,
        timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    };
    let queue_bound = config.queue_depth as u64;
    let handle = Server::start_with(Bind::unix(&socket).with_tcp("127.0.0.1:0"), config)
        .expect("daemon starts");
    let tcp_addr = handle.tcp_addr().expect("tcp listener bound");
    let connect = move || -> Client {
        match transport {
            Transport::Unix => Client::connect(&socket).expect("unix client connects"),
            Transport::Tcp => Client::connect_tcp(tcp_addr).expect("tcp client connects"),
        }
    };
    let deadline = Instant::now() + soak_duration();

    let stop = AtomicBool::new(false);
    let sent = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let max_depth = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Three load threads: two single-checks over a rotating unit
        // window (warm hits + fresh misses + coalescing collisions),
        // one batcher.
        for t in 0..2usize {
            let (sent, answered, connect) = (&sent, &answered, &connect);
            scope.spawn(move || {
                let mut client = connect();
                let mut i = t;
                while Instant::now() < deadline {
                    let u = unit(i % 7); // 7 distinct units: mostly warm
                    sent.fetch_add(1, Ordering::Relaxed);
                    let response = client.check(&u).expect("check response arrives");
                    assert_eq!(
                        response.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "check failed mid-soak: {response}"
                    );
                    answered.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        scope.spawn(|| {
            let mut client = connect();
            let mut wave = 0usize;
            while Instant::now() < deadline {
                let units: Vec<SourceUnit> =
                    (0..3).map(|k| unit(100 + (wave + k) % 5)).collect();
                sent.fetch_add(1, Ordering::Relaxed);
                let response = client.batch(&units).expect("batch response arrives");
                assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
                let results = response.get("results").and_then(Value::as_arr).unwrap();
                assert_eq!(results.len(), 3, "batch answers every unit");
                answered.fetch_add(1, Ordering::Relaxed);
                wave += 1;
            }
        });
        // Sampler: counters must be monotone, depth bounded.
        scope.spawn(|| {
            let mut client = connect();
            let mut last = Counters::default();
            while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                let (counters, depth, _) = sample(&mut client);
                assert!(
                    counters >= last,
                    "counters moved backwards: {last:?} -> {counters:?}"
                );
                assert!(
                    depth <= queue_bound,
                    "queue depth {depth} exceeded its bound {queue_bound}"
                );
                max_depth.fetch_max(depth, Ordering::Relaxed);
                last = counters;
                std::thread::sleep(Duration::from_millis(50));
            }
        });
    });
    stop.store(true, Ordering::Relaxed);

    // Load is gone: the queue must drain fully, and the final counters
    // must account for every response the clients received.
    let mut client = connect();
    let (final_counters, final_depth, dropped) = sample(&mut client);
    assert_eq!(final_depth, 0, "queue did not drain after the load stopped");
    assert_eq!(dropped, 0, "finished responses were orphaned");
    let sent = sent.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    assert!(sent > 0, "soak sent no load");
    assert_eq!(answered, sent, "dropped {} response(s)", sent - answered);
    assert!(
        final_counters.latency_count >= sent,
        "latency histogram saw {} of {sent} requests",
        final_counters.latency_count
    );
    // Every check either ran its own computation or rode an identical
    // in-flight one; nothing fell through.
    assert!(
        final_counters.completed + final_counters.coalesced >= sent,
        "completed {} + coalesced {} < {sent} requests",
        final_counters.completed,
        final_counters.coalesced
    );

    client.shutdown().expect("shutdown");
    let summary = handle.wait();
    assert!(summary.contains("0 timed out"), "soak requests timed out: {summary}");
}

#[test]
fn daemon_survives_sustained_mixed_load_over_unix_socket() {
    soak_over(Transport::Unix);
}

#[test]
fn daemon_survives_sustained_mixed_load_over_tcp() {
    soak_over(Transport::Tcp);
}
