//! # pallas-service
//!
//! A persistent analysis daemon for Pallas. One-shot `pallas check`
//! invocations rebuild the whole frontend every time and throw the
//! staged engine's fingerprint cache away on exit; this crate keeps a
//! single shared [`Engine`](pallas_core::Engine) alive behind a
//! Unix-domain socket and/or a TCP listener ([`Bind`]) so repeated
//! requests for the same `(source, spec, config)` are served from the
//! bounded frontend cache. Both transports speak exactly the same
//! protocol and produce byte-identical responses.
//!
//! The daemon speaks a newline-delimited JSON protocol
//! ([`protocol`]): `check`, `batch`, `stats`, and `shutdown`
//! requests, one response line per request, in request order. A
//! single nonblocking event loop (readiness via `poll(2)`)
//! multiplexes every connection: per-connection buffers
//! and a line-framing state machine assemble requests, which flow
//! through an admission controller ([`admission`]) — a bounded
//! pending queue with explicit overload rejection — into a
//! configurable worker pool. Concurrent identical `check` requests
//! are **coalesced** into one computation keyed by the engine
//! fingerprint, each client still getting its own response. A
//! per-request wall-clock timeout is enforced by the event loop, and
//! graceful shutdown is a rolling drain: listeners close, in-flight
//! work finishes, every response and the persistent store flush. A
//! metrics registry ([`metrics`]) of atomic counters and fixed-bucket
//! latency histograms is sampled by `stats` and summarized on
//! shutdown.
//!
//! ```no_run
//! use pallas_core::SourceUnit;
//! use pallas_service::{Bind, Client, Server, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let bind = Bind::unix("/tmp/pallas.sock").with_tcp("127.0.0.1:0");
//! let handle = Server::start_with(bind, ServiceConfig::default())?;
//! let mut unix = Client::connect("/tmp/pallas.sock")?;
//! let mut tcp = Client::connect_tcp(handle.tcp_addr().unwrap())?;
//! let unit = SourceUnit::new("demo")
//!     .with_file("demo.c", "int f(void) { return 0; }")
//!     .with_spec("fastpath f;");
//! let a = unix.check(&unit)?; // cold: builds the frontend
//! let b = tcp.check(&unit)?; // warm, other transport: same bytes
//! assert_eq!(a.get("report"), b.get("report"));
//! unix.shutdown()?;
//! println!("{}", handle.wait()); // metrics summary
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod client;
mod coalesce;
pub mod json;
pub mod metrics;
mod mux;
mod poll;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionError};
pub use client::{Client, ClientStream};
pub use json::Value;
pub use metrics::{Histogram, ServiceMetrics};
pub use protocol::{Request, RuleSelection};
pub use server::{Bind, Server, ServerHandle, ServiceConfig};
