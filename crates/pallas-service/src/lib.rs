//! # pallas-service
//!
//! A persistent analysis daemon for Pallas. One-shot `pallas check`
//! invocations rebuild the whole frontend every time and throw the
//! staged engine's fingerprint cache away on exit; this crate keeps a
//! single shared [`Engine`](pallas_core::Engine) alive behind a
//! Unix-domain socket so repeated requests for the same `(source,
//! spec, config)` are served from the bounded frontend cache.
//!
//! The daemon speaks a newline-delimited JSON protocol
//! ([`protocol`]): `check`, `batch`, `stats`, and `shutdown`
//! requests, one response line per request. Requests flow through an
//! admission controller ([`admission`]) — a bounded pending queue
//! with explicit overload rejection — into a configurable worker
//! pool; a per-request wall-clock timeout is enforced around the
//! engine call, and graceful shutdown drains admitted work. A
//! metrics registry ([`metrics`]) of atomic counters and fixed-bucket
//! latency histograms is sampled by `stats` and summarized on
//! shutdown.
//!
//! ```no_run
//! use pallas_core::SourceUnit;
//! use pallas_service::{Client, Server, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = Server::start("/tmp/pallas.sock", ServiceConfig::default())?;
//! let mut client = Client::connect("/tmp/pallas.sock")?;
//! let unit = SourceUnit::new("demo")
//!     .with_file("demo.c", "int f(void) { return 0; }")
//!     .with_spec("fastpath f;");
//! let first = client.check(&unit)?; // cold: builds the frontend
//! let again = client.check(&unit)?; // warm: frontend cache hit
//! assert_eq!(first.get("report"), again.get("report"));
//! client.shutdown()?;
//! println!("{}", handle.wait()); // metrics summary
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionError};
pub use client::Client;
pub use json::Value;
pub use metrics::{Histogram, ServiceMetrics};
pub use protocol::{Request, RuleSelection};
pub use server::{Server, ServerHandle, ServiceConfig};
