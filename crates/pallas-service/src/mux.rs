//! The multiplexed event loop: one thread drives every connection.
//!
//! A single loop polls (via [`crate::poll`]) the listening sockets,
//! every live connection, and a self-pipe waker. Each connection owns
//! a read buffer with a line-framing state machine, a write buffer,
//! and a per-request sequence number; complete NDJSON request lines
//! are dispatched inline (`stats`/`trace`/`shutdown`) or submitted to
//! the worker pool (`check`/`batch`), and worker completions flow
//! back through a shared completion queue. Responses are staged into
//! a per-connection reorder buffer and flushed strictly in request
//! order, so pipelined clients always read answers in the order they
//! asked — even when a later request finishes (or coalesces) first.
//!
//! The framing state machine per connection:
//!
//! ```text
//!             +-- newline: dispatch line, stay --+
//!             v                                  |
//!   [accumulating] --- bytes > max_line_bytes ---+--> [discarding]
//!             ^                                           |
//!             +----------- newline: error sent, reset ----+
//! ```
//!
//! A line that outgrows `max_line_bytes` without a newline gets a
//! clean `protocol` error response and the connection survives: the
//! oversized tail is discarded up to the next newline and framing
//! resumes. Slow readers never block the loop — output beyond the
//! socket buffer waits in the connection's write buffer for
//! `POLLOUT`, and a connection with an excessive write backlog stops
//! being read until it drains (backpressure instead of unbounded
//! buffering).
//!
//! Shutdown is a rolling drain: close the listeners (new connects are
//! refused), stop reading, let in-flight jobs finish and their
//! responses flush, then exit. The drain is bounded by the request
//! timeout so a wedged client cannot hold the daemon open forever.

use crate::admission::AdmissionError;
use crate::coalesce::{Attach, Waiter};
use crate::json::{n, obj, s, Value};
use crate::metrics::ServiceMetrics;
use crate::poll::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::protocol::{error_response, kinded_error_response, Request, RuleSelection};
use crate::server::{Completion, Job, JobKind, Route, Shared};
use pallas_checkers::RuleSet;
use pallas_core::engine::fingerprint::{fingerprint_unit_with_rules, Fnv1a};
use pallas_core::SourceUnit;
use pallas_trace::AttrValue;
use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll tick upper bound: how stale the shutdown flag can get.
const TICK: Duration = Duration::from_millis(50);
/// Per-read-pass byte cap so one firehose client cannot starve the
/// rest of the loop (level-triggered poll re-reports leftover data).
const READ_PASS_CHUNKS: usize = 16;
/// Write backlog (bytes) beyond which a connection stops being read.
const WRITE_BACKPRESSURE: usize = 1 << 20;

/// A bound listening socket, either transport.
pub(crate) enum ListenerSocket {
    /// Unix-domain listener plus the path to unlink when it closes.
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl ListenerSocket {
    fn fd(&self) -> RawFd {
        match self {
            ListenerSocket::Unix(l, _) => l.as_raw_fd(),
            ListenerSocket::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one pending connection; `None` when the backlog is
    /// empty (`WouldBlock`).
    fn accept(&self) -> std::io::Result<Option<StreamSocket>> {
        match self {
            ListenerSocket::Unix(l, _) => match l.accept() {
                Ok((stream, _)) => Ok(Some(StreamSocket::Unix(stream))),
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            ListenerSocket::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    // Request/response lines are tiny; never trade
                    // latency for Nagle batching.
                    let _ = stream.set_nodelay(true);
                    Ok(Some(StreamSocket::Tcp(stream)))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    fn close(self) {
        if let ListenerSocket::Unix(_, path) = &self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection stream, either transport.
pub(crate) enum StreamSocket {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl StreamSocket {
    fn fd(&self) -> RawFd {
        match self {
            StreamSocket::Unix(s) => s.as_raw_fd(),
            StreamSocket::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            StreamSocket::Unix(s) => s.set_nonblocking(true),
            StreamSocket::Tcp(s) => s.set_nonblocking(true),
        }
    }

    fn transport(&self) -> &'static str {
        match self {
            StreamSocket::Unix(_) => "unix",
            StreamSocket::Tcp(_) => "tcp",
        }
    }
}

impl Read for StreamSocket {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            StreamSocket::Unix(s) => s.read(buf),
            StreamSocket::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for StreamSocket {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            StreamSocket::Unix(s) => s.write(buf),
            StreamSocket::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            StreamSocket::Unix(s) => s.flush(),
            StreamSocket::Tcp(s) => s.flush(),
        }
    }
}

/// How to cancel an in-flight request when its waiter goes away.
enum Cancel {
    /// Sole owner of the job: flip its flag and a worker skips it.
    Direct(Arc<AtomicBool>),
    /// One of possibly many waiters on a coalesced computation.
    Coalesced { key: u64 },
}

/// A submitted request awaiting its worker completion.
struct PendingReq {
    started: Instant,
    deadline: Instant,
    cancel: Cancel,
}

/// Per-connection state: framing, reordering, and write buffering.
struct Conn {
    id: u64,
    stream: StreamSocket,
    /// Bytes read but not yet framed into lines.
    read_buf: Vec<u8>,
    /// Newline scan resumes here (everything before it was scanned).
    scan_from: usize,
    /// Framing state: discarding an oversized line's tail.
    discarding: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Next sequence number whose response may be written.
    next_to_send: u64,
    /// Finished responses waiting for their turn in request order.
    ready: BTreeMap<u64, String>,
    /// Requests handed to the worker pool, by sequence number.
    pending: HashMap<u64, PendingReq>,
    /// Peer sent EOF (or `shutdown`); flush what remains, then close.
    closed_read: bool,
    /// Unrecoverable socket error; drop without flushing.
    dead: bool,
}

impl Conn {
    fn new(id: u64, stream: StreamSocket) -> Conn {
        Conn {
            id,
            stream,
            read_buf: Vec::new(),
            scan_from: 0,
            discarding: false,
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_to_send: 0,
            ready: BTreeMap::new(),
            pending: HashMap::new(),
            closed_read: false,
            dead: false,
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn has_unwritten(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// All responses delivered and flushed: nothing left to do.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.ready.is_empty() && !self.has_unwritten()
    }
}

/// What a poll-set slot refers to.
enum Slot {
    Waker,
    Listener(usize),
    Conn(u64),
}

/// Runs the event loop until shutdown completes. Owns the listeners;
/// they are closed (and Unix socket paths unlinked) the moment drain
/// begins, so a restarting daemon can rebind immediately.
pub(crate) fn mux_loop(listeners: Vec<ListenerSocket>, shared: &Arc<Shared>) {
    let mut listeners = Some(listeners);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let draining = shared.shutdown.load(Ordering::Relaxed);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + shared.config.timeout);
            if let Some(listeners) = listeners.take() {
                for listener in listeners {
                    listener.close();
                }
            }
            pallas_trace::instant(
                pallas_trace::Layer::Service,
                "drain_start",
                vec![("connections", AttrValue::U64(conns.len() as u64))],
            );
        }
        if draining {
            if conns.values().all(Conn::drained) {
                break;
            }
            if drain_deadline.is_some_and(|d| Instant::now() >= d) {
                // Bounded drain: a wedged client forfeits its
                // in-flight responses rather than holding the daemon.
                for conn in conns.values() {
                    cancel_all_pending(shared, conn);
                }
                break;
            }
        }

        // Assemble the poll set: waker, listeners (unless draining),
        // then one slot per connection.
        let mut fds = vec![PollFd::new(shared.waker.fd(), POLLIN)];
        let mut slots = vec![Slot::Waker];
        if let Some(listeners) = &listeners {
            for (i, listener) in listeners.iter().enumerate() {
                fds.push(PollFd::new(listener.fd(), POLLIN));
                slots.push(Slot::Listener(i));
            }
        }
        for conn in conns.values() {
            let mut events = 0i16;
            let backpressured = conn.write_buf.len() - conn.write_pos > WRITE_BACKPRESSURE;
            if !conn.closed_read && !draining && !backpressured {
                events |= POLLIN;
            }
            if conn.has_unwritten() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.fd(), events));
            slots.push(Slot::Conn(conn.id));
        }

        let timeout = poll_timeout(&conns, drain_deadline);
        if poll_fds(&mut fds, timeout).is_err() {
            // EINTR is retried inside poll_fds; anything else here is
            // a broken fd we will discover per-connection below.
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut accepted: Vec<StreamSocket> = Vec::new();
        for (fd, slot) in fds.iter().zip(&slots) {
            match slot {
                Slot::Waker => {
                    if fd.has(POLLIN) {
                        shared.waker.drain();
                    }
                }
                Slot::Listener(i) => {
                    if fd.has(POLLIN | POLLERR) {
                        if let Some(listeners) = &listeners {
                            while let Ok(Some(stream)) = listeners[*i].accept() {
                                accepted.push(stream);
                            }
                        }
                    }
                }
                Slot::Conn(id) => {
                    let conn = conns.get_mut(id).expect("slot maps to a live connection");
                    if fd.has(POLLNVAL) {
                        conn.dead = true;
                        continue;
                    }
                    if fd.has(POLLIN | POLLHUP | POLLERR) && !conn.closed_read && !draining {
                        read_pass(shared, conn);
                    } else if fd.has(POLLHUP | POLLERR) {
                        // No reads wanted anymore; a hangup now means
                        // the flush can never succeed either.
                        conn.closed_read = true;
                    }
                }
            }
        }

        for stream in accepted {
            if stream.set_nonblocking().is_err() {
                continue;
            }
            next_conn_id += 1;
            match stream.transport() {
                "tcp" => ServiceMetrics::bump(&shared.metrics.tcp_connections),
                _ => ServiceMetrics::bump(&shared.metrics.unix_connections),
            }
            pallas_trace::instant(
                pallas_trace::Layer::Service,
                "conn_open",
                vec![
                    ("conn", AttrValue::U64(next_conn_id)),
                    ("transport", AttrValue::Str(stream.transport().to_string())),
                ],
            );
            conns.insert(next_conn_id, Conn::new(next_conn_id, stream));
        }

        // Worker completions → per-connection reorder buffers.
        drain_completions(shared, &mut conns);

        // Expired deadlines → timeout error responses + cancellation.
        let now = Instant::now();
        for conn in conns.values_mut() {
            expire_timeouts(shared, conn, now);
        }

        // Stage in-order responses and push bytes.
        for conn in conns.values_mut() {
            stage_ready(conn);
            if conn.has_unwritten() && !flush_writes(conn) {
                conn.dead = true;
            }
        }

        conns.retain(|_, conn| {
            if conn.dead {
                cancel_all_pending(shared, conn);
            } else if !(conn.closed_read && conn.drained()) {
                return true;
            }
            pallas_trace::instant(
                pallas_trace::Layer::Service,
                "conn_close",
                vec![("conn", AttrValue::U64(conn.id))],
            );
            false
        });
    }
}

/// Shortest wait that still honours the nearest request deadline (or
/// the drain deadline), capped at [`TICK`].
fn poll_timeout(conns: &HashMap<u64, Conn>, drain_deadline: Option<Instant>) -> i32 {
    let now = Instant::now();
    let mut timeout = TICK;
    let nearest = conns
        .values()
        .flat_map(|c| c.pending.values().map(|p| p.deadline))
        .chain(drain_deadline)
        .min();
    if let Some(deadline) = nearest {
        timeout = timeout.min(deadline.saturating_duration_since(now));
    }
    timeout.as_millis().min(i32::MAX as u128) as i32
}

/// Reads everything currently available on the connection (bounded
/// per pass) and dispatches every complete line.
fn read_pass(shared: &Arc<Shared>, conn: &mut Conn) {
    let mut chunk = [0u8; 64 * 1024];
    for _ in 0..READ_PASS_CHUNKS {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.closed_read = true;
                break;
            }
            Ok(len) => {
                conn.read_buf.extend_from_slice(&chunk[..len]);
                frame_lines(shared, conn);
                if conn.closed_read {
                    break; // `shutdown` request: ignore the rest
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// The framing state machine: splits the read buffer into lines,
/// enforcing the line-length bound, and dispatches each request.
fn frame_lines(shared: &Arc<Shared>, conn: &mut Conn) {
    loop {
        if conn.discarding {
            match conn.read_buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    conn.read_buf.drain(..=pos);
                    conn.scan_from = 0;
                    conn.discarding = false;
                }
                None => {
                    conn.read_buf.clear();
                    conn.scan_from = 0;
                    return;
                }
            }
            continue;
        }
        match conn.read_buf[conn.scan_from..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = conn.scan_from + rel;
                let line: Vec<u8> = conn.read_buf.drain(..=end).collect();
                conn.scan_from = 0;
                dispatch_line(shared, conn, &line[..line.len() - 1]);
                if conn.closed_read {
                    // `shutdown` was requested on this connection;
                    // anything else it pipelined is moot.
                    conn.read_buf.clear();
                    return;
                }
            }
            None => {
                conn.scan_from = conn.read_buf.len();
                if conn.read_buf.len() > shared.config.max_line_bytes {
                    ServiceMetrics::bump(&shared.metrics.protocol_errors);
                    let seq = conn.alloc_seq();
                    conn.ready.insert(
                        seq,
                        kinded_error_response(
                            "protocol",
                            &format!(
                                "request line exceeds the {} byte limit",
                                shared.config.max_line_bytes
                            ),
                        ),
                    );
                    // Release the hoarded bytes (memory stays flat no
                    // matter how large the oversized line was) and
                    // skip to the next newline.
                    conn.read_buf = Vec::new();
                    conn.scan_from = 0;
                    conn.discarding = true;
                }
                return;
            }
        }
    }
}

/// Handles one complete request line: inline ops answer immediately
/// into the reorder buffer; check/batch are submitted to the pool.
fn dispatch_line(shared: &Arc<Shared>, conn: &mut Conn, raw: &[u8]) {
    let Ok(text) = std::str::from_utf8(raw) else {
        ServiceMetrics::bump(&shared.metrics.received);
        ServiceMetrics::bump(&shared.metrics.protocol_errors);
        let seq = conn.alloc_seq();
        conn.ready
            .insert(seq, kinded_error_response("protocol", "request line is not valid UTF-8"));
        return;
    };
    let line = text.trim();
    if line.is_empty() {
        return; // blank keep-alive line: no response owed
    }
    ServiceMetrics::bump(&shared.metrics.received);
    let seq = conn.alloc_seq();
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            ServiceMetrics::bump(&shared.metrics.protocol_errors);
            conn.ready.insert(seq, error_response(&message));
            return;
        }
    };
    match request {
        Request::Stats => {
            let snapshot = shared.metrics.to_json(
                &shared.engine.stats(),
                shared.admission.depth(),
                shared.config.workers,
            );
            conn.ready.insert(
                seq,
                obj(vec![("ok", Value::Bool(true)), ("stats", snapshot)]).to_string(),
            );
        }
        Request::Trace => {
            let enabled = pallas_trace::enabled();
            let records = pallas_trace::take();
            let response = obj(vec![
                ("ok", Value::Bool(true)),
                ("enabled", Value::Bool(enabled)),
                ("spans", n(records.len() as u64)),
                ("dropped", n(pallas_trace::dropped())),
                ("chrome", s(pallas_trace::chrome::export_chrome(&records))),
                (
                    "summary",
                    s(pallas_trace::summary::render_trace_summary(&records, 10)),
                ),
            ]);
            conn.ready.insert(seq, response.to_string());
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Relaxed);
            conn.ready.insert(
                seq,
                obj(vec![("ok", Value::Bool(true)), ("shutdown", Value::Bool(true))]).to_string(),
            );
            conn.closed_read = true;
        }
        Request::Check { unit, delay, rules } => match resolve_rules(&rules) {
            Ok(rules) => submit_check(shared, conn, seq, unit, delay.map(|d| d.as_millis() as u64), rules),
            Err(line) => {
                conn.ready.insert(seq, line);
            }
        },
        Request::Batch { units, delay, rules } => match resolve_rules(&rules) {
            Ok(rules) => {
                submit_direct(shared, conn, seq, JobKind::Batch { units, delay, rules })
            }
            Err(line) => {
                conn.ready.insert(seq, line);
            }
        },
    }
}

/// Resolves a request's rule selection before admission, so an
/// unknown rule name fails fast as a protocol error instead of
/// occupying a worker. `None` means "the engine's configured set".
fn resolve_rules(selection: &RuleSelection) -> Result<Option<RuleSet>, String> {
    if selection.is_default() {
        return Ok(None);
    }
    selection.resolve().map(Some).map_err(|e| error_response(&e))
}

/// The coalescing key: the engine's own cache fingerprint for the
/// request (unit + extraction config + effective rule set) mixed with
/// the artificial delay, so a deliberately-slowed test request only
/// merges with an identical twin.
fn coalesce_key(
    shared: &Arc<Shared>,
    unit: &SourceUnit,
    delay_ms: Option<u64>,
    rules: Option<&RuleSet>,
) -> u64 {
    let fingerprint = fingerprint_unit_with_rules(
        unit,
        shared.engine.config(),
        rules.unwrap_or_else(|| shared.engine.rules()),
    );
    let mut h = Fnv1a::new();
    h.write_u64(fingerprint);
    // Distinct sentinel for "no delay" so it cannot collide with 0ms.
    h.write_u64(delay_ms.map_or(u64::MAX, |ms| ms));
    h.write_u64(u64::from(delay_ms.is_some()));
    h.finish()
}

/// Submits a `check`, sharing an in-flight identical computation when
/// coalescing is enabled.
fn submit_check(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    seq: u64,
    unit: SourceUnit,
    delay_ms: Option<u64>,
    rules: Option<RuleSet>,
) {
    let delay = delay_ms.map(Duration::from_millis);
    if !shared.config.coalesce {
        submit_direct(shared, conn, seq, JobKind::Check { unit, delay, rules });
        return;
    }
    let key = coalesce_key(shared, &unit, delay_ms, rules.as_ref());
    let waiter = Waiter { conn: conn.id, seq };
    let started = Instant::now();
    match shared.coalescer.attach(key, waiter) {
        Attach::Follower => {
            // An identical computation is already in flight; ride it.
            ServiceMetrics::bump(&shared.metrics.coalesced_hits);
            pallas_trace::instant(
                pallas_trace::Layer::Service,
                "coalesced",
                vec![("conn", AttrValue::U64(conn.id)), ("key", AttrValue::U64(key))],
            );
            conn.pending.insert(
                seq,
                PendingReq {
                    started,
                    deadline: started + shared.config.timeout,
                    cancel: Cancel::Coalesced { key },
                },
            );
        }
        Attach::Leader(cancelled) => {
            let job = Job {
                kind: JobKind::Check { unit, delay, rules },
                route: Route::Coalesced { key },
                cancelled,
                submitted: started,
            };
            match shared.admission.submit(job) {
                Ok(()) => {
                    ServiceMetrics::bump(&shared.metrics.accepted);
                    conn.pending.insert(
                        seq,
                        PendingReq {
                            started,
                            deadline: started + shared.config.timeout,
                            cancel: Cancel::Coalesced { key },
                        },
                    );
                }
                Err(err) => {
                    // Attach and submit happen on this one thread, so
                    // the aborted entry's only waiter is this request.
                    shared.coalescer.abort(key);
                    conn.ready.insert(seq, rejection_line(shared, &err));
                }
            }
        }
    }
}

/// Submits a job that is the sole owner of its computation (batches,
/// and checks when coalescing is off).
fn submit_direct(shared: &Arc<Shared>, conn: &mut Conn, seq: u64, kind: JobKind) {
    let started = Instant::now();
    let cancelled = Arc::new(AtomicBool::new(false));
    let job = Job {
        kind,
        route: Route::Direct(Waiter { conn: conn.id, seq }),
        cancelled: Arc::clone(&cancelled),
        submitted: started,
    };
    match shared.admission.submit(job) {
        Ok(()) => {
            ServiceMetrics::bump(&shared.metrics.accepted);
            conn.pending.insert(
                seq,
                PendingReq {
                    started,
                    deadline: started + shared.config.timeout,
                    cancel: Cancel::Direct(cancelled),
                },
            );
        }
        Err(err) => {
            conn.ready.insert(seq, rejection_line(shared, &err));
        }
    }
}

fn rejection_line(shared: &Arc<Shared>, err: &AdmissionError) -> String {
    match err {
        AdmissionError::Overloaded { depth } => {
            ServiceMetrics::bump(&shared.metrics.rejected_overload);
            kinded_error_response(
                "overload",
                &format!("overloaded: pending queue is full ({depth} deep); retry later"),
            )
        }
        AdmissionError::ShuttingDown => error_response("daemon is shutting down"),
    }
}

/// Moves finished worker completions into their connections' reorder
/// buffers. A completion whose connection or request is gone (client
/// hung up, request already timed out) is counted, not delivered.
fn drain_completions(shared: &Arc<Shared>, conns: &mut HashMap<u64, Conn>) {
    let completions: Vec<Completion> =
        std::mem::take(&mut *shared.completions.lock().expect("completion queue"));
    for completion in completions {
        let slot = conns
            .get_mut(&completion.conn)
            .and_then(|conn| conn.pending.remove(&completion.seq).map(|p| (conn, p)));
        match slot {
            Some((conn, pending)) => {
                shared.metrics.request_latency.record(pending.started.elapsed());
                conn.ready.insert(completion.seq, completion.line);
            }
            None => ServiceMetrics::bump(&shared.metrics.dropped_completions),
        }
    }
}

/// Answers every pending request whose deadline has passed with a
/// `timeout` error and cancels its computation (for a coalesced
/// request, only this waiter leaves; the computation dies when the
/// last one does).
fn expire_timeouts(shared: &Arc<Shared>, conn: &mut Conn, now: Instant) {
    let expired: Vec<u64> = conn
        .pending
        .iter()
        .filter(|(_, p)| p.deadline <= now)
        .map(|(&seq, _)| seq)
        .collect();
    for seq in expired {
        let pending = conn.pending.remove(&seq).expect("expired seq is pending");
        ServiceMetrics::bump(&shared.metrics.timed_out);
        match pending.cancel {
            Cancel::Direct(flag) => flag.store(true, Ordering::Relaxed),
            Cancel::Coalesced { key } => {
                shared.coalescer.cancel_waiter(key, Waiter { conn: conn.id, seq });
            }
        }
        conn.ready.insert(
            seq,
            kinded_error_response(
                "timeout",
                &format!("request exceeded {}ms budget", shared.config.timeout.as_millis()),
            ),
        );
    }
}

/// Flips every in-flight request's cancel switch (connection died).
fn cancel_all_pending(shared: &Arc<Shared>, conn: &Conn) {
    for (&seq, pending) in &conn.pending {
        match &pending.cancel {
            Cancel::Direct(flag) => flag.store(true, Ordering::Relaxed),
            Cancel::Coalesced { key } => {
                shared.coalescer.cancel_waiter(*key, Waiter { conn: conn.id, seq });
            }
        }
    }
}

/// Appends consecutive ready responses (in request order) to the
/// write buffer. A response for sequence N+1 waits until N's is
/// staged, which is the whole ordering guarantee.
fn stage_ready(conn: &mut Conn) {
    while let Some(line) = conn.ready.remove(&conn.next_to_send) {
        conn.write_buf.extend_from_slice(line.as_bytes());
        conn.write_buf.push(b'\n');
        conn.next_to_send += 1;
    }
}

/// Pushes buffered bytes until the socket would block. Returns false
/// when the connection is unusable (peer gone).
fn flush_writes(conn: &mut Conn) -> bool {
    while conn.has_unwritten() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(written) => conn.write_pos += written,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if !conn.has_unwritten() && !conn.write_buf.is_empty() {
        conn.write_buf = Vec::new();
        conn.write_pos = 0;
    }
    true
}
